"""Misbehaviour detection: byzantine validators, Fishermen and slashing.

The §III-C security story, end to end:

1. a byzantine validator gossips a signature over a forged block (one of
   the three offence classes — here, a conflicting block at a real
   height, then a block above the head);
2. a Fisherman picks the claim off the gossip layer, cross-checks it
   against the Guest Contract's on-chain record, and submits evidence;
3. the contract verifies the signature through the host's precompile,
   slashes half the offender's bond, ejects it from future epochs and
   rewards the Fisherman;
4. meanwhile the counterparty's guest light client demonstrates the
   equivocation defence: two quorum-signed conflicting headers freeze it.

Run:  python examples/misbehaviour_detection.py
"""

from repro import Deployment, DeploymentConfig
from repro.fisherman.evidence import ByzantineValidator
from repro.guest.config import GuestConfig
from repro.units import lamports_to_usd
from repro.validators.profiles import simple_profiles


def main() -> None:
    config = DeploymentConfig(
        seed=31,
        guest=GuestConfig(delta_seconds=60.0, min_stake_lamports=1),
        profiles=simple_profiles(6),
        with_fisherman=True,
    )
    deployment = Deployment(config)
    contract = deployment.contract
    deployment.run_for(90.0)

    offender = deployment.validators[2]
    bond_before = contract.staking.stake_of(offender.keypair.public_key)
    print(f"Validator #{offender.profile.index} is about to misbehave "
          f"(bond: {lamports_to_usd(bond_before):,.0f} USD)")

    byzantine = ByzantineValidator(deployment.sim, deployment.gossip, offender.keypair)

    print("\nOffence 1: signing a conflicting block at an existing height...")
    byzantine.equivocate(height=contract.head.height)
    deployment.run_for(60.0)

    report = deployment.fisherman.reports[-1]
    print(f"  fisherman evidence accepted on-chain: {report.accepted}")
    bond_after = contract.staking.stake_of(offender.keypair.public_key)
    print(f"  offender bond: {lamports_to_usd(bond_before):,.0f} USD -> "
          f"{lamports_to_usd(bond_after):,.0f} USD "
          f"(slashed {lamports_to_usd(contract.staking.slashed_total):,.0f} USD)")

    print("\nOffence 2: another validator signs a block above the head...")
    second = deployment.validators[3]
    byzantine2 = ByzantineValidator(deployment.sim, deployment.gossip, second.keypair)
    byzantine2.equivocate(height=contract.head.height + 50)
    deployment.run_for(60.0)
    report = deployment.fisherman.reports[-1]
    print(f"  evidence accepted: {report.accepted}; "
          f"total slashed so far {lamports_to_usd(contract.staking.slashed_total):,.0f} USD")

    print("\nEjection from future epochs:")
    deployment.run_for(60.0)
    epoch = contract.current_epoch
    for node in (offender, second):
        status = "still present" if epoch.is_validator(node.keypair.public_key) else "ejected"
        print(f"  validator #{node.profile.index}: {status} "
              f"(will drop out at the next epoch rotation if still listed)")

    print("\nLight-client equivocation defence (counterparty side):")
    from repro.crypto.hashing import Hash
    from repro.guest.block import GuestBlockHeader
    from repro.lightclient.guest_client import GuestClientUpdate, GuestLightClient

    epoch = contract.current_epoch
    client = GuestLightClient(deployment.scheme, epoch)
    honest_nodes = [n for n in deployment.validators
                    if epoch.is_validator(n.keypair.public_key)]

    def forged_header(tag: bytes) -> GuestBlockHeader:
        return GuestBlockHeader(
            height=999, prev_hash=Hash.zero(), timestamp=1.0, host_slot=1,
            state_root=Hash.of(tag), epoch_id=epoch.epoch_id,
            epoch_hash=epoch.canonical_hash(),
        )

    def signed(header: GuestBlockHeader) -> GuestClientUpdate:
        message = header.sign_message()
        return GuestClientUpdate(
            header=header,
            signatures={n.keypair.public_key: n.keypair.sign(message)
                        for n in honest_nodes},
        )

    client.update(signed(forged_header(b"fork-a")))
    try:
        client.update(signed(forged_header(b"fork-b")))
    except Exception as exc:
        print(f"  conflicting quorum-signed header detected: {type(exc).__name__}")
    print(f"  client frozen: {client.frozen} — no further packets can be "
          f"proven against it (the §VI-C damage-limitation response)")
    print("Done.")


if __name__ == "__main__":
    main()
