"""Cross-chain token economics: vouchers, escrow and supply invariants.

Demonstrates the full ICS-20 denom-tracing story across the bridge:

1. several guest users send native GUEST tokens to the counterparty —
   each send escrows on the guest and mints prefixed vouchers;
2. a counterparty user sends some vouchers *back* — they burn, and the
   guest escrow releases;
3. throughout, the invariant ``escrowed == voucher supply`` holds, and
   sender fee strategies show the Fig. 3 cost split (priority ≈ 1.40 USD
   vs bundle ≈ 3.02 USD).

Run:  python examples/cross_chain_transfer.py
"""

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.host.fees import PriorityFee
from repro.units import MAX_COMPUTE_UNITS, lamports_to_usd
from repro.validators.profiles import simple_profiles


def main() -> None:
    deployment = Deployment(DeploymentConfig(
        seed=7,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(5),
    ))
    guest_channel, cp_channel = deployment.establish_link()
    contract = deployment.contract
    counterparty = deployment.counterparty
    escrow = contract.transfer.escrow_address(guest_channel)
    voucher = counterparty.transfer.voucher_denom(cp_channel, "GUEST")

    users = [("alice", 400, "bob"), ("erin", 250, "frank"), ("gina", 150, "bob")]
    for sender, amount, _ in users:
        contract.bank.mint(sender, "GUEST", amount)

    print("Outbound transfers (guest -> counterparty):")
    fees = []
    for index, (sender, amount, receiver) in enumerate(users):
        payload = contract.transfer.make_payload(
            guest_channel, "GUEST", amount, sender, receiver,
        )
        # Alternate the two §V-A fee policies.
        if index % 2 == 0:
            deployment.user_api.send_packet(
                "transfer", str(guest_channel), payload,
                fee=PriorityFee(compute_unit_price=5_000_000),
                compute_budget=MAX_COMPUTE_UNITS,
                on_result=lambda r: fees.append(("priority", r.fee_paid)),
            )
        else:
            deployment.user_api.send_packet_via_bundle(
                "transfer", str(guest_channel), payload,
                tip_lamports=15_090_000,
                on_result=lambda r: fees.append(("bundle", r.fee_paid)),
            )
        print(f"  {sender} -> {receiver}: {amount} GUEST")
    deployment.run_for(300.0)

    print("\nBalances after outbound:")
    for holder in ("bob", "frank"):
        print(f"  {holder} holds {counterparty.bank.balance(holder, voucher)} vouchers")
    escrowed = contract.bank.balance(escrow, "GUEST")
    supply = counterparty.bank.total_supply(voucher)
    print(f"  escrowed on guest: {escrowed}  |  voucher supply: {supply}")
    assert escrowed == supply, "supply invariant violated"

    print("\nSend fees (the Fig. 3 clusters):")
    for strategy, fee in fees:
        print(f"  {strategy:>8}: {lamports_to_usd(fee):.2f} USD")

    print("\nReturn transfer (counterparty -> guest): bob sends 300 vouchers home")

    def send_home() -> None:
        data = counterparty.transfer.make_payload(cp_channel, voucher, 300, "bob", "alice")
        counterparty.ibc.send_packet(counterparty.transfer_port, cp_channel, data, 0.0)

    counterparty.submit(send_home)
    deployment.run_for(300.0)

    print(f"  alice (guest) now holds {contract.bank.balance('alice', 'GUEST')} GUEST")
    escrowed = contract.bank.balance(escrow, "GUEST")
    supply = counterparty.bank.total_supply(voucher)
    print(f"  escrowed on guest: {escrowed}  |  voucher supply: {supply}")
    assert escrowed == supply, "supply invariant violated after the return leg"

    counters = contract.ibc.counters
    print(f"\nGuest IBC counters: sent={counters.packets_sent} "
          f"received={counters.packets_received} acked={counters.packets_acknowledged}")
    print("Supply invariant held at every step. Done.")


if __name__ == "__main__":
    main()
