"""Validator economics: staking, epochs, signing costs, exit and the
"last validator" problem.

Walks the §III-B / §VI-A lifecycle:

1. a newcomer bonds stake through a STAKE transaction and is selected at
   the next epoch rotation;
2. validators sign blocks, each paying its fee policy's cost per Sign
   transaction (the Table I cost column);
3. a validator requests exit: its stake stays locked for the unbonding
   period (§IV: one week on mainnet) and an early withdrawal fails;
4. the §VI-A discussion made concrete: the last validators cannot leave
   without halting the chain — their stake would be frozen forever.

Run:  python examples/validator_economics.py
"""

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.units import lamports_to_cents, lamports_to_usd, sol_to_lamports
from repro.validators.profiles import simple_profiles


def main() -> None:
    deployment = Deployment(DeploymentConfig(
        seed=13,
        guest=GuestConfig(
            delta_seconds=60.0,
            min_stake_lamports=sol_to_lamports(1.0),
            epoch_length_host_blocks=750,     # ~5 min epochs for the demo
            unbonding_seconds=600.0,          # scaled-down hold period
        ),
        profiles=simple_profiles(4),
    ))
    contract = deployment.contract
    deployment.run_for(120.0)

    print(f"Epoch {contract.current_epoch.epoch_id}: "
          f"{len(contract.current_epoch)} validators, "
          f"quorum {contract.current_epoch.quorum_stake / contract.current_epoch.total_stake:.0%} of stake")

    # --- a newcomer joins -----------------------------------------------------
    newcomer = deployment.scheme.keypair_from_seed(bytes([99]) * 32)
    stake = sol_to_lamports(150.0)
    print(f"\nNewcomer bonds {lamports_to_usd(stake):,.0f} USD of stake...")
    deployment.user_api.stake(newcomer.public_key, stake)
    deployment.run_for(400.0)  # cross an epoch boundary

    epoch = contract.current_epoch
    member = "IS" if epoch.is_validator(newcomer.public_key) else "is NOT"
    print(f"  epoch {epoch.epoch_id}: the newcomer {member} in the validator set "
          f"({len(epoch)} members)")

    # --- signing costs and rewards ----------------------------------------------
    print("\nDriving some packet traffic so fees accrue...")
    guest_channel, _ = deployment.establish_link()
    deployment.contract.bank.mint("alice", "GUEST", 10 ** 9)
    for _ in range(4):
        payload = deployment.contract.transfer.make_payload(
            guest_channel, "GUEST", 5, "alice", "bob",
        )
        deployment.user_api.send_packet("transfer", str(guest_channel), payload)
        deployment.run_for(40.0)

    print("\nSigning economics (§V-C's incentives, implemented):")
    for node in deployment.validators:
        records = node.successful_records()
        if not records:
            continue
        total = sum(r.fee_paid for r in records)
        per_sig = total / len(records)
        rewards = deployment.contract.reward_balances.get(node.keypair.public_key, 0)
        print(f"  validator #{node.profile.index}: {len(records)} signatures, "
              f"{lamports_to_cents(round(per_sig)):.2f} cents each "
              f"({lamports_to_usd(total):.4f} USD fees paid, "
              f"{lamports_to_usd(rewards):.4f} USD rewards accrued)")

    earner = max(deployment.validators,
                 key=lambda n: deployment.contract.reward_balances.get(
                     n.keypair.public_key, 0))
    if deployment.contract.reward_balances.get(earner.keypair.public_key, 0) > 0:
        print(f"\n  validator #{earner.profile.index} claims its rewards...")
        results = []
        earner.api.claim_rewards(earner.keypair, on_result=results.append)
        deployment.run_for(30.0)
        print(f"  claim {'succeeded' if results[-1].success else 'failed'}")

    # --- exit and the unbonding hold -------------------------------------------
    print("\nThe newcomer requests exit (full unbond)...")
    deployment.user_api.unstake(newcomer.public_key, stake)
    deployment.run_for(30.0)

    results = []
    deployment.user_api.withdraw_stake(newcomer.public_key,
                                       on_result=results.append)
    deployment.run_for(30.0)
    print(f"  immediate withdrawal: "
          f"{'succeeded' if results[-1].success else 'REFUSED (' + results[-1].error + ')'}")

    deployment.run_for(600.0)  # wait out the hold
    results.clear()
    deployment.user_api.withdraw_stake(newcomer.public_key,
                                       on_result=results.append)
    deployment.run_for(30.0)
    print(f"  after the unbonding period: "
          f"{'stake recovered' if results[-1].success else results[-1].error}")

    # --- the §VI-A thought experiment -------------------------------------------
    print("\nThe last-validator problem (§VI-A):")
    epoch = contract.current_epoch
    total = epoch.total_stake
    print(f"  current epoch stake: {lamports_to_usd(total):,.0f} USD across "
          f"{len(epoch)} validators")
    print("  if all but one validator unbonded, the remaining one could never")
    print("  withdraw: with no quorum the chain stops, and stake withdrawal")
    print("  itself needs a live chain. The paper suggests a self-destruct")
    print("  clause releasing assets after prolonged inactivity.")
    print("Done.")


if __name__ == "__main__":
    main()
