"""Host portability: the same guest blockchain on three host designs.

§VI-D argues the guest blockchain applies to "most modern blockchains,
provided they offer basic smart contract functionality".  This example
deploys the *identical* Guest Contract on three differently-shaped
hosts — Solana-like (tiny transactions, sub-second slots), NEAR-like
(roomy transactions, ~1 s blocks) and TRON-like (3 s blocks) — opens a
link on each, makes a transfer, and compares how the host's envelope
shapes the measured quantities (especially the chunked light-client
update counts of Fig. 4).

Run:  python examples/host_portability.py
"""

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.host.profiles import HOST_PROFILES
from repro.metrics.table import format_table
from repro.validators.profiles import simple_profiles


def run_on(profile_name: str) -> dict:
    host_config = HOST_PROFILES[profile_name]()
    host_config.retain_blocks = 2_000
    deployment = Deployment(DeploymentConfig(
        seed=5,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        host=host_config,
        profiles=simple_profiles(4),
    ))
    guest_chan, cp_chan = deployment.establish_link()
    link_time = deployment.sim.now

    deployment.contract.bank.mint("alice", "GUEST", 100)
    payload = deployment.contract.transfer.make_payload(
        guest_chan, "GUEST", 75, "alice", "bob",
    )
    deployment.user_api.send_packet("transfer", str(guest_chan), payload)
    deployment.run_for(300.0)

    voucher = deployment.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
    updates = deployment.relayer.metrics.lc_updates
    return {
        "host": profile_name,
        "slot (s)": f"{host_config.slot_seconds:g}",
        "tx cap (B)": str(host_config.max_transaction_bytes),
        "link time (s)": f"{link_time:.0f}",
        "txs / LC update": f"{sum(u.transaction_count for u in updates) / len(updates):.1f}",
        "transfer ok": str(deployment.counterparty.bank.balance("bob", voucher) == 75),
    }


def main() -> None:
    print("Deploying the identical Guest Contract on three host designs...\n")
    rows = [run_on(name) for name in ("solana", "near-like", "tron-like")]
    headers = list(rows[0].keys())
    print(format_table(headers, [[row[h] for h in headers] for row in rows],
                       title="SVI-D - one guest blockchain, three hosts"))
    print(
        "\nReading the table: the Fig. 4 transaction counts are purely a\n"
        "consequence of the host's transaction-size cap — a NEAR-sized\n"
        "envelope swallows a whole light-client update in a couple of\n"
        "transactions, while Solana's 1232-byte cap forces ~36.  The\n"
        "protocol itself is untouched across all three deployments."
    )


if __name__ == "__main__":
    main()
