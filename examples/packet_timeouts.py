"""Packet timeouts: proving that a packet was *never* delivered.

IBC's timeout path is why the guest needs Δ (§III-A): the counterparty
must observe fresh guest timestamps to decide that a packet's deadline
passed, and vice versa.  This example sends a transfer with a deadline
that expires before delivery, shows the receiving side rejecting the
late packet, and then cancels it on the sender with a *non-membership
proof* of the receipt — refunding the escrowed tokens.

Run:  python examples/packet_timeouts.py
"""

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.ibc import commitment as paths
from repro.validators.profiles import simple_profiles


def main() -> None:
    deployment = Deployment(DeploymentConfig(
        seed=17,
        guest=GuestConfig(delta_seconds=60.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))
    guest_channel, cp_channel = deployment.establish_link()
    contract = deployment.contract
    counterparty = deployment.counterparty

    contract.bank.mint("alice", "GUEST", 500)
    deadline = deployment.sim.now + 5.0  # expires long before relay
    print(f"alice sends 200 GUEST with a deadline {deadline - deployment.sim.now:.0f} s away "
          "(far less than one relay round trip)...")
    payload = contract.transfer.make_payload(guest_channel, "GUEST", 200, "alice", "bob")
    deployment.user_api.send_packet(
        "transfer", str(guest_channel), payload, timeout_timestamp=deadline,
    )
    deployment.run_for(120.0)

    print(f"  alice balance while the packet is in flight: "
          f"{contract.bank.balance('alice', 'GUEST')} GUEST (200 escrowed)")
    print(f"  counterparty received packets: "
          f"{counterparty.ibc.counters.packets_received} "
          "(the relayer's delivery was rejected as expired)")

    # The sender cancels: it needs (1) a counterparty consensus state
    # whose timestamp is past the deadline — the guest's light client
    # already tracks those — and (2) a proof that no receipt exists.
    packet = contract.packets_in_block(1)[0] if contract.packets_in_block(1) else None
    if packet is None:
        for height in range(1, contract.head.height + 1):
            if contract.packets_in_block(height):
                packet = contract.packets_in_block(height)[0]
                break
    assert packet is not None

    # The guest can only time the packet out against a counterparty
    # timestamp it has *verified* — this is exactly why Δ-style header
    # freshness matters (§III-A).  Push one chunked light-client update
    # carrying a header whose time is past the deadline.
    stale_height = contract.counterparty_client.latest_height()
    stale_time = contract.counterparty_client.consensus_timestamp(stale_height)
    print(f"\nGuest's verified counterparty time is stale: {stale_time:.0f} s "
          f"(deadline {deadline:.0f} s) — relaying a fresh header...")
    done = []
    deployment.relayer_api.submit_lc_update(
        counterparty.light_client_update(), on_done=done.append,
    )
    deployment.run_for(120.0)
    assert done and done[-1].success

    lc_height = contract.counterparty_client.latest_height()
    lc_time = contract.counterparty_client.consensus_timestamp(lc_height)
    print(f"  verified counterparty time now {lc_time:.0f} s at height {lc_height} "
          f"({done[-1].transaction_count} chunk transactions)")

    store = counterparty.store_at(lc_height)
    absence = store.prove_seq_absence(
        paths.receipt_prefix(packet.destination_port, packet.destination_channel),
        packet.sequence,
    )
    print("Submitting the timeout with the non-membership proof "
          f"({len(absence.to_bytes())} bytes, chunked over host transactions)...")
    outcome = []
    deployment.relayer_api.timeout_packet(
        packet, absence, lc_height, on_done=outcome.append,
    )
    deployment.run_for(60.0)

    result = outcome[-1]
    print(f"  timeout executed: success={result.success} "
          f"({result.transaction_count} transactions in one bundle)")
    print(f"  alice refunded: {contract.bank.balance('alice', 'GUEST')} GUEST")
    print(f"  guest counters: timed_out={contract.ibc.counters.packets_timed_out}")
    assert contract.bank.balance("alice", "GUEST") == 500
    print("Done.")


if __name__ == "__main__":
    main()
