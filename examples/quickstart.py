"""Quickstart: bring up a guest blockchain and make one cross-chain transfer.

Builds the full simulated deployment — Solana-like host, Guest Contract,
validators, Tendermint-like counterparty, cranker and relayer — opens an
IBC connection + transfer channel through the real four-step handshakes,
and moves tokens in both directions with acknowledgements.  Tracing is
enabled, so the run ends with the observability report: per-phase span
timings, counters and fee/compute histograms (docs/OBSERVABILITY.md).

Run:  python examples/quickstart.py
"""

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.validators.profiles import simple_profiles


def main() -> None:
    print("Building the deployment (host + guest + counterparty)...")
    deployment = Deployment(DeploymentConfig(
        seed=42,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
        tracing=True,
    ))

    print("Opening the IBC connection and transfer channel (4-step handshakes)...")
    guest_channel, cp_channel = deployment.establish_link()
    print(f"  link open after {deployment.sim.now:.0f} simulated seconds: "
          f"guest {guest_channel} <-> counterparty {cp_channel}")
    updates = deployment.relayer.metrics.lc_updates
    print(f"  the handshake needed {len(updates)} chunked light-client updates "
          f"({sum(u.transaction_count for u in updates)} host transactions)")

    # --- guest -> counterparty ------------------------------------------------
    print("\nSending 250 GUEST from alice (guest) to bob (counterparty)...")
    deployment.contract.bank.mint("alice", "GUEST", 1_000)
    payload = deployment.contract.transfer.make_payload(
        guest_channel, "GUEST", 250, "alice", "bob",
    )
    deployment.user_api.send_packet("transfer", str(guest_channel), payload)
    deployment.run_for(180.0)

    voucher = deployment.counterparty.transfer.voucher_denom(cp_channel, "GUEST")
    print(f"  alice (guest):        {deployment.contract.bank.balance('alice', 'GUEST')} GUEST")
    print(f"  bob (counterparty):   {deployment.counterparty.bank.balance('bob', voucher)} {voucher}")
    print(f"  acknowledged back on the guest: "
          f"{deployment.contract.ibc.counters.packets_acknowledged} packet(s)")

    # --- counterparty -> guest ------------------------------------------------
    print("\nSending 90 PICA from carol (counterparty) to dave (guest)...")
    deployment.counterparty.bank.mint("carol", "PICA", 500)

    def send() -> None:
        data = deployment.counterparty.transfer.make_payload(
            cp_channel, "PICA", 90, "carol", "dave",
        )
        deployment.counterparty.ibc.send_packet(
            deployment.counterparty.transfer_port, cp_channel, data, 0.0,
        )

    deployment.counterparty.submit(send)
    deployment.run_for(240.0)

    guest_voucher = deployment.contract.transfer.voucher_denom(guest_channel, "PICA")
    print(f"  carol (counterparty): {deployment.counterparty.bank.balance('carol', 'PICA')} PICA")
    print(f"  dave (guest):         {deployment.contract.bank.balance('dave', guest_voucher)} {guest_voucher}")
    delivery = deployment.relayer.metrics.deliveries[-1]
    print(f"  the delivery took {delivery.transaction_count} host transactions "
          f"in one block (cost {delivery.total_fee / 50_000:.1f} cents)")

    print(f"\nGuest chain head: height {deployment.contract.head.height}, "
          f"state {deployment.contract.state_usage_bytes()} bytes "
          f"of the 10 MiB account")

    # --- what the run looked like, from the trace ----------------------------
    report = deployment.trace_report()
    print("\nObservability report (simulated-time spans and counters):\n")
    print(report.render())
    packet = report.spans_named("packet.block_wait")[0].key
    phases = ", ".join(
        f"{record.name.removeprefix('packet.')} {record.duration:.1f}s"
        for record in report.trace(packet)
        if record.name.startswith("packet.") and record.end is not None
    )
    print(f"\nFirst packet's life (sequence {packet}): {phases}")
    print("Done.")


if __name__ == "__main__":
    main()
