"""Relayer operations: costs, outages and fee escalation.

The operator's view of running a relayer (§V-B):

1. drive traffic and read the spend ledger — where the lamports go
   (spoiler: the chunked light-client updates dominate, as the paper's
   cost analysis shows);
2. take the relayer down mid-traffic and bring it back: packets are
   delayed, never lost (§III-C's untrusted-relayer property);
3. use the escalating fee policy on a congested chain: start cheap,
   pay up only when a transaction has actually waited.

Run:  python examples/relayer_operations.py
"""

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.relayer.strategy import EscalatingFeePolicy
from repro.units import lamports_to_usd
from repro.validators.profiles import simple_profiles


def main() -> None:
    deployment = Deployment(DeploymentConfig(
        seed=77,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))
    guest_chan, cp_chan = deployment.establish_link()
    relayer = deployment.relayer
    print(f"Link open; the handshake alone cost the relayer "
          f"{relayer.ledger.total_usd():.4f} USD\n")

    # --- 1. traffic and the spend ledger -------------------------------------
    print("Relaying five transfers each way...")
    deployment.contract.bank.mint("alice", "GUEST", 10 ** 6)
    deployment.counterparty.bank.mint("carol", "PICA", 10 ** 6)
    for _ in range(5):
        payload = deployment.contract.transfer.make_payload(
            guest_chan, "GUEST", 10, "alice", "bob",
        )
        deployment.user_api.send_packet("transfer", str(guest_chan), payload)

        def send() -> None:
            data = deployment.counterparty.transfer.make_payload(
                cp_chan, "PICA", 10, "carol", "dave",
            )
            deployment.counterparty.ibc.send_packet(
                deployment.counterparty.transfer_port, cp_chan, data, 0.0,
            )
        deployment.counterparty.submit(send)
        deployment.run_for(200.0)
    deployment.run_for(200.0)

    print("\n" + relayer.ledger.summary())
    updates = relayer.metrics.lc_updates
    print(f"  ({len(updates)} chunked light-client updates, "
          f"{sum(u.transaction_count for u in updates)} transactions, "
          f"{sum(u.signature_count for u in updates)} signatures verified)")

    # --- 2. outage and recovery ----------------------------------------------
    print("\nTaking the relayer offline and sending a transfer anyway...")
    relayer.paused = True
    payload = deployment.contract.transfer.make_payload(
        guest_chan, "GUEST", 77, "alice", "bob",
    )
    deployment.user_api.send_packet("transfer", str(guest_chan), payload)
    deployment.run_for(240.0)
    voucher = deployment.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
    stuck = deployment.counterparty.bank.balance("bob", voucher)
    print(f"  bob's balance while the relayer is down: {stuck} "
          "(the packet waits, finalised on the guest)")

    relayer.resume()
    deployment.run_for(240.0)
    print(f"  after recovery: {deployment.counterparty.bank.balance('bob', voucher)} "
          "(delayed, not lost)")

    # --- 3. escalating fees ----------------------------------------------------
    print("\nFee escalation policy on a congested chain:")
    policy = EscalatingFeePolicy(escalate_after=8.0)
    for waited in (0.0, 5.0, 9.0, 20.0, 60.0):
        strategy = policy.strategy_for(waited)
        cost = strategy.fee(1, 0, 1_400_000)
        print(f"  waited {waited:5.1f} s -> {type(strategy).__name__:<12} "
              f"({lamports_to_usd(cost):.4f} USD per transaction)")
    print("\nDone.")


if __name__ == "__main__":
    main()
