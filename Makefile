# Convenience targets for the guest-blockchain reproduction.

PYTHON ?= python

.PHONY: install test lint bench figures examples cluster-smoke chaos-smoke all

install:
	pip install -e . && pip install pytest pytest-benchmark hypothesis

test:
	$(PYTHON) -m pytest tests/

# Style/correctness lint (install with: pip install ruff).
lint:
	ruff check src/ tests/ benchmarks/ examples/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Print every reproduced table/figure to the terminal (~2 min).
figures:
	$(PYTHON) -m repro.experiments

examples:
	for script in examples/*.py; do $(PYTHON) $$script; done

# 2-worker sharded smoke sweep + one replay-divergence audit (~2 min).
cluster-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments throughput-smoke \
		--cluster-workers 2 --run-dir results/cluster-smoke
	PYTHONPATH=src $(PYTHON) -m repro.experiments replay-audit \
		--audit-seeds 401

# Fault-storm convergence check with a fault-free twin (docs/CHAOS.md).
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments chaos-smoke

all: lint test bench figures
