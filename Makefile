# Convenience targets for the guest-blockchain reproduction.

PYTHON ?= python

.PHONY: install test lint bench figures examples all

install:
	pip install -e . && pip install pytest pytest-benchmark hypothesis

test:
	$(PYTHON) -m pytest tests/

# Style/correctness lint (install with: pip install ruff).
lint:
	ruff check src/ tests/ benchmarks/ examples/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Print every reproduced table/figure to the terminal (~2 min).
figures:
	$(PYTHON) -m repro.experiments

examples:
	for script in examples/*.py; do $(PYTHON) $$script; done

all: lint test bench figures
