# Convenience targets for the guest-blockchain reproduction.

PYTHON ?= python

.PHONY: install test lint bench figures examples cluster-smoke chaos-smoke \
	accountability-smoke wallclock-smoke profile-soak fabric-smoke \
	state-smoke all

install:
	pip install -e . && pip install pytest pytest-benchmark hypothesis

test:
	$(PYTHON) -m pytest tests/

# Style/correctness lint (install with: pip install ruff).
lint:
	ruff check src/ tests/ benchmarks/ examples/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Print every reproduced table/figure to the terminal (~2 min).
figures:
	$(PYTHON) -m repro.experiments

examples:
	for script in examples/*.py; do $(PYTHON) $$script; done

# 2-worker sharded smoke sweep + one replay-divergence audit (~2 min).
cluster-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments throughput-smoke \
		--cluster-workers 2 --run-dir results/cluster-smoke
	PYTHONPATH=src $(PYTHON) -m repro.experiments replay-audit \
		--audit-seeds 401

# Fault-storm convergence check with a fault-free twin (docs/CHAOS.md).
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments chaos-smoke

# Equivocation storm: every seeded safety violation must end in an
# attributable on-chain slash, bit-reproducibly across three seeds
# (docs/ACCOUNTABILITY.md).  Writes BENCH_accountability_smoke.json.
accountability-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments accountability-smoke

# Wall-clock hot-path gate: a scaled soak must clear the events/sec
# floor (docs/PERFORMANCE.md).  Writes BENCH_wallclock_smoke.json.
wallclock-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments wallclock-smoke

# Scaled multi-guest fabric sweep: 1/2-guest star partitioning plus the
# 2-hop routed transfer, with schema and conservation checks
# (docs/FABRIC.md).  Writes BENCH_topology_smoke.json.
fabric-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments topology-smoke

# Sealing-scheduler comparison at smoke scale: every scheduler must
# land on the same root; rent-aware must hold its live-byte budget
# (docs/STATE.md).  Writes BENCH_state_smoke.json.
state-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments state-smoke

# cProfile the soak workload and print the top of the profile.
profile-soak:
	PYTHONPATH=src $(PYTHON) -m repro.experiments profile-soak

all: lint test bench figures
