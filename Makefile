# Convenience targets for the guest-blockchain reproduction.

PYTHON ?= python

.PHONY: install test bench figures examples all

install:
	pip install -e . && pip install pytest pytest-benchmark hypothesis

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Print every reproduced table/figure to the terminal (~2 min).
figures:
	$(PYTHON) -m repro.experiments

examples:
	for script in examples/*.py; do $(PYTHON) $$script; done

all: test bench figures
