"""Typed IBC identifiers (clients, connections, channels, ports).

Thin ``str`` wrappers with ICS-24 validity checks: identifiers are
lower-case alphanumerics plus ``-``/``_``, length-bounded, and each kind
carries its conventional prefix (``client-0``, ``connection-3``,
``channel-1``); ports are free-form names like ``transfer``.
"""

from __future__ import annotations

import re

from repro.errors import IbcError

_IDENT_RE = re.compile(r"^[a-z0-9._\-]{2,64}$")


def _validate(value: str, kind: str) -> str:
    if not _IDENT_RE.match(value):
        raise IbcError(f"invalid {kind} identifier {value!r}")
    return value


class ClientId(str):
    """Identifier of a light client hosted on this chain."""

    def __new__(cls, value: str) -> "ClientId":
        return super().__new__(cls, _validate(value, "client"))

    @classmethod
    def sequence(cls, n: int) -> "ClientId":
        return cls(f"client-{n}")


class ConnectionId(str):
    """Identifier of a connection end hosted on this chain."""

    def __new__(cls, value: str) -> "ConnectionId":
        return super().__new__(cls, _validate(value, "connection"))

    @classmethod
    def sequence(cls, n: int) -> "ConnectionId":
        return cls(f"connection-{n}")


class ChannelId(str):
    """Identifier of a channel end hosted on this chain."""

    def __new__(cls, value: str) -> "ChannelId":
        return super().__new__(cls, _validate(value, "channel"))

    @classmethod
    def sequence(cls, n: int) -> "ChannelId":
        return cls(f"channel-{n}")


class PortId(str):
    """A port name an application binds to (e.g. ``transfer``)."""

    def __new__(cls, value: str) -> "PortId":
        return super().__new__(cls, _validate(value, "port"))
