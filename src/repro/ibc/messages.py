"""Wire messages for IBC handshake datagrams.

Relayers drive the connection and channel handshakes by submitting these
messages to each chain (on the guest, through the Guest Contract's
HANDSHAKE instruction — staged through a chunk buffer when the embedded
proof outgrows one host transaction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.encoding import Reader, write_bytes, write_str, write_varint
from repro.ibc.channel import ChannelOrder
from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId
from repro.trie.proof import MembershipProof


@dataclass(frozen=True)
class MsgConnOpenInit:
    client_id: ClientId
    counterparty_client_id: ClientId


@dataclass(frozen=True)
class MsgConnOpenTry:
    client_id: ClientId
    counterparty_client_id: ClientId
    counterparty_connection_id: ConnectionId
    proof: MembershipProof
    proof_height: int
    #: Serialized SelfClientState of *this* chain as seen by the
    #: counterparty's client (validate_self_client input); b"" = absent.
    client_state: bytes = b""


@dataclass(frozen=True)
class MsgConnOpenAck:
    connection_id: ConnectionId
    counterparty_connection_id: ConnectionId
    proof: MembershipProof
    proof_height: int
    #: Serialized SelfClientState (see MsgConnOpenTry); b"" = absent.
    client_state: bytes = b""


@dataclass(frozen=True)
class MsgConnOpenConfirm:
    connection_id: ConnectionId
    proof: MembershipProof
    proof_height: int


@dataclass(frozen=True)
class MsgChanOpenInit:
    port_id: PortId
    connection_id: ConnectionId
    counterparty_port_id: PortId
    order: ChannelOrder


@dataclass(frozen=True)
class MsgChanOpenTry:
    port_id: PortId
    connection_id: ConnectionId
    counterparty_port_id: PortId
    counterparty_channel_id: ChannelId
    order: ChannelOrder
    proof: MembershipProof
    proof_height: int


@dataclass(frozen=True)
class MsgChanOpenAck:
    port_id: PortId
    channel_id: ChannelId
    counterparty_channel_id: ChannelId
    proof: MembershipProof
    proof_height: int


@dataclass(frozen=True)
class MsgChanOpenConfirm:
    port_id: PortId
    channel_id: ChannelId
    proof: MembershipProof
    proof_height: int


HandshakeMsg = Union[
    MsgConnOpenInit, MsgConnOpenTry, MsgConnOpenAck, MsgConnOpenConfirm,
    MsgChanOpenInit, MsgChanOpenTry, MsgChanOpenAck, MsgChanOpenConfirm,
]

_TAGS: list[type] = [
    MsgConnOpenInit, MsgConnOpenTry, MsgConnOpenAck, MsgConnOpenConfirm,
    MsgChanOpenInit, MsgChanOpenTry, MsgChanOpenAck, MsgChanOpenConfirm,
]


def encode_handshake(msg: HandshakeMsg) -> bytes:
    """Tag + field-by-field canonical encoding.

    Built into one shared ``bytearray`` (the proof field dominates the
    payload; everything else appends in place without temporaries).
    """
    out = bytearray()
    write_varint(out, _TAGS.index(type(msg)))
    for name, value in vars(msg).items():
        del name
        if isinstance(value, MembershipProof):
            write_bytes(out, value.to_bytes())
        elif isinstance(value, ChannelOrder):
            write_varint(out, int(value))
        elif isinstance(value, bytes):
            write_bytes(out, value)
        elif isinstance(value, str):
            write_str(out, value)
        elif isinstance(value, int):
            write_varint(out, value)
        else:
            raise TypeError(f"unencodable handshake field {value!r}")
    return bytes(out)


def decode_handshake(data: bytes) -> HandshakeMsg:
    reader = Reader(data)
    tag = reader.read_varint()
    if not 0 <= tag < len(_TAGS):
        raise ValueError(f"unknown handshake tag {tag}")
    cls = _TAGS[tag]
    kwargs = {}
    for name, annotation in cls.__annotations__.items():
        if annotation is MembershipProof or annotation == "MembershipProof":
            kwargs[name] = MembershipProof.from_bytes(reader.read_bytes())
        elif annotation is ChannelOrder or annotation == "ChannelOrder":
            kwargs[name] = ChannelOrder(reader.read_varint())
        elif annotation is bytes or annotation == "bytes":
            kwargs[name] = reader.read_bytes()
        elif annotation is int or annotation == "int":
            kwargs[name] = reader.read_varint()
        else:
            text = reader.read_str()
            kwargs[name] = _id_type(annotation)(text)
    reader.expect_end()
    return cls(**kwargs)


def _id_type(annotation) -> type:
    mapping = {
        ClientId: ClientId, "ClientId": ClientId,
        ConnectionId: ConnectionId, "ConnectionId": ConnectionId,
        ChannelId: ChannelId, "ChannelId": ChannelId,
        PortId: PortId, "PortId": PortId,
    }
    return mapping.get(annotation, str)


def apply_handshake(host, msg: HandshakeMsg) -> Optional[str]:
    """Dispatch a handshake message to an :class:`~repro.ibc.host.IbcHost`.

    Returns the newly created identifier for init/try steps, else None.
    """
    if isinstance(msg, MsgConnOpenInit):
        return str(host.conn_open_init(msg.client_id, msg.counterparty_client_id))
    if isinstance(msg, MsgConnOpenTry):
        return str(host.conn_open_try(
            msg.client_id, msg.counterparty_client_id,
            msg.counterparty_connection_id, msg.proof, msg.proof_height,
            counterparty_client_state=msg.client_state or None,
        ))
    if isinstance(msg, MsgConnOpenAck):
        host.conn_open_ack(msg.connection_id, msg.counterparty_connection_id,
                           msg.proof, msg.proof_height,
                           counterparty_client_state=msg.client_state or None)
        return None
    if isinstance(msg, MsgConnOpenConfirm):
        host.conn_open_confirm(msg.connection_id, msg.proof, msg.proof_height)
        return None
    if isinstance(msg, MsgChanOpenInit):
        return str(host.chan_open_init(
            msg.port_id, msg.connection_id, msg.counterparty_port_id, msg.order,
        ))
    if isinstance(msg, MsgChanOpenTry):
        return str(host.chan_open_try(
            msg.port_id, msg.connection_id, msg.counterparty_port_id,
            msg.counterparty_channel_id, msg.order, msg.proof, msg.proof_height,
        ))
    if isinstance(msg, MsgChanOpenAck):
        host.chan_open_ack(msg.port_id, msg.channel_id,
                           msg.counterparty_channel_id, msg.proof, msg.proof_height)
        return None
    if isinstance(msg, MsgChanOpenConfirm):
        host.chan_open_confirm(msg.port_id, msg.channel_id, msg.proof, msg.proof_height)
        return None
    raise TypeError(f"unknown handshake message {type(msg)!r}")
