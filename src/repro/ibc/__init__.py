"""The Inter-Blockchain Communication protocol core.

A from-scratch implementation of the IBC elements the paper's §II lists:
light clients (ICS-02 interface), connection handshakes (ICS-03),
channels, packets, acknowledgements and timeouts (ICS-04), commitment
paths (ICS-24) and the fungible-token-transfer application (ICS-20).

One :class:`~repro.ibc.host.IbcHost` instance embeds in each chain: the
counterparty runs it natively; the Guest Contract runs it inside the host
program, over the sealable trie — that is the whole point of the paper.
"""

from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId
from repro.ibc.packet import Acknowledgement, Packet
from repro.ibc.client import LightClient
from repro.ibc.connection import ConnectionEnd, ConnectionState
from repro.ibc.channel import ChannelEnd, ChannelOrder, ChannelState
from repro.ibc.host import IbcApp, IbcHost

__all__ = [
    "Acknowledgement",
    "ChannelEnd",
    "ChannelId",
    "ChannelOrder",
    "ChannelState",
    "ClientId",
    "ConnectionEnd",
    "ConnectionId",
    "ConnectionState",
    "IbcApp",
    "IbcHost",
    "LightClient",
    "Packet",
    "PortId",
]
