"""The IBC module: clients, handshakes and the packet lifecycle.

One :class:`IbcHost` embeds in each chain and owns that chain's provable
store.  Every cross-chain claim is checked against a light-client-
verified root: connection/channel handshake steps prove the counterparty
stored the expected end, ``recv_packet`` proves the sender committed the
packet, ``acknowledge_packet`` proves the receiver wrote the ack, and
``timeout_packet`` proves the receiver *never* wrote a receipt.

Storage discipline (the paper's bounded-state story, §III-A):

* packet commitments are **deleted** on acknowledgement or timeout;
* packet receipts are **sealed** once the lagged-sealing rule allows
  (when ``seal_receipts`` is on, as in the Guest Contract) — the sealed
  stub is what rejects double delivery;
* acknowledgements are **sealed** once the sender has confirmed them
  (``confirm_ack``) and the same rule allows.

The *lagged-sealing rule* (see :class:`_SequenceTracker`) refines the
paper's "saves it in the trie and then seals its node": sealing entry
``m`` is deferred until all entries up to ``m + 1`` exist, because a
sealed leaf prunes its whole compressed key-path and would otherwise
block the insertion of a neighbouring sequence that is still in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import (
    ChannelError,
    ClientError,
    DoubleDeliveryError,
    HandshakeError,
    PacketError,
    SealedNodeError,
    TimeoutError_,
)
from repro.ibc import commitment as paths
from repro.ibc.channel import ChannelEnd, ChannelOrder, ChannelState
from repro.ibc.client import LightClient
from repro.ibc.connection import ConnectionEnd, ConnectionState
from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId
from repro.ibc.packet import RECEIPT_VALUE, Acknowledgement, Packet
from repro.state.scheduler import EagerScheduler, SealScheduler
from repro.trie.proof import MembershipProof, NonMembershipProof
from repro.trie.store import ProvableStore, path_key, seq_key


class _SequenceTracker:
    """Decides when a sequenced entry may be *sealed* safely.

    Sealing a leaf prunes its whole compressed path, so a sealed entry
    for sequence ``m`` can block a *later insert* of a nearby sequence.
    Two facts make sealing safe (proof in DESIGN.md):

    * a key **greater** than ``m`` already exists in the subtree — then
      every future (higher) sequence diverges at or above ``m``'s branch
      point; and
    * every key **lower** than ``m`` already exists — then no earlier
      sequence can still arrive underneath the sealed leaf.

    Both hold exactly when ``m + 1 < watermark``, where the watermark is
    the end of the contiguous received prefix.  The tracker maintains
    that watermark and yields the sequences that became sealable.
    """

    __slots__ = ("watermark", "pending", "unsealed")

    def __init__(self) -> None:
        self.watermark = 0           # all sequences < watermark are present
        self.pending: set[int] = set()    # present sequences >= watermark
        self.unsealed: set[int] = set()   # present but not yet sealed

    def record(self, sequence: int, consume: bool = True) -> list[int]:
        """Note that ``sequence``'s entry was written; return the
        sequences now safe to seal (in increasing order).

        With ``consume=False`` the sealable entries stay tracked — used
        for acks, which additionally wait for the sender's confirmation
        before actually being sealed.
        """
        self.pending.add(sequence)
        self.unsealed.add(sequence)
        while self.watermark in self.pending:
            self.pending.remove(self.watermark)
            self.watermark += 1
        sealable = sorted(s for s in self.unsealed if s + 1 < self.watermark)
        if consume:
            for s in sealable:
                self.unsealed.remove(s)
        return sealable


class IbcApp:
    """Application callbacks bound to a port (ICS-05/ICS-26 style)."""

    def on_recv(self, packet: Packet) -> Acknowledgement:
        """Handle a delivered packet; the returned ack is committed."""
        return Acknowledgement.ok()

    def on_acknowledge(self, packet: Packet, ack: Acknowledgement) -> None:
        """The counterparty acknowledged our packet."""

    def on_timeout(self, packet: Packet) -> None:
        """Our packet timed out and was never delivered."""


@dataclass
class IbcCounters:
    """Protocol statistics the experiments read."""

    packets_sent: int = 0
    packets_received: int = 0
    packets_acknowledged: int = 0
    packets_timed_out: int = 0
    double_deliveries_rejected: int = 0


class IbcHost:
    """The per-chain IBC module."""

    def __init__(self, chain_id: str, store: Optional[ProvableStore] = None,
                 seal_receipts: bool = False,
                 seal_scheduler: Optional["SealScheduler"] = None) -> None:
        self.chain_id = chain_id
        self.store = store if store is not None else ProvableStore()
        if seal_scheduler is None and seal_receipts:
            seal_scheduler = EagerScheduler()
        #: Policy deciding *when* safe entries actually get sealed; the
        #: lagged-sealing rule below decides *which* are safe.  Sealing
        #: is root-neutral, so the policy never affects consensus.
        self.seal_scheduler = seal_scheduler
        self.seal_receipts = seal_scheduler is not None
        self.counters = IbcCounters()
        self.clients: dict[ClientId, LightClient] = {}
        self.connections: dict[ConnectionId, ConnectionEnd] = {}
        self.channels: dict[tuple[PortId, ChannelId], ChannelEnd] = {}
        self.apps: dict[PortId, IbcApp] = {}
        self._next_seq_send: dict[tuple[PortId, ChannelId], int] = {}
        self._next_seq_recv: dict[tuple[PortId, ChannelId], int] = {}
        self._acked: dict[tuple[PortId, ChannelId], set[int]] = {}
        self._receipt_tracker: dict[tuple[PortId, ChannelId], _SequenceTracker] = {}
        self._ack_tracker: dict[tuple[PortId, ChannelId], _SequenceTracker] = {}
        self._ack_confirmed: dict[tuple[PortId, ChannelId], set[int]] = {}
        #: (destination channel, sequence) -> (packet, ack) for every
        #: ack this chain has written — the queryable event log a
        #: restarting relayer rescans for ack returns whose volatile
        #: state died with it (real chains expose this as indexed
        #: WriteAcknowledgement events).
        self.written_acks: dict[tuple[str, int],
                                tuple[Packet, Acknowledgement]] = {}
        self._client_counter = 0
        self._connection_counter = 0
        self._channel_counter = 0
        #: Optional hook validating the counterparty's claimed view of
        #: *this* chain during connection handshakes — the
        #: validate_self_client check the paper's footnote 2 highlights.
        #: Callable[bytes] raising HandshakeError on a bogus claim.
        self.self_client_validator: Optional[Callable[[bytes], None]] = None
        #: Optional observer invoked with every packet this host sends
        #: (chains use it to surface sends to relayers).
        self.on_send: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    # Clients (ICS-02)
    # ------------------------------------------------------------------

    def create_client(self, client: LightClient) -> ClientId:
        client_id = ClientId.sequence(self._client_counter)
        self._client_counter += 1
        self.clients[client_id] = client
        return client_id

    def client(self, client_id: ClientId) -> LightClient:
        client = self.clients.get(client_id)
        if client is None:
            raise ClientError(f"unknown client {client_id}")
        return client

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------

    def bind_port(self, port_id: PortId, app: IbcApp) -> None:
        if port_id in self.apps:
            raise ChannelError(f"port {port_id} already bound")
        self.apps[port_id] = app

    # ------------------------------------------------------------------
    # Connection handshake (ICS-03)
    # ------------------------------------------------------------------

    def conn_open_init(self, client_id: ClientId, counterparty_client_id: ClientId) -> ConnectionId:
        self.client(client_id)  # must exist
        connection_id = ConnectionId.sequence(self._connection_counter)
        self._connection_counter += 1
        end = ConnectionEnd(
            state=ConnectionState.INIT,
            client_id=client_id,
            counterparty_client_id=counterparty_client_id,
            counterparty_connection_id=None,
        )
        self._set_connection(connection_id, end)
        return connection_id

    def conn_open_try(
        self,
        client_id: ClientId,
        counterparty_client_id: ClientId,
        counterparty_connection_id: ConnectionId,
        proof: MembershipProof,
        proof_height: int,
        counterparty_client_state: Optional[bytes] = None,
    ) -> ConnectionId:
        """Open-try: prove the counterparty stored the INIT end and — when
        supplied — validate its client's view of this chain (ICS-03's
        validate_self_client; see repro.ibc.self_client)."""
        self._validate_self_client(counterparty_client_state)
        expected = ConnectionEnd(
            state=ConnectionState.INIT,
            client_id=counterparty_client_id,
            counterparty_client_id=client_id,
            counterparty_connection_id=None,
        )
        self._verify_stored(
            client_id, proof_height,
            paths.connection_path(counterparty_connection_id),
            expected.to_bytes(), proof,
            "counterparty connection INIT",
        )
        connection_id = ConnectionId.sequence(self._connection_counter)
        self._connection_counter += 1
        end = ConnectionEnd(
            state=ConnectionState.TRYOPEN,
            client_id=client_id,
            counterparty_client_id=counterparty_client_id,
            counterparty_connection_id=counterparty_connection_id,
        )
        self._set_connection(connection_id, end)
        return connection_id

    def conn_open_ack(
        self,
        connection_id: ConnectionId,
        counterparty_connection_id: ConnectionId,
        proof: MembershipProof,
        proof_height: int,
        counterparty_client_state: Optional[bytes] = None,
    ) -> None:
        self._validate_self_client(counterparty_client_state)
        end = self.connection(connection_id)
        if end.state != ConnectionState.INIT:
            raise HandshakeError(f"{connection_id} not in INIT (is {end.state.name})")
        expected = ConnectionEnd(
            state=ConnectionState.TRYOPEN,
            client_id=end.counterparty_client_id,
            counterparty_client_id=end.client_id,
            counterparty_connection_id=connection_id,
        )
        self._verify_stored(
            end.client_id, proof_height,
            paths.connection_path(counterparty_connection_id),
            expected.to_bytes(), proof,
            "counterparty connection TRYOPEN",
        )
        updated = end.with_counterparty(counterparty_connection_id).with_state(ConnectionState.OPEN)
        self._set_connection(connection_id, updated)

    def conn_open_confirm(self, connection_id: ConnectionId, proof: MembershipProof, proof_height: int) -> None:
        end = self.connection(connection_id)
        if end.state != ConnectionState.TRYOPEN:
            raise HandshakeError(f"{connection_id} not in TRYOPEN (is {end.state.name})")
        assert end.counterparty_connection_id is not None
        expected = ConnectionEnd(
            state=ConnectionState.OPEN,
            client_id=end.counterparty_client_id,
            counterparty_client_id=end.client_id,
            counterparty_connection_id=connection_id,
        )
        self._verify_stored(
            end.client_id, proof_height,
            paths.connection_path(end.counterparty_connection_id),
            expected.to_bytes(), proof,
            "counterparty connection OPEN",
        )
        self._set_connection(connection_id, end.with_state(ConnectionState.OPEN))

    def _validate_self_client(self, claimed: Optional[bytes]) -> None:
        if claimed is not None and self.self_client_validator is not None:
            self.self_client_validator(claimed)

    def connection(self, connection_id: ConnectionId) -> ConnectionEnd:
        end = self.connections.get(connection_id)
        if end is None:
            raise HandshakeError(f"unknown connection {connection_id}")
        return end

    def _set_connection(self, connection_id: ConnectionId, end: ConnectionEnd) -> None:
        self.connections[connection_id] = end
        self.store.set(paths.connection_path(connection_id), end.to_bytes())

    # ------------------------------------------------------------------
    # Channel handshake (ICS-04)
    # ------------------------------------------------------------------

    def chan_open_init(
        self,
        port_id: PortId,
        connection_id: ConnectionId,
        counterparty_port_id: PortId,
        order: ChannelOrder = ChannelOrder.UNORDERED,
    ) -> ChannelId:
        self._require_port(port_id)
        connection = self.connection(connection_id)
        if connection.state != ConnectionState.OPEN:
            raise HandshakeError(f"connection {connection_id} not OPEN")
        channel_id = ChannelId.sequence(self._channel_counter)
        self._channel_counter += 1
        end = ChannelEnd(
            state=ChannelState.INIT,
            order=order,
            connection_id=connection_id,
            counterparty_port_id=counterparty_port_id,
            counterparty_channel_id=None,
        )
        self._set_channel(port_id, channel_id, end)
        return channel_id

    def chan_open_try(
        self,
        port_id: PortId,
        connection_id: ConnectionId,
        counterparty_port_id: PortId,
        counterparty_channel_id: ChannelId,
        order: ChannelOrder,
        proof: MembershipProof,
        proof_height: int,
    ) -> ChannelId:
        self._require_port(port_id)
        connection = self.connection(connection_id)
        if connection.state != ConnectionState.OPEN:
            raise HandshakeError(f"connection {connection_id} not OPEN")
        assert connection.counterparty_connection_id is not None
        expected = ChannelEnd(
            state=ChannelState.INIT,
            order=order,
            connection_id=connection.counterparty_connection_id,
            counterparty_port_id=port_id,
            counterparty_channel_id=None,
        )
        self._verify_stored(
            connection.client_id, proof_height,
            paths.channel_path(counterparty_port_id, counterparty_channel_id),
            expected.to_bytes(), proof,
            "counterparty channel INIT",
        )
        channel_id = ChannelId.sequence(self._channel_counter)
        self._channel_counter += 1
        end = ChannelEnd(
            state=ChannelState.TRYOPEN,
            order=order,
            connection_id=connection_id,
            counterparty_port_id=counterparty_port_id,
            counterparty_channel_id=counterparty_channel_id,
        )
        self._set_channel(port_id, channel_id, end)
        return channel_id

    def chan_open_ack(
        self,
        port_id: PortId,
        channel_id: ChannelId,
        counterparty_channel_id: ChannelId,
        proof: MembershipProof,
        proof_height: int,
    ) -> None:
        end = self.channel(port_id, channel_id)
        if end.state != ChannelState.INIT:
            raise HandshakeError(f"channel {channel_id} not in INIT (is {end.state.name})")
        connection = self.connection(end.connection_id)
        assert connection.counterparty_connection_id is not None
        expected = ChannelEnd(
            state=ChannelState.TRYOPEN,
            order=end.order,
            connection_id=connection.counterparty_connection_id,
            counterparty_port_id=port_id,
            counterparty_channel_id=channel_id,
        )
        self._verify_stored(
            connection.client_id, proof_height,
            paths.channel_path(end.counterparty_port_id, counterparty_channel_id),
            expected.to_bytes(), proof,
            "counterparty channel TRYOPEN",
        )
        updated = end.with_counterparty(counterparty_channel_id).with_state(ChannelState.OPEN)
        self._set_channel(port_id, channel_id, updated)

    def chan_open_confirm(self, port_id: PortId, channel_id: ChannelId,
                          proof: MembershipProof, proof_height: int) -> None:
        end = self.channel(port_id, channel_id)
        if end.state != ChannelState.TRYOPEN:
            raise HandshakeError(f"channel {channel_id} not in TRYOPEN (is {end.state.name})")
        connection = self.connection(end.connection_id)
        assert connection.counterparty_connection_id is not None
        assert end.counterparty_channel_id is not None
        expected = ChannelEnd(
            state=ChannelState.OPEN,
            order=end.order,
            connection_id=connection.counterparty_connection_id,
            counterparty_port_id=port_id,
            counterparty_channel_id=channel_id,
        )
        self._verify_stored(
            connection.client_id, proof_height,
            paths.channel_path(end.counterparty_port_id, end.counterparty_channel_id),
            expected.to_bytes(), proof,
            "counterparty channel OPEN",
        )
        self._set_channel(port_id, channel_id, end.with_state(ChannelState.OPEN))

    def chan_close_init(self, port_id: PortId, channel_id: ChannelId) -> None:
        """Close our end of a channel (ICS-04).

        In-flight packets can still be acknowledged or timed out — only
        *new* sends and deliveries stop.
        """
        end = self.channel(port_id, channel_id)
        if end.state != ChannelState.OPEN:
            raise ChannelError(f"channel {port_id}/{channel_id} not OPEN")
        self._set_channel(port_id, channel_id, end.with_state(ChannelState.CLOSED))

    def chan_close_confirm(self, port_id: PortId, channel_id: ChannelId,
                           proof: MembershipProof, proof_height: int) -> None:
        """Close our end after proving the counterparty closed theirs."""
        end = self.channel(port_id, channel_id)
        if end.state != ChannelState.OPEN:
            raise ChannelError(f"channel {port_id}/{channel_id} not OPEN")
        connection = self.connection(end.connection_id)
        assert connection.counterparty_connection_id is not None
        assert end.counterparty_channel_id is not None
        expected = ChannelEnd(
            state=ChannelState.CLOSED,
            order=end.order,
            connection_id=connection.counterparty_connection_id,
            counterparty_port_id=port_id,
            counterparty_channel_id=channel_id,
        )
        self._verify_stored(
            connection.client_id, proof_height,
            paths.channel_path(end.counterparty_port_id, end.counterparty_channel_id),
            expected.to_bytes(), proof,
            "counterparty channel CLOSED",
        )
        self._set_channel(port_id, channel_id, end.with_state(ChannelState.CLOSED))

    def channel(self, port_id: PortId, channel_id: ChannelId) -> ChannelEnd:
        end = self.channels.get((port_id, channel_id))
        if end is None:
            raise ChannelError(f"unknown channel {port_id}/{channel_id}")
        return end

    def _set_channel(self, port_id: PortId, channel_id: ChannelId, end: ChannelEnd) -> None:
        self.channels[(port_id, channel_id)] = end
        self.store.set(paths.channel_path(port_id, channel_id), end.to_bytes())

    def _require_port(self, port_id: PortId) -> None:
        if port_id not in self.apps:
            raise ChannelError(f"no app bound to port {port_id}")

    # ------------------------------------------------------------------
    # Packet lifecycle (ICS-04)
    # ------------------------------------------------------------------

    def send_packet(self, port_id: PortId, channel_id: ChannelId,
                    payload: bytes, timeout_timestamp: float = 0.0) -> Packet:
        """Commit an outgoing packet (Alg. 1's SendPacket body)."""
        end = self._open_channel(port_id, channel_id)
        assert end.counterparty_channel_id is not None
        key = (port_id, channel_id)
        sequence = self._next_seq_send.get(key, 0)
        self._next_seq_send[key] = sequence + 1
        packet = Packet(
            sequence=sequence,
            source_port=port_id,
            source_channel=channel_id,
            destination_port=end.counterparty_port_id,
            destination_channel=end.counterparty_channel_id,
            payload=payload,
            timeout_timestamp=timeout_timestamp,
        )
        self.store.set_seq(
            paths.commitment_prefix(port_id, channel_id), sequence, packet.commitment(),
        )
        self.counters.packets_sent += 1
        if self.on_send is not None:
            self.on_send(packet)
        return packet

    def recv_packet(self, packet: Packet, proof: MembershipProof, proof_height: int,
                    local_time: float = 0.0) -> Acknowledgement:
        """Verify and deliver an incoming packet (Alg. 1's ReceivePacket)."""
        end = self._open_channel(packet.destination_port, packet.destination_channel)
        if (end.counterparty_port_id != packet.source_port
                or end.counterparty_channel_id != packet.source_channel):
            raise PacketError("packet routed through the wrong channel")
        if packet.timeout_timestamp and local_time > packet.timeout_timestamp:
            raise TimeoutError_(
                f"packet {packet.sequence} expired at {packet.timeout_timestamp}"
            )

        connection = self.connection(end.connection_id)
        client = self.client(connection.client_id)
        commitment_key = seq_key(
            paths.commitment_prefix(packet.source_port, packet.source_channel),
            packet.sequence,
        )
        if not client.verify_key_membership(
            proof_height, commitment_key, packet.commitment(), proof,
        ):
            raise PacketError(
                f"invalid commitment proof for packet {packet.sequence} "
                f"at height {proof_height}"
            )

        receipt_prefix = paths.receipt_prefix(
            packet.destination_port, packet.destination_channel,
        )
        # Double-delivery guard (Alg. 1 line `assert ph not in trie`): a
        # sealed receipt raises SealedNodeError, which is precisely the
        # "cannot access -> already delivered" behaviour of §III-A.
        try:
            already = self.store.contains_seq(receipt_prefix, packet.sequence)
        except SealedNodeError:
            already = True
        if already:
            self.counters.double_deliveries_rejected += 1
            raise DoubleDeliveryError(
                f"packet {packet.sequence} on {packet.destination_channel} already received"
            )

        if end.order == ChannelOrder.ORDERED:
            expected = self._next_seq_recv.get(
                (packet.destination_port, packet.destination_channel), 0,
            )
            if packet.sequence != expected:
                raise PacketError(
                    f"ordered channel expected sequence {expected}, got {packet.sequence}"
                )
            self._next_seq_recv[(packet.destination_port, packet.destination_channel)] = expected + 1

        self.store.set_seq(receipt_prefix, packet.sequence, RECEIPT_VALUE)
        destination = (packet.destination_port, packet.destination_channel)
        if self.seal_receipts:
            tracker = self._receipt_tracker.setdefault(destination, _SequenceTracker())
            for sealable in tracker.record(packet.sequence):
                self.seal_scheduler.offer(receipt_prefix, sealable)
            self._drain_seals()

        app = self.apps[packet.destination_port]
        ack = app.on_recv(packet)
        self.store.set_seq(
            paths.ack_prefix(packet.destination_port, packet.destination_channel),
            packet.sequence,
            ack.commitment(),
        )
        if self.seal_receipts:
            tracker = self._ack_tracker.setdefault(destination, _SequenceTracker())
            tracker.record(packet.sequence, consume=False)
            self._seal_confirmed_acks(destination)
        self.written_acks[
            (str(packet.destination_channel), packet.sequence)] = (packet, ack)
        self.counters.packets_received += 1
        return ack

    def acknowledge_packet(self, packet: Packet, ack: Acknowledgement,
                           proof: MembershipProof, proof_height: int) -> None:
        """Process the receiver's ack: prove it, clear our commitment.

        Allowed on CLOSED channels too: closing stops new traffic, but
        in-flight packets must still settle.
        """
        end = self._open_channel(packet.source_port, packet.source_channel,
                                 allow_closed=True)
        connection = self.connection(end.connection_id)
        client = self.client(connection.client_id)
        ack_key = seq_key(
            paths.ack_prefix(packet.destination_port, packet.destination_channel),
            packet.sequence,
        )
        if not client.verify_key_membership(proof_height, ack_key, ack.commitment(), proof):
            raise PacketError(
                f"invalid ack proof for packet {packet.sequence} at height {proof_height}"
            )
        commitment_prefix = paths.commitment_prefix(packet.source_port, packet.source_channel)
        if not self.store.contains_seq(commitment_prefix, packet.sequence):
            raise PacketError(f"packet {packet.sequence} has no outstanding commitment")
        # Deleting the commitment bounds the sender-side state (§III-A).
        self.store.delete_seq(commitment_prefix, packet.sequence)
        self._acked.setdefault((packet.source_port, packet.source_channel), set()).add(packet.sequence)
        self.apps[packet.source_port].on_acknowledge(packet, ack)
        self.counters.packets_acknowledged += 1

    def timeout_packet(self, packet: Packet, proof: NonMembershipProof, proof_height: int) -> None:
        """Cancel an expired packet: prove the receiver never got it."""
        end = self._open_channel(packet.source_port, packet.source_channel,
                                 allow_closed=True)
        connection = self.connection(end.connection_id)
        client = self.client(connection.client_id)
        if not packet.timeout_timestamp:
            raise TimeoutError_("packet has no timeout")
        counterparty_time = client.consensus_timestamp(proof_height)
        if counterparty_time is None or counterparty_time <= packet.timeout_timestamp:
            raise TimeoutError_(
                f"counterparty time at height {proof_height} has not passed "
                f"the timeout {packet.timeout_timestamp}"
            )
        receipt_key = seq_key(
            paths.receipt_prefix(packet.destination_port, packet.destination_channel),
            packet.sequence,
        )
        if not client.verify_key_absence(proof_height, receipt_key, proof):
            raise PacketError(
                f"invalid non-receipt proof for packet {packet.sequence}"
            )
        commitment_prefix = paths.commitment_prefix(packet.source_port, packet.source_channel)
        if not self.store.contains_seq(commitment_prefix, packet.sequence):
            raise PacketError(f"packet {packet.sequence} has no outstanding commitment")
        self.store.delete_seq(commitment_prefix, packet.sequence)
        self.apps[packet.source_port].on_timeout(packet)
        self.counters.packets_timed_out += 1

    def confirm_ack(self, port_id: PortId, channel_id: ChannelId, sequence: int) -> None:
        """Mark an acknowledgement as processed by the sender and seal it
        as soon as the lagged-sealing rule allows.

        Permissionless maintenance: once the source chain deleted its
        commitment, the ack will never need to be proven again, so its
        entry can be pruned from storage (§III-A: "only values which are
        no longer needed may be sealed").
        """
        key = (port_id, channel_id)
        self._ack_confirmed.setdefault(key, set()).add(sequence)
        self._seal_confirmed_acks(key)

    def _seal_confirmed_acks(self, key: tuple[PortId, ChannelId]) -> None:
        """Seal every ack that is both confirmed and safely sealable."""
        tracker = self._ack_tracker.get(key)
        confirmed = self._ack_confirmed.get(key)
        if tracker is None or not confirmed:
            return
        port_id, channel_id = key
        ready = sorted(
            s for s in confirmed
            if s in tracker.unsealed and s + 1 < tracker.watermark
        )
        ack_prefix = paths.ack_prefix(port_id, channel_id)
        for sequence in ready:
            self.seal_scheduler.offer(ack_prefix, sequence)
            tracker.unsealed.remove(sequence)
            confirmed.remove(sequence)
        self._drain_seals()

    def _drain_seals(self) -> None:
        """Apply every seal the scheduler releases.

        Loops so budget-driven policies can re-check the store between
        batches; each non-empty batch shrinks the scheduler's queue, so
        the loop terminates.
        """
        scheduler = self.seal_scheduler
        if scheduler is None:
            return
        while True:
            due = scheduler.drain(self.store)
            if not due:
                return
            for prefix, sequence in due:
                self.store.seal_seq(prefix, sequence)

    def _open_channel(self, port_id: PortId, channel_id: ChannelId,
                      allow_closed: bool = False) -> ChannelEnd:
        end = self.channel(port_id, channel_id)
        allowed = (ChannelState.OPEN, ChannelState.CLOSED) if allow_closed else (ChannelState.OPEN,)
        if end.state not in allowed:
            raise ChannelError(f"channel {port_id}/{channel_id} not OPEN")
        return end

    # ------------------------------------------------------------------
    # Proof plumbing
    # ------------------------------------------------------------------

    def _verify_stored(self, client_id: ClientId, height: int, path: str,
                       expected_value: bytes, proof: MembershipProof, what: str) -> None:
        client = self.client(client_id)
        if not client.verify_key_membership(height, path_key(path), expected_value, proof):
            raise HandshakeError(f"proof of {what} failed at height {height}")
