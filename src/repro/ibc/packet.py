"""IBC packets and acknowledgements (ICS-04).

A packet is addressed by its source and destination (port, channel)
pairs and a per-channel sequence number; the *commitment* stored in the
sender's provable state binds every routing field, the payload and the
timeout, so a relayer cannot alter any of them in flight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Hash, hash_concat
from repro.encoding import Reader, encode_bytes, encode_str, encode_varint
from repro.ibc.identifiers import ChannelId, PortId


@dataclass(frozen=True, slots=True)
class Packet:
    """One IBC packet."""

    sequence: int
    source_port: PortId
    source_channel: ChannelId
    destination_port: PortId
    destination_channel: ChannelId
    payload: bytes
    #: Absolute counterparty-observed timestamp after which the packet
    #: may be timed out instead of delivered (0 = no timeout).
    timeout_timestamp: float

    def commitment(self) -> bytes:
        """The 32-byte value stored under the packet-commitment key."""
        digest = hash_concat(
            b"packet",
            self.sequence.to_bytes(8, "big"),
            self.source_port.encode(),
            self.source_channel.encode(),
            self.destination_port.encode(),
            self.destination_channel.encode(),
            self.payload,
            round(self.timeout_timestamp * 1000).to_bytes(8, "big"),
        )
        return bytes(digest)

    def commitment_hash(self) -> Hash:
        return Hash(self.commitment())

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += encode_varint(self.sequence)
        out += encode_str(self.source_port)
        out += encode_str(self.source_channel)
        out += encode_str(self.destination_port)
        out += encode_str(self.destination_channel)
        out += encode_bytes(self.payload)
        out += encode_varint(round(self.timeout_timestamp * 1000))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        reader = Reader(data)
        packet = cls.read_from(reader)
        reader.expect_end()
        return packet

    @classmethod
    def read_from(cls, reader: Reader) -> "Packet":
        return cls(
            sequence=reader.read_varint(),
            source_port=PortId(reader.read_str()),
            source_channel=ChannelId(reader.read_str()),
            destination_port=PortId(reader.read_str()),
            destination_channel=ChannelId(reader.read_str()),
            payload=reader.read_bytes(),
            timeout_timestamp=reader.read_varint() / 1000.0,
        )


@dataclass(frozen=True, slots=True)
class Acknowledgement:
    """The receiver's application-level response to a packet."""

    success: bool
    result: bytes

    def to_bytes(self) -> bytes:
        return (b"\x01" if self.success else b"\x00") + self.result

    @classmethod
    def from_bytes(cls, data: bytes) -> "Acknowledgement":
        if not data:
            raise ValueError("empty acknowledgement")
        return cls(success=data[0] == 1, result=data[1:])

    def commitment(self) -> bytes:
        """The value stored under the acknowledgement key."""
        return bytes(hash_concat(b"ack", self.to_bytes()))

    @classmethod
    def ok(cls, result: bytes = b"") -> "Acknowledgement":
        return cls(success=True, result=result)

    @classmethod
    def error(cls, reason: str) -> "Acknowledgement":
        return cls(success=False, result=reason.encode("utf-8"))


#: The value written under a packet-receipt key (presence is what counts).
RECEIPT_VALUE = b"\x01"
