"""Connection ends and the ICS-03 handshake state machine.

A connection binds a local light client to a counterparty chain's light
client of *us*.  The four-step handshake (init → try → ack → confirm)
has each side prove to the other — via membership proofs against light-
client-verified roots — that the counterparty really stored the expected
connection state.  This is the "handshake that verifies the identity and
status of each blockchain" of §II.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.encoding import Reader, encode_str, encode_varint
from repro.ibc.identifiers import ClientId, ConnectionId


class ConnectionState(enum.IntEnum):
    INIT = 1
    TRYOPEN = 2
    OPEN = 3


@dataclass(frozen=True)
class ConnectionEnd:
    """One side of a connection, as stored in the provable state."""

    state: ConnectionState
    client_id: ClientId
    counterparty_client_id: ClientId
    counterparty_connection_id: ConnectionId | None

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += encode_varint(int(self.state))
        out += encode_str(self.client_id)
        out += encode_str(self.counterparty_client_id)
        out += encode_str(self.counterparty_connection_id or "")
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ConnectionEnd":
        reader = Reader(data)
        state = ConnectionState(reader.read_varint())
        client_id = ClientId(reader.read_str())
        counterparty_client_id = ClientId(reader.read_str())
        raw = reader.read_str()
        reader.expect_end()
        return cls(
            state=state,
            client_id=client_id,
            counterparty_client_id=counterparty_client_id,
            counterparty_connection_id=ConnectionId(raw) if raw else None,
        )

    def with_state(self, state: ConnectionState) -> "ConnectionEnd":
        return replace(self, state=state)

    def with_counterparty(self, connection_id: ConnectionId) -> "ConnectionEnd":
        return replace(self, counterparty_connection_id=connection_id)
