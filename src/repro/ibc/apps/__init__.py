"""IBC applications (the port-bound modules packets are delivered to)."""

from repro.ibc.apps.transfer import Bank, FungibleTokenPacketData, TransferApp

__all__ = ["Bank", "FungibleTokenPacketData", "TransferApp"]
