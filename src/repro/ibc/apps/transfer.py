"""ICS-20: fungible token transfer over IBC.

The canonical IBC application, and the workload behind the paper's
evaluation (packets carrying cross-chain token transfers between Solana
and Picasso).  Semantics follow the spec's denom-tracing rules:

* a *native* token leaving the chain is **escrowed**; the destination
  mints a **voucher** whose denom is prefixed with the destination's
  ``port/channel``;
* a voucher heading back to its origin is **burned** on send; the origin
  recognises the returning denom by its own ``source port/channel``
  prefix on the wire and releases the escrow;
* a failed or timed-out transfer refunds the sender (un-escrow or
  re-mint, depending on which path the send took).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding import Reader, encode_str, encode_varint
from repro.errors import IbcError
from repro.ibc.host import IbcApp
from repro.ibc.identifiers import ChannelId, PortId
from repro.ibc.packet import Acknowledgement, Packet


class Bank:
    """Minimal multi-denomination ledger: (address, denom) -> amount."""

    def __init__(self) -> None:
        self._balances: dict[tuple[str, str], int] = {}

    def balance(self, address: str, denom: str) -> int:
        return self._balances.get((address, denom), 0)

    def mint(self, address: str, denom: str, amount: int) -> None:
        if amount < 0:
            raise IbcError("cannot mint a negative amount")
        self._balances[(address, denom)] = self.balance(address, denom) + amount

    def burn(self, address: str, denom: str, amount: int) -> None:
        current = self.balance(address, denom)
        if amount < 0 or current < amount:
            raise IbcError(
                f"{address} holds {current} {denom}, cannot burn {amount}"
            )
        remaining = current - amount
        if remaining:
            self._balances[(address, denom)] = remaining
        else:
            self._balances.pop((address, denom), None)

    def transfer(self, source: str, destination: str, denom: str, amount: int) -> None:
        self.burn(source, denom, amount)
        self.mint(destination, denom, amount)

    def total_supply(self, denom: str) -> int:
        return sum(
            amount for (_, d), amount in self._balances.items() if d == denom
        )

    def balances(self) -> dict[tuple[str, str], int]:
        """Snapshot of every (address, denom) -> amount entry (what the
        fabric conservation checker sums over)."""
        return dict(self._balances)


@dataclass(frozen=True, slots=True)
class FungibleTokenPacketData:
    """The ICS-20 packet payload."""

    denom: str
    amount: int
    sender: str
    receiver: str

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += encode_str(self.denom)
        out += encode_varint(self.amount)
        out += encode_str(self.sender)
        out += encode_str(self.receiver)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FungibleTokenPacketData":
        reader = Reader(data)
        parsed = cls(
            denom=reader.read_str(),
            amount=reader.read_varint(),
            sender=reader.read_str(),
            receiver=reader.read_str(),
        )
        reader.expect_end()
        return parsed


class RateLimiter:
    """Sliding-window inbound value limit (§VI-C).

    The paper's damage-limitation advice: "implementers should rate
    limit the light clients" so a compromised counterparty cannot drain
    everything before humans react.  This limiter caps the token value a
    channel may *receive* per window; packets over the budget are
    rejected with an error ack (refunding the sender) rather than
    dropped.
    """

    def __init__(self, max_amount: int, window_seconds: float, clock) -> None:
        if max_amount <= 0 or window_seconds <= 0:
            raise IbcError("rate limit needs a positive amount and window")
        self.max_amount = max_amount
        self.window_seconds = window_seconds
        self._clock = clock
        self._entries: list[tuple[float, int]] = []

    def _prune(self, now: float) -> None:
        horizon = now - self.window_seconds
        self._entries = [(t, a) for t, a in self._entries if t > horizon]

    def window_usage(self) -> int:
        self._prune(self._clock())
        return sum(amount for _, amount in self._entries)

    def allow(self, amount: int) -> bool:
        """Consume budget for ``amount`` if available."""
        now = self._clock()
        self._prune(now)
        if sum(a for _, a in self._entries) + amount > self.max_amount:
            return False
        self._entries.append((now, amount))
        return True


class TransferApp(IbcApp):
    """The ICS-20 application bound to a chain's ``transfer`` port."""

    def __init__(self, bank: Bank, port_id: PortId,
                 rate_limiter: "RateLimiter | None" = None) -> None:
        self.bank = bank
        self.port_id = port_id
        #: Optional §VI-C inbound value limiter.
        self.rate_limiter = rate_limiter

    def escrow_address(self, channel_id: ChannelId) -> str:
        return f"escrow/{self.port_id}/{channel_id}"

    def voucher_denom(self, channel_id: ChannelId, base_denom: str) -> str:
        """The denom a foreign token circulates under on this chain."""
        return f"{self.port_id}/{channel_id}/{base_denom}"

    def _local_prefix(self, channel_id: ChannelId) -> str:
        return f"{self.port_id}/{channel_id}/"

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def make_payload(self, channel_id: ChannelId, denom: str, amount: int,
                     sender: str, receiver: str) -> bytes:
        """Escrow-or-burn locally and return the packet payload to send.

        Callers pass the returned bytes to their chain's ``send_packet``
        over the same ``channel_id``.
        """
        if amount <= 0:
            raise IbcError("transfer amount must be positive")
        prefix = self._local_prefix(channel_id)
        if denom.startswith(prefix):
            # A voucher returning to its origin: burn it here; the wire
            # carries the full prefixed denom so the origin can recognise
            # it by the (source port, source channel) prefix.
            self.bank.burn(sender, denom, amount)
        else:
            # A native token leaving: lock it in this channel's escrow.
            self.bank.transfer(sender, self.escrow_address(channel_id), denom, amount)
        data = FungibleTokenPacketData(denom, amount, sender, receiver)
        return data.to_bytes()

    def _refund(self, packet: Packet) -> None:
        try:
            data = FungibleTokenPacketData.from_bytes(packet.payload)
        except ValueError:
            # Not an ICS-20 payload: it never passed through
            # make_payload, so nothing was escrowed or burned.
            return
        if data.denom.startswith(self._local_prefix(packet.source_channel)):
            # The send burned a voucher: re-mint it.
            self.bank.mint(data.sender, data.denom, data.amount)
        else:
            # The send escrowed a native token: release it.
            self.bank.transfer(
                self.escrow_address(packet.source_channel),
                data.sender, data.denom, data.amount,
            )

    # ------------------------------------------------------------------
    # IbcApp callbacks
    # ------------------------------------------------------------------

    def on_recv(self, packet: Packet) -> Acknowledgement:
        try:
            data = FungibleTokenPacketData.from_bytes(packet.payload)
        except (ValueError, IbcError) as exc:
            return Acknowledgement.error(f"malformed ICS-20 payload: {exc}")
        if self.rate_limiter is not None and not self.rate_limiter.allow(data.amount):
            return Acknowledgement.error(
                "inbound transfer rate limit exceeded (SVI-C safety cap); "
                "retry after the window passes"
            )
        returning_prefix = f"{packet.source_port}/{packet.source_channel}/"
        try:
            if data.denom.startswith(returning_prefix):
                # Our native token coming home: strip the sender's prefix
                # and release this channel's escrow.
                base_denom = data.denom[len(returning_prefix):]
                self.bank.transfer(
                    self.escrow_address(packet.destination_channel),
                    data.receiver, base_denom, data.amount,
                )
            else:
                # A foreign token arriving: mint its voucher here.
                voucher = self.voucher_denom(packet.destination_channel, data.denom)
                self.bank.mint(data.receiver, voucher, data.amount)
        except IbcError as exc:
            return Acknowledgement.error(str(exc))
        return Acknowledgement.ok()

    def on_acknowledge(self, packet: Packet, ack: Acknowledgement) -> None:
        if not ack.success:
            self._refund(packet)

    def on_timeout(self, packet: Packet) -> None:
        self._refund(packet)
