"""ICS ping-pong: the canonical channel-liveness application.

IBC deployments conventionally keep a trivial echo app around to probe
channels end to end without moving value (relayer smoke tests, latency
monitoring).  A ping packet carries a nonce; the receiver acknowledges
with the same nonce, and the sender records the measured round-trip.

Useful here both as a second real application over the same IBC core
(exercising multi-port routing) and as the natural workload for latency
probes in operations tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encoding import Reader, encode_bytes, encode_varint
from repro.ibc.host import IbcApp
from repro.ibc.packet import Acknowledgement, Packet


@dataclass(frozen=True)
class PingPayload:
    """A ping: nonce plus the sender's send timestamp."""

    nonce: int
    sent_at: float

    def to_bytes(self) -> bytes:
        return encode_varint(self.nonce) + encode_varint(round(self.sent_at * 1000))

    @classmethod
    def from_bytes(cls, data: bytes) -> "PingPayload":
        reader = Reader(data)
        payload = cls(nonce=reader.read_varint(),
                      sent_at=reader.read_varint() / 1000.0)
        reader.expect_end()
        return payload


@dataclass
class PingRecord:
    """One completed round trip."""

    nonce: int
    sent_at: float
    acked_at: float

    @property
    def round_trip(self) -> float:
        return self.acked_at - self.sent_at


class PingApp(IbcApp):
    """The echo application, bound to its own port on both chains."""

    def __init__(self, clock=None) -> None:
        #: Clock used to timestamp ack processing (injected by the
        #: embedding chain; defaults to 0 for pure unit use).
        self._clock = clock or (lambda: 0.0)
        self.pings_received: list[int] = []
        self.completed: list[PingRecord] = []
        self.timeouts: list[int] = []

    def make_payload(self, nonce: int) -> bytes:
        return PingPayload(nonce=nonce, sent_at=self._clock()).to_bytes()

    def on_recv(self, packet: Packet) -> Acknowledgement:
        try:
            payload = PingPayload.from_bytes(packet.payload)
        except ValueError as exc:
            return Acknowledgement.error(f"malformed ping: {exc}")
        self.pings_received.append(payload.nonce)
        # Pong: echo the nonce back in the ack result.
        return Acknowledgement.ok(encode_varint(payload.nonce))

    def on_acknowledge(self, packet: Packet, ack: Acknowledgement) -> None:
        if not ack.success:
            return
        payload = PingPayload.from_bytes(packet.payload)
        echoed = Reader(ack.result).read_varint()
        if echoed != payload.nonce:
            return  # a mismatched pong is ignored, not trusted
        self.completed.append(PingRecord(
            nonce=payload.nonce,
            sent_at=payload.sent_at,
            acked_at=self._clock(),
        ))

    def on_timeout(self, packet: Packet) -> None:
        payload = PingPayload.from_bytes(packet.payload)
        self.timeouts.append(payload.nonce)

    def round_trip_times(self) -> list[float]:
        return [record.round_trip for record in self.completed]
