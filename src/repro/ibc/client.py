"""The light-client interface (ICS-02).

A light client tracks the counterparty chain's consensus: for each
verified height it stores the state root (the counterparty's provable-
store commitment) and the block timestamp.  The IBC handlers use it to
verify membership/non-membership proofs against those roots and to
evaluate packet timeouts against counterparty time.

Two concrete clients live in :mod:`repro.lightclient`: the guest light
client (stake-quorum signature verification — what counterparties run to
follow the guest chain) and the Tendermint light client (what the Guest
Contract runs, in chunks, to follow the counterparty).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.crypto.hashing import Hash
from repro.errors import ClientError
from repro.trie.proof import (
    MembershipProof,
    NonMembershipProof,
    verify_membership,
    verify_non_membership,
)


class LightClient(abc.ABC):
    """On-chain view of a counterparty chain's consensus."""

    def __init__(self) -> None:
        self.frozen = False

    # -- consensus tracking ------------------------------------------------

    @abc.abstractmethod
    def latest_height(self) -> int:
        """Highest verified counterparty height."""

    @abc.abstractmethod
    def consensus_root(self, height: int) -> Optional[Hash]:
        """Provable-store root at ``height`` (None if untracked)."""

    @abc.abstractmethod
    def consensus_timestamp(self, height: int) -> Optional[float]:
        """Counterparty block time at ``height`` (None if untracked)."""

    # -- misbehaviour --------------------------------------------------------

    def freeze(self) -> None:
        """Stop trusting this client (evidence of counterparty equivocation
        or a security response, §VI-C)."""
        self.frozen = True

    def ensure_active(self) -> None:
        if self.frozen:
            raise ClientError("light client is frozen")

    # -- proof verification ----------------------------------------------

    def verify_key_membership(self, height: int, key: bytes, value: bytes, proof: MembershipProof) -> bool:
        """Check that ``key -> value`` under the root verified at ``height``."""
        self.ensure_active()
        root = self.consensus_root(height)
        if root is None:
            return False
        if proof.key != key or proof.value != value:
            return False
        return verify_membership(root, proof)

    def verify_key_absence(self, height: int, key: bytes, proof: NonMembershipProof) -> bool:
        """Check that ``key`` is absent under the root verified at ``height``."""
        self.ensure_active()
        root = self.consensus_root(height)
        if root is None:
            return False
        if proof.key != key:
            return False
        return verify_non_membership(root, proof)
