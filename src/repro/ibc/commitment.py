"""ICS-24 commitment paths and keys.

Two families of state entries:

* **Path-addressed** entries (clients, connections, channels) live at
  human-readable paths hashed to 32-byte trie keys.
* **Sequenced** entries (packet commitments, receipts, acks) use the
  monotone key scheme ``H(prefix)[:24] || seq``: all sequences of one
  channel share a subtree, which is what makes *sealing* old entries safe
  (see :func:`repro.trie.store.seq_key`).

Verifiers reconstruct the same keys from the packet's routing fields, so
proofs can never be replayed across channels or sequences.
"""

from __future__ import annotations

from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId


# --- path-addressed entries -------------------------------------------------

def client_state_path(client_id: ClientId) -> str:
    return f"clients/{client_id}/clientState"


def consensus_state_path(client_id: ClientId, height: int) -> str:
    return f"clients/{client_id}/consensusStates/{height}"


def connection_path(connection_id: ConnectionId) -> str:
    return f"connections/{connection_id}"


def channel_path(port_id: PortId, channel_id: ChannelId) -> str:
    return f"channelEnds/ports/{port_id}/channels/{channel_id}"


def next_sequence_send_path(port_id: PortId, channel_id: ChannelId) -> str:
    return f"nextSequenceSend/ports/{port_id}/channels/{channel_id}"


# --- sequenced entries (sealable) --------------------------------------------

def commitment_prefix(port_id: PortId, channel_id: ChannelId) -> str:
    """Prefix of the packet-commitment subtree for one channel."""
    return f"commitments/ports/{port_id}/channels/{channel_id}"


def receipt_prefix(port_id: PortId, channel_id: ChannelId) -> str:
    """Prefix of the packet-receipt subtree for one channel."""
    return f"receipts/ports/{port_id}/channels/{channel_id}"


def ack_prefix(port_id: PortId, channel_id: ChannelId) -> str:
    """Prefix of the acknowledgement subtree for one channel."""
    return f"acks/ports/{port_id}/channels/{channel_id}"
