"""Self-client validation: the check the paper calls out as missing.

Footnote 2 of the paper points at Octopus Network's NEAR-IBC leaving
``validate_self_client`` blank.  The check matters during the connection
handshake: each chain inspects the light client the *counterparty* runs
of *it*, and refuses the connection if that client's view of "us" is
bogus (wrong chain id, a future height, an unknown validator set) —
otherwise a malicious counterparty could bind the connection to a fake
twin of the local chain.

This module defines the portable summary both chains exchange and the
validators each chain registers with its :class:`~repro.ibc.host.IbcHost`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding import Reader, encode_bytes, encode_str, encode_varint
from repro.errors import HandshakeError


@dataclass(frozen=True)
class SelfClientState:
    """What a chain's light client claims about the chain it tracks."""

    chain_id: str
    latest_height: int
    #: Commitment to the validator set the client currently trusts
    #: (epoch hash for guest clients, valset hash for Tendermint ones).
    trusted_set_hash: bytes

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += encode_str(self.chain_id)
        out += encode_varint(self.latest_height)
        out += encode_bytes(self.trusted_set_hash)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SelfClientState":
        reader = Reader(data)
        state = cls(
            chain_id=reader.read_str(),
            latest_height=reader.read_varint(),
            trusted_set_hash=reader.read_bytes(),
        )
        reader.expect_end()
        return state


def validate_self_client(claimed: SelfClientState, our_chain_id: str,
                         our_height: int, known_set_hashes: frozenset[bytes]) -> None:
    """The generic validation both chains run (what NEAR-IBC left blank).

    Raises :class:`HandshakeError` when the counterparty's client of us:

    * tracks a different chain id (it is following someone else);
    * claims a height we have not reached (a fabricated future);
    * trusts a validator set we never had (a fake twin's set).
    """
    if claimed.chain_id != our_chain_id:
        raise HandshakeError(
            f"counterparty's client tracks chain {claimed.chain_id!r}, "
            f"we are {our_chain_id!r}"
        )
    if claimed.latest_height > our_height:
        raise HandshakeError(
            f"counterparty's client claims height {claimed.latest_height}; "
            f"our head is {our_height}"
        )
    if claimed.trusted_set_hash not in known_set_hashes:
        raise HandshakeError(
            "counterparty's client trusts a validator set this chain never had"
        )
