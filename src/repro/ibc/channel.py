"""Channel ends (ICS-04).

A channel multiplexes an application-level packet stream over a
connection; it is identified by a ⟨port, channel⟩ pair on each side
(§III-A: "Each stream, called a channel, is identified by a
⟨name, port⟩ pair").  Channels open through the same four-step proof-
checked handshake connections use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.encoding import Reader, encode_str, encode_varint
from repro.ibc.identifiers import ChannelId, ConnectionId, PortId


class ChannelState(enum.IntEnum):
    INIT = 1
    TRYOPEN = 2
    OPEN = 3
    CLOSED = 4


class ChannelOrder(enum.IntEnum):
    UNORDERED = 1
    ORDERED = 2


@dataclass(frozen=True)
class ChannelEnd:
    """One side of a channel, as stored in the provable state."""

    state: ChannelState
    order: ChannelOrder
    connection_id: ConnectionId
    counterparty_port_id: PortId
    counterparty_channel_id: ChannelId | None

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += encode_varint(int(self.state))
        out += encode_varint(int(self.order))
        out += encode_str(self.connection_id)
        out += encode_str(self.counterparty_port_id)
        out += encode_str(self.counterparty_channel_id or "")
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ChannelEnd":
        reader = Reader(data)
        state = ChannelState(reader.read_varint())
        order = ChannelOrder(reader.read_varint())
        connection_id = ConnectionId(reader.read_str())
        counterparty_port_id = PortId(reader.read_str())
        raw = reader.read_str()
        reader.expect_end()
        return cls(
            state=state,
            order=order,
            connection_id=connection_id,
            counterparty_port_id=counterparty_port_id,
            counterparty_channel_id=ChannelId(raw) if raw else None,
        )

    def with_state(self, state: ChannelState) -> "ChannelEnd":
        return replace(self, state=state)

    def with_counterparty(self, channel_id: ChannelId) -> "ChannelEnd":
        return replace(self, counterparty_channel_id=channel_id)
