"""Deployment builder: the whole system wired on one event loop.

``Deployment.build`` assembles what the paper deployed (§IV): the host
chain, the Guest Contract with its 10 MiB state account, the validator
set (genesis validators bonded, late joiners staking mid-run), the
counterparty chain, the cranker, the relayer and — optionally — a
fisherman with a gossip layer.  ``establish_link`` then runs the real
ICS-03/ICS-04 handshakes through the relayer, after which both
directions of ICS-20 transfer work end to end.

Tests, examples and every experiment build on this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.counterparty.chain import CounterpartyChain, CounterpartyConfig
from repro.crypto.keys import Keypair, SignatureScheme
from repro.crypto.simsig import SimSigScheme
from repro.errors import SimulationError
from repro.fisherman.fisherman import Fisherman
from repro.guest.api import GuestApi
from repro.guest.config import GuestConfig
from repro.guest.contract import GuestContract
from repro.host.accounts import Address
from repro.host.chain import HostChain, HostConfig
from repro.ibc.identifiers import ChannelId, ClientId, PortId
from repro.lightclient.guest_client import GuestLightClient
from repro.observability import TraceReport, Tracer
from repro.relayer.cranker import Cranker
from repro.relayer.relayer import Relayer, RelayerConfig
from repro.sim.gossip import GossipNetwork
from repro.sim.kernel import Simulation
from repro.units import sol_to_lamports
from repro.validators.node import ValidatorNode
from repro.validators.profiles import ValidatorProfile, simple_profiles


@dataclass
class DeploymentConfig:
    """Everything one simulated deployment needs."""

    seed: int = 7
    #: Simulated run length; validator join windows scale to it.
    run_duration: float = 3600.0
    guest: GuestConfig = field(default_factory=GuestConfig)
    host: HostConfig = field(default_factory=HostConfig)
    counterparty: CounterpartyConfig = field(default_factory=CounterpartyConfig)
    relayer: RelayerConfig = field(default_factory=RelayerConfig)
    profiles: Optional[list[ValidatorProfile]] = None
    cranker_poll_seconds: float = 2.0
    with_fisherman: bool = False
    #: Signature-scheme factory.  Defaults to the fast simulation scheme;
    #: pass repro.crypto.ed25519.Ed25519Scheme for real curve arithmetic
    #: (DESIGN.md SS2 documents the substitution).
    scheme_factory: type = SimSigScheme
    #: Enable the observability layer (docs/OBSERVABILITY.md): spans,
    #: counters and histograms recorded in simulated time, queryable
    #: afterwards via ``deployment.trace_report()``.  Off by default —
    #: a disabled tracer reduces every probe to a no-op.
    tracing: bool = False


@dataclass
class ProvisionedGuest:
    """One guest contract with its operational cohort, ready to link."""

    contract: GuestContract
    deployer: Address
    validators: list[ValidatorNode]
    cranker: Cranker
    cranker_payer: Address
    genesis_bonded: int


def provision_guest(sim: Simulation, host: HostChain, scheme: SignatureScheme,
                    guest_config: GuestConfig, counterparty_chain_id: str,
                    profiles: list[ValidatorProfile], run_duration: float,
                    *, namespace: str = "guest", label_prefix: str = "",
                    cranker_poll_seconds: float = 2.0,
                    key_salt: int = 0) -> ProvisionedGuest:
    """Deploy one guest contract and everything that keeps it alive.

    The per-guest half of what ``Deployment.__init__`` used to inline:
    the contract with its 10 MiB state account (§V-D's deposit), the
    validator cohort (genesis joiners bonded, late joiners staking
    mid-run), genesis, and a cranker.  The topology builder calls this
    once per guest with a distinct ``namespace``/``label_prefix`` so
    accounts, fees and validator keys never collide across guests; the
    legacy single-guest path uses the defaults, which reproduce the
    original addresses and key seeds byte for byte.
    """
    contract = GuestContract(guest_config, counterparty_chain_id,
                             namespace=namespace)
    host.deploy(contract)

    deployer = Address.derive(f"{label_prefix}deployer")
    host.airdrop(deployer, sol_to_lamports(10_000.0))
    host.accounts.allocate(
        deployer, contract.state_account,
        guest_config.state_account_bytes, contract.program_id,
    )

    validators: list[ValidatorNode] = []
    genesis_bonded = 0
    for profile in profiles:
        payer = Address.derive(f"{label_prefix}validator-payer-{profile.index}")
        host.airdrop(payer, sol_to_lamports(100.0))
        keypair = scheme.keypair_from_seed(
            bytes([1]) + profile.index.to_bytes(4, "big")
            + key_salt.to_bytes(4, "big") + bytes(23)
        )
        api = GuestApi(host, contract, payer)
        node = ValidatorNode(
            sim=sim, chain=host, contract=contract,
            api=api, keypair=keypair, profile=profile,
            run_duration=run_duration,
        )
        validators.append(node)
        if profile.join_fraction == 0.0:
            contract.staking.bond(keypair.public_key, profile.stake)
            genesis_bonded += profile.stake
        else:
            def stake_later(api=api, keypair=keypair, profile=profile):
                api.stake(keypair.public_key, profile.stake)
            sim.schedule(node.join_time, stake_later)
            host.airdrop(payer, profile.stake)
    # Genesis bonds never passed through STAKE transactions, so fund
    # the treasury directly to keep withdrawals solvent.
    host.airdrop(contract.treasury, genesis_bonded)

    contract.initialize(ctx_slot=0, ctx_time=0.0)

    cranker_payer = Address.derive(f"{label_prefix}cranker-payer")
    host.airdrop(cranker_payer, sol_to_lamports(1_000.0))
    cranker = Cranker(
        sim, contract, GuestApi(host, contract, cranker_payer),
        poll_seconds=cranker_poll_seconds,
    )
    return ProvisionedGuest(
        contract=contract, deployer=deployer, validators=validators,
        cranker=cranker, cranker_payer=cranker_payer,
        genesis_bonded=genesis_bonded,
    )


def open_transfer_link(sim: Simulation, relayer: Relayer,
                       guest_client_id: ClientId,
                       *, guest_port: str = "transfer",
                       cp_port: Optional[str] = None,
                       max_seconds: float = 3_600.0) -> tuple[ChannelId, ChannelId]:
    """Drive one relayer's ICS-03 + ICS-04 handshakes to completion.

    The per-link half of the old ``establish_link``: opens a connection,
    then a channel over it, stepping the simulation until both four-step
    handshakes finish (or ``max_seconds`` of simulated time pass).
    Returns the (guest channel, counterparty channel) pair.  Shared by
    the legacy single-link path and the fabric topology builder, which
    calls it once per guest↔counterparty link.
    """
    cp_port = cp_port if cp_port is not None else guest_port
    outcome: dict[str, ChannelId] = {}

    def channel_open(guest_chan: ChannelId, cp_chan: ChannelId) -> None:
        outcome["guest"] = guest_chan
        outcome["cp"] = cp_chan

    def connection_open(guest_conn, cp_conn) -> None:
        relayer.open_channel(PortId(guest_port), PortId(cp_port), channel_open)

    relayer.open_connection(guest_client_id, connection_open)
    deadline = sim.now + max_seconds
    while "cp" not in outcome:
        if sim.now >= deadline or not sim.step():
            raise SimulationError(
                f"link establishment incomplete after {sim.now:.0f} s"
            )
    return outcome["guest"], outcome["cp"]


class Deployment:
    """A fully wired guest-blockchain deployment."""

    def __init__(self, config: DeploymentConfig) -> None:
        self.config = config
        self.sim = Simulation(
            seed=config.seed,
            tracer=Tracer() if config.tracing else None,
        )
        self.scheme: SignatureScheme = config.scheme_factory()
        self.host = HostChain(self.sim, self.scheme, config.host)
        self.counterparty = CounterpartyChain(self.sim, self.scheme, config.counterparty)

        profiles = config.profiles if config.profiles is not None else simple_profiles(4)
        provisioned = provision_guest(
            self.sim, self.host, self.scheme, config.guest,
            config.counterparty.chain_id, profiles, config.run_duration,
            cranker_poll_seconds=config.cranker_poll_seconds,
        )
        self.contract = provisioned.contract
        self.deployer = provisioned.deployer
        self.validators = provisioned.validators
        self.cranker = provisioned.cranker
        self.cranker_payer = provisioned.cranker_payer

        # Light client of the guest, hosted on the counterparty.
        assert self.contract.current_epoch is not None
        self.guest_client = GuestLightClient(self.scheme, self.contract.current_epoch)
        self.guest_client_id_on_cp: ClientId = self.counterparty.ibc.create_client(self.guest_client)

        self.relayer_payer = Address.derive("relayer-payer")
        self.host.airdrop(self.relayer_payer, sol_to_lamports(10_000.0))
        self.relayer_api = GuestApi(self.host, self.contract, self.relayer_payer)
        self.relayer = Relayer(
            self.sim, self.host, self.counterparty, self.contract,
            self.relayer_api, self.guest_client, self.guest_client_id_on_cp,
            config.relayer,
        )

        self.gossip = GossipNetwork(self.sim)
        self.fisherman: Optional[Fisherman] = None
        if config.with_fisherman:
            fisherman_payer = Address.derive("fisherman-payer")
            self.host.airdrop(fisherman_payer, sol_to_lamports(100.0))
            self.fisherman = Fisherman(
                self.sim, self.gossip, self.contract,
                GuestApi(self.host, self.contract, fisherman_payer),
                guest_client=self.guest_client,
            )

        # User accounts for workloads and examples.
        self.user = Address.derive("guest-user")
        self.host.airdrop(self.user, sol_to_lamports(1_000.0))
        self.user_api = GuestApi(self.host, self.contract, self.user)

    # ------------------------------------------------------------------
    # Link establishment (the real handshakes)
    # ------------------------------------------------------------------

    def establish_link(self, max_seconds: float = 3_600.0,
                       port: str = "transfer") -> tuple[ChannelId, ChannelId]:
        """Open a connection and a transfer channel end to end.

        Runs the simulation until both four-step handshakes complete;
        raises if they do not finish within ``max_seconds``.
        """
        return open_transfer_link(
            self.sim, self.relayer, self.contract.counterparty_client_id,
            guest_port=port, cp_port=port, max_seconds=max_seconds,
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def run_for(self, seconds: float) -> None:
        self.sim.run_until(self.sim.now + seconds)

    def trace_report(self) -> TraceReport:
        """Snapshot of everything the tracer recorded so far (empty
        when the deployment was built without ``tracing=True``)."""
        return self.sim.trace.report()

    def validator_keypair(self, index: int) -> Keypair:
        for node in self.validators:
            if node.profile.index == index:
                return node.keypair
        raise KeyError(f"no validator with index {index}")


def build(config: Optional[DeploymentConfig] = None) -> Deployment:
    """Build a deployment (default: 4 homogeneous validators, fast)."""
    return Deployment(config or DeploymentConfig())
