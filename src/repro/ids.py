"""Process-global id mints, made rewindable for checkpoint replay.

Transactions, bundles, chunk buffers, host events and trace spans all
carry process-unique ids drawn from module-global counters.  Those
counters are *process* state, not world state: a world restored from a
checkpoint would mint different ids than the original run did, and the
difference leaks into span keys, receipt ordering keys and event logs —
exactly the kind of silent drift the replay-divergence audit exists to
catch.

Every global mint therefore registers here under a stable name.  A
checkpoint records ``mint_states()`` alongside the world; restoring
rewinds each mint to its recorded position, so a replayed world mints
the very same ids the original would have.

The flip side, documented in ``docs/CHECKPOINT.md``: because mints are
process-global, only **one live world per process** is supported —
restoring a checkpoint rewinds the mints out from under any other world
still running in the same process.  The cluster runner gives each world
its own worker process for exactly this reason.
"""

from __future__ import annotations

_MINTS: dict[str, "Mint"] = {}


class Mint:
    """Drop-in for ``itertools.count`` that can report and rewind."""

    __slots__ = ("_next",)

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def __iter__(self) -> "Mint":
        return self

    def __next__(self) -> int:
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """The id the next ``next()`` will return (no mint happens)."""
        return self._next

    def rewind(self, value: int) -> None:
        """Move the mint so the next id is ``value``."""
        self._next = value


def mint(name: str, start: int = 1) -> Mint:
    """Create (or return the existing) named global mint."""
    existing = _MINTS.get(name)
    if existing is not None:
        return existing
    created = Mint(start)
    _MINTS[name] = created
    return created


def mint_states() -> dict[str, int]:
    """Snapshot of every registered mint's next id (checkpointed)."""
    return {name: registered.peek() for name, registered in sorted(_MINTS.items())}


def rewind_mints(states: dict[str, int]) -> None:
    """Rewind registered mints to a checkpointed :func:`mint_states`.

    Unknown names are ignored (a newer checkpoint restored under an
    older tree simply leaves mints this build never mints from).
    """
    for name, value in states.items():
        registered = _MINTS.get(name)
        if registered is not None:
            registered.rewind(value)
