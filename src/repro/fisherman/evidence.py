"""Evidence material: block claims and a byzantine validator actor.

A *block claim* is what circulates on the gossip layer: "validator V
signed (height, fingerprint)".  Honest claims match real guest blocks;
the three §III-C offences are claims that do not:

1. two signatures for different blocks at the same height,
2. a signature for a height above the chain's head,
3. a signature for a block that differs from the known block at that
   height.

All three reduce on-chain to the same check (the signed fingerprint
conflicts with the contract's record), which is how the Guest Contract's
EVIDENCE instruction validates them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import Keypair, PublicKey, Signature
from repro.guest.block import GuestBlockHeader, sign_message
from repro.host.events import HostEvent
from repro.sim.gossip import GossipNetwork
from repro.sim.kernel import Simulation

GOSSIP_TOPIC = "guest-block-signatures"
#: Whole (possibly forged) finalisations: a header plus a signature set
#: claiming quorum.  Conflicting ones are the raw material of
#: accountability proofs (docs/ACCOUNTABILITY.md).
FINALISATION_TOPIC = "guest-finalisations"


@dataclass(frozen=True)
class BlockClaim:
    """A (possibly forged) signed block attestation seen on gossip."""

    validator: PublicKey
    height: int
    fingerprint: bytes
    signature: Signature

    def message(self) -> bytes:
        return sign_message(self.height, self.fingerprint)


@dataclass(frozen=True)
class FinalisationClaim:
    """A (possibly forged) finalisation seen on gossip: a full header
    and the signature set said to finalise it.

    A colluding quorum that split-brains the guest produces one of these
    for the fork; the fisherman pairs it with the real finalisation at
    the same height to build an :class:`~repro.accountability.
    AccountabilityProof` naming the double-signing intersection.
    """

    header: GuestBlockHeader
    signatures: tuple[tuple[PublicKey, Signature], ...]

    def fingerprint(self) -> bytes:
        return self.header.fingerprint()

    def message(self) -> bytes:
        return self.header.sign_message()


class ByzantineValidator:
    """A validator that equivocates: besides (optionally) signing real
    blocks, it gossips signatures over forged fingerprints.

    Used by tests and the misbehaviour example to exercise the Fisherman
    and slashing path end to end.
    """

    def __init__(self, sim: Simulation, gossip: GossipNetwork,
                 keypair: Keypair, forge_above_head: bool = False) -> None:
        self.sim = sim
        self.gossip = gossip
        self.keypair = keypair
        self.forge_above_head = forge_above_head
        self.claims_made: list[BlockClaim] = []
        self._rng = sim.rng.fork("byzantine")

    def equivocate(self, height: int) -> BlockClaim:
        """Sign a made-up block at ``height`` and gossip it."""
        fake_fingerprint = self._rng.bytes(32)
        claim = BlockClaim(
            validator=self.keypair.public_key,
            height=height,
            fingerprint=fake_fingerprint,
            signature=self.keypair.sign(sign_message(height, fake_fingerprint)),
        )
        self.claims_made.append(claim)
        self.gossip.publish(GOSSIP_TOPIC, claim)
        return claim

    def on_new_block(self, event: HostEvent) -> None:
        """Hook: equivocate on (or above) each real block."""
        height = event.payload["height"]
        target = height + 3 if self.forge_above_head else height
        self.equivocate(target)
