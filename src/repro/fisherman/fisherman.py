"""The Fisherman actor (§III-C).

Watches the gossip layer for signed block claims, cross-checks each one
against the Guest Contract's on-chain record, and submits evidence for
any claim that conflicts — the contract then verifies the signature via
the runtime precompile and slashes the offender.  Fishermen are
permissionless; the slashing reward funds the watch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownBlockError
from repro.fisherman.evidence import GOSSIP_TOPIC, BlockClaim
from repro.guest.api import GuestApi
from repro.guest.contract import GuestContract
from repro.host.transaction import TxReceipt
from repro.sim.gossip import GossipNetwork
from repro.sim.kernel import Simulation


@dataclass
class FishermanReport:
    """One submitted piece of evidence and its outcome."""

    claim: BlockClaim
    accepted: bool
    error: str | None = None


class Fisherman:
    """Monitors gossip and prosecutes equivocating validators."""

    def __init__(self, sim: Simulation, gossip: GossipNetwork,
                 contract: GuestContract, api: GuestApi) -> None:
        self.sim = sim
        self.contract = contract
        self.api = api
        self.reports: list[FishermanReport] = []
        self._prosecuted: set[tuple[bytes, int, bytes]] = set()
        gossip.subscribe(GOSSIP_TOPIC, self._on_claim)

    def _is_offence(self, claim: BlockClaim) -> bool:
        """The three §III-C offences collapse to: the claimed
        (height, fingerprint) does not match the real chain."""
        try:
            block = self.contract.block_at(claim.height)
        except UnknownBlockError:
            return True  # signed above the head
        return claim.fingerprint != block.header.fingerprint()

    def _on_claim(self, claim: BlockClaim) -> None:
        key = (bytes(claim.validator), claim.height, claim.fingerprint)
        if key in self._prosecuted:
            return
        if not self._is_offence(claim):
            return  # honest signature; nothing to do
        if self.contract.staking.stake_of(claim.validator) == 0:
            return  # nothing to slash
        self._prosecuted.add(key)

        def record(receipt: TxReceipt) -> None:
            self.reports.append(FishermanReport(
                claim=claim, accepted=receipt.success, error=receipt.error,
            ))

        self.api.submit_evidence(
            offender=claim.validator,
            height=claim.height,
            fingerprint=claim.fingerprint,
            signature=claim.signature,
            message=claim.message(),
            on_result=record,
        )
