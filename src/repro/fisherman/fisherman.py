"""The Fisherman actor (§III-C).

Watches the gossip layer for signed block claims, cross-checks each one
against the Guest Contract's on-chain record, and submits evidence for
any claim that conflicts — the contract then verifies the signature via
the runtime precompile and slashes the offender.  Fishermen are
permissionless; the slashing reward funds the watch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HostUnavailableError, UnknownBlockError
from repro.fisherman.evidence import GOSSIP_TOPIC, BlockClaim
from repro.guest.api import GuestApi
from repro.guest.contract import GuestContract
from repro.host.transaction import TxReceipt
from repro.sim.gossip import GossipNetwork
from repro.sim.kernel import Simulation


@dataclass
class FishermanReport:
    """One submitted piece of evidence and its outcome."""

    claim: BlockClaim
    accepted: bool
    error: str | None = None


class Fisherman:
    """Monitors gossip and prosecutes equivocating validators."""

    #: Bounded retry for evidence that failed to land (RPC blackout or a
    #: dropped transaction): the prosecution must not silently die with
    #: the first fault, or the offender keeps their stake.
    max_attempts: int = 8
    retry_seconds: float = 4.0

    def __init__(self, sim: Simulation, gossip: GossipNetwork,
                 contract: GuestContract, api: GuestApi) -> None:
        self.sim = sim
        self.contract = contract
        self.api = api
        self.reports: list[FishermanReport] = []
        self._prosecuted: set[tuple[bytes, int, bytes]] = set()
        self._subscription = gossip.subscribe(
            GOSSIP_TOPIC, self._on_claim, label="fisherman")

    def _is_offence(self, claim: BlockClaim) -> bool:
        """The three §III-C offences collapse to: the claimed
        (height, fingerprint) does not match the real chain."""
        try:
            block = self.contract.block_at(claim.height)
        except UnknownBlockError:
            return True  # signed above the head
        return claim.fingerprint != block.header.fingerprint()

    def _on_claim(self, claim: BlockClaim) -> None:
        key = (bytes(claim.validator), claim.height, claim.fingerprint)
        if key in self._prosecuted:
            return
        if not self._is_offence(claim):
            return  # honest signature; nothing to do
        if self.contract.staking.stake_of(claim.validator) == 0:
            return  # nothing to slash
        self._prosecuted.add(key)
        self._submit_claim(claim, attempt=1)

    def _submit_claim(self, claim: BlockClaim, attempt: int) -> None:
        def record(receipt: TxReceipt) -> None:
            self.reports.append(FishermanReport(
                claim=claim, accepted=receipt.success, error=receipt.error,
            ))
            if receipt.success:
                return
            error = receipt.error or ""
            if "no stake" in error or "matches the real block" in error:
                return  # already slashed, or not actually an offence
            # Transient failure (dropped transaction, fee race): retry.
            self._schedule_retry(claim, attempt)

        try:
            self.api.submit_evidence(
                offender=claim.validator,
                height=claim.height,
                fingerprint=claim.fingerprint,
                signature=claim.signature,
                message=claim.message(),
                on_result=record,
            )
        except HostUnavailableError:
            self._schedule_retry(claim, attempt)

    def _schedule_retry(self, claim: BlockClaim, attempt: int) -> None:
        if attempt >= self.max_attempts:
            self.sim.trace.count("fisherman.retries.exhausted")
            return
        self.sim.trace.count("fisherman.retries")
        self.sim.schedule(self.retry_seconds * attempt,
                          self._submit_claim, claim, attempt + 1)
