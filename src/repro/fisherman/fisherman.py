"""The Fisherman actor (§III-C + docs/ACCOUNTABILITY.md).

Watches the gossip layer for signed block claims, cross-checks each one
against the Guest Contract's on-chain record, and submits evidence for
any claim that conflicts — the contract then verifies the signature via
the runtime precompile and slashes the offender.  Fishermen are
permissionless; the slashing reward funds the watch.

Accountable safety extends the watch to whole *finalisations*: when a
forged quorum finalisation for an already-finalised height appears on
gossip, the fisherman pairs it with the real one into an
:class:`~repro.accountability.AccountabilityProof` and prosecutes the
entire double-signing intersection in one ACCOUNTABILITY instruction,
then notifies the counterparty-side light client so its trust
calculation discounts the slashed validators.

Evidence submission rides the same recovery stack as the relayer
(:mod:`repro.relayer.resilience`): a bounded :class:`RetryPolicy` with
deterministic jitter — drawn from an Rng minted via ``derived_seed`` so
retries never perturb the rest of the simulation — plus a
:class:`CircuitBreaker` that stops hammering the host RPC during
blackouts.  Prosecutions therefore survive relayer crashes and host
outages alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accountability import AccountabilityProof, Finalisation, build_proof
from repro.errors import (
    EvidenceError,
    HostUnavailableError,
    UnknownBlockError,
)
from repro.fisherman.evidence import (
    FINALISATION_TOPIC,
    GOSSIP_TOPIC,
    BlockClaim,
    FinalisationClaim,
)
from repro.guest.api import DeliveryResult, GuestApi
from repro.guest.block import sign_message
from repro.guest.contract import GuestContract
from repro.host.transaction import TxReceipt
from repro.relayer.resilience import CircuitBreaker, RetryPolicy
from repro.sim.gossip import GossipNetwork
from repro.sim.kernel import Simulation
from repro.sim.rng import Rng


@dataclass
class FishermanReport:
    """One submitted piece of evidence and its outcome."""

    claim: BlockClaim
    accepted: bool
    error: str | None = None


@dataclass
class AccountabilityReport:
    """One submitted accountability proof and its outcome."""

    proof_id: str
    height: int
    offender_count: int
    accepted: bool
    error: str | None = None


class Fisherman:
    """Monitors gossip and prosecutes equivocating validators."""

    def __init__(self, sim: Simulation, gossip: GossipNetwork,
                 contract: GuestContract, api: GuestApi,
                 guest_client=None,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.sim = sim
        self.contract = contract
        self.api = api
        #: The counterparty-side light client of this guest, if wired:
        #: notified of accepted proofs so its skipping-trust rule
        #: discounts the slashed validators (docs/ACCOUNTABILITY.md).
        self.guest_client = guest_client
        #: Bounded backoff for evidence that failed to land (RPC
        #: blackout or a dropped transaction): the prosecution must not
        #: silently die with the first fault, or the offender keeps
        #: their stake.  Same primitive as the relayer's recovery stack,
        #: with a slower base — evidence is not latency-critical.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=8, base_seconds=4.0, cap_seconds=60.0, jitter=0.5)
        self._retry_rng = Rng(sim.rng.derived_seed("fisherman-retry"))
        self.breaker = CircuitBreaker(sim, name="fisherman.breaker")
        self.reports: list[FishermanReport] = []
        self.accountability_reports: list[AccountabilityReport] = []
        self._prosecuted: set[tuple[bytes, int, bytes]] = set()
        #: Proofs built and not yet accepted on chain, by proof id.
        self._pending_proofs: dict[bytes, AccountabilityProof] = {}
        self._prosecuted_proofs: set[bytes] = set()
        self._subscription = gossip.subscribe(
            GOSSIP_TOPIC, self._on_claim, label="fisherman")
        self._finalisation_subscription = gossip.subscribe(
            FINALISATION_TOPIC, self._on_finalisation, label="fisherman")

    def _is_offence(self, claim: BlockClaim) -> bool:
        """The three §III-C offences collapse to: the claimed
        (height, fingerprint) does not match the real chain."""
        try:
            block = self.contract.block_at(claim.height)
        except UnknownBlockError:
            return True  # signed above the head
        return claim.fingerprint != block.header.fingerprint()

    # ------------------------------------------------------------------
    # Per-signature claims (§III-C)
    # ------------------------------------------------------------------

    def _on_claim(self, claim: BlockClaim) -> None:
        key = (bytes(claim.validator), claim.height, claim.fingerprint)
        if key in self._prosecuted:
            return
        if not self._is_offence(claim):
            return  # honest signature; nothing to do
        if self.contract.staking.stake_of(claim.validator) == 0:
            return  # nothing to slash
        self._prosecuted.add(key)
        self._submit_claim(claim, attempt=1)

    def _submit_claim(self, claim: BlockClaim, attempt: int) -> None:
        if not self.breaker.allow():
            self._schedule_retry(self._submit_claim, claim, attempt)
            return

        def record(receipt: TxReceipt) -> None:
            self.reports.append(FishermanReport(
                claim=claim, accepted=receipt.success, error=receipt.error,
            ))
            if receipt.success:
                self.breaker.record_success()
                return
            error = receipt.error or ""
            if "no stake" in error or "matches the real block" in error:
                return  # already slashed, or not actually an offence
            # Transient failure (dropped transaction, fee race): retry.
            self._schedule_retry(self._submit_claim, claim, attempt)

        try:
            self.api.submit_evidence(
                offender=claim.validator,
                height=claim.height,
                fingerprint=claim.fingerprint,
                signature=claim.signature,
                message=claim.message(),
                on_result=record,
            )
        except HostUnavailableError:
            self.breaker.record_failure()
            self._schedule_retry(self._submit_claim, claim, attempt)

    # ------------------------------------------------------------------
    # Whole-finalisation claims → accountability proofs
    # ------------------------------------------------------------------

    def _on_finalisation(self, claim: FinalisationClaim) -> None:
        proof = self._build_finalisation_proof(claim)
        if proof is None:
            # No whole-set proof to be had (sub-quorum forgery, unknown
            # epoch, or simply the honest finalisation circulating) —
            # each individual signature over a conflicting fingerprint
            # is still §III-C evidence; the per-claim path dedups and
            # drops honest signatures itself.
            fingerprint = claim.fingerprint()
            for public_key, signature in claim.signatures:
                self._on_claim(BlockClaim(
                    validator=public_key, height=claim.header.height,
                    fingerprint=fingerprint, signature=signature,
                ))
            return
        proof_id = bytes(proof.proof_id())
        if proof_id in self._prosecuted_proofs:
            return
        self._prosecuted_proofs.add(proof_id)
        self._pending_proofs[proof_id] = proof
        self.sim.trace.count("fisherman.equivocations.detected")
        self._submit_proof(proof_id, attempt=1)

    def _build_finalisation_proof(
            self, claim: FinalisationClaim) -> AccountabilityProof | None:
        """Pair a gossiped finalisation against the real chain; returns
        a proof when the claim is a genuine conflicting quorum
        finalisation, ``None`` otherwise."""
        header = claim.header
        fingerprint = claim.fingerprint()
        try:
            block = self.contract.block_at(header.height)
        except UnknownBlockError:
            return None  # above the head: no real finalisation to oppose
        if not block.finalised:
            return None
        real_fingerprint = block.header.fingerprint()
        if fingerprint == real_fingerprint:
            return None  # the real finalisation circulating honestly
        epoch = self.contract.epochs.get(header.epoch_id)
        if epoch is None or header.epoch_hash != epoch.canonical_hash():
            return None  # indicts no epoch this chain ever had
        if block.header.epoch_hash != epoch.canonical_hash():
            return None  # cross-epoch conflict: no single set to indict
        # The forged side must itself carry quorum power in valid
        # signatures, or it is not a finalisation — just bad individual
        # signatures for the per-claim path.
        message = sign_message(header.height, fingerprint)
        scheme = self.api.chain.scheme
        members = [
            (public_key, signature)
            for public_key, signature in claim.signatures
            if epoch.is_validator(public_key)
        ]
        if scheme.verify_batch(
            [(public_key, message, signature)
             for public_key, signature in members]
        ):
            valid = members
        else:
            valid = [
                (public_key, signature)
                for public_key, signature in members
                if scheme.verify(public_key, message, signature)
            ]
        if not epoch.has_quorum({public_key for public_key, _ in valid}):
            return None
        real_side = Finalisation(
            commitment=real_fingerprint,
            sign_bytes=sign_message(header.height, real_fingerprint),
            signatures=tuple(sorted(block.signers.items(),
                                    key=lambda item: bytes(item[0]))),
        )
        forged_side = Finalisation(
            commitment=fingerprint,
            sign_bytes=message,
            signatures=tuple(sorted(valid,
                                    key=lambda item: bytes(item[0]))),
        )
        return build_proof(self.contract.chain_id, header.height,
                           bytes(epoch.canonical_hash()),
                           real_side, forged_side)

    def _submit_proof(self, proof_id: bytes, attempt: int) -> None:
        proof = self._pending_proofs.get(proof_id)
        if proof is None:
            return  # landed (or abandoned) while a retry was in flight
        if not self.breaker.allow():
            self._schedule_retry(self._submit_proof, proof_id, attempt)
            return

        def record(result: DeliveryResult) -> None:
            self.accountability_reports.append(AccountabilityReport(
                proof_id=proof_id.hex(), height=proof.height,
                offender_count=len(proof.offenders()),
                accepted=result.success, error=result.error,
            ))
            if result.success:
                self.breaker.record_success()
                self._pending_proofs.pop(proof_id, None)
                self._notify_counterparty(proof)
                return
            error = result.error or ""
            if "already prosecuted" in error:
                self._pending_proofs.pop(proof_id, None)
                return  # someone else landed the same proof first
            self._schedule_retry(self._submit_proof, proof_id, attempt)

        try:
            self.api.submit_accountability_proof(proof, on_done=record)
        except HostUnavailableError:
            self.breaker.record_failure()
            self._schedule_retry(self._submit_proof, proof_id, attempt)

    def _notify_counterparty(self, proof: AccountabilityProof) -> None:
        """Feed an on-chain-accepted proof to the counterparty's light
        client of this guest (models the evidence transaction a watcher
        lands on the counterparty)."""
        if self.guest_client is None:
            return
        try:
            offenders = self.guest_client.register_accountability(proof)
        except EvidenceError:
            self.sim.trace.count("fisherman.notify.rejected")
            return
        self.sim.trace.count("fisherman.notify.accepted")
        self.sim.trace.observe("fisherman.notify.offenders", len(offenders))

    # ------------------------------------------------------------------
    # Shared retry scheduling (satellite of docs/ACCOUNTABILITY.md:
    # the relayer's RetryPolicy/CircuitBreaker, not ad-hoc timers)
    # ------------------------------------------------------------------

    def _schedule_retry(self, resubmit, token, attempt: int) -> None:
        if not self.retry_policy.allows(attempt):
            self.sim.trace.count("fisherman.retries.exhausted")
            return
        self.sim.trace.count("fisherman.retries")
        delay = self.retry_policy.delay(attempt, self._retry_rng)
        # While the breaker is open there is no point retrying sooner
        # than its next probe window.
        delay = max(delay, self.breaker.retry_after())
        self.sim.schedule(delay, resubmit, token, attempt + 1)
