"""Fishermen: permissionless misbehaviour monitors (§III-C)."""

from repro.fisherman.fisherman import Fisherman
from repro.fisherman.evidence import BlockClaim, ByzantineValidator

__all__ = ["BlockClaim", "ByzantineValidator", "Fisherman"]
