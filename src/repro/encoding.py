"""Compact deterministic binary encoding helpers.

Proofs, packets and light-client updates travel inside host transactions,
whose 1232-byte size limit is a first-class constraint of the paper (§IV).
These helpers give every subsystem one canonical, compact wire format so
that serialized sizes — and therefore transaction counts and fees — are
meaningful.

The format is minimal: unsigned LEB128 varints, length-prefixed byte
strings, and a cursor-based reader.
"""

from __future__ import annotations

#: Interned encodings of the single-byte varints (0..127).  Most varints
#: on the wire are tags, indices and short lengths, so the common case
#: becomes one tuple lookup with no allocation.
_SMALL_VARINTS = tuple(bytes([n]) for n in range(128))


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if 0 <= value < 128:
        return _SMALL_VARINTS[value]
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_bytes(data: bytes) -> bytes:
    """Length-prefixed byte string."""
    return encode_varint(len(data)) + data


def encode_str(text: str) -> bytes:
    """Length-prefixed UTF-8 string."""
    return encode_bytes(text.encode("utf-8"))


# ---------------------------------------------------------------------------
# Zero-copy writers
# ---------------------------------------------------------------------------
# Encoders on hot paths (trie proofs, IBC messages) assemble one shared
# ``bytearray`` via these writers instead of concatenating per-field
# ``bytes`` temporaries; the ``encode_*`` functions above remain for
# call sites where an owned buffer is the point.

def write_varint(out: bytearray, value: int) -> None:
    """Append a LEB128 varint to ``out`` without intermediate objects."""
    if 0 <= value < 128:
        out.append(value)
        return
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def write_bytes(out: bytearray, data: bytes) -> None:
    """Append a length-prefixed byte string to ``out``."""
    write_varint(out, len(data))
    out += data


def write_str(out: bytearray, text: str) -> None:
    """Append a length-prefixed UTF-8 string to ``out``."""
    write_bytes(out, text.encode("utf-8"))


class Reader:
    """Cursor-based reader over an immutable buffer.

    Raises :class:`ValueError` on truncated input so that decoding
    failures surface as malformed-message errors rather than silent
    misreads.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read(self, count: int) -> bytes:
        if count < 0 or self._pos + count > len(self._data):
            raise ValueError("truncated buffer")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_varint(self) -> int:
        result = 0
        shift = 0
        while True:
            if self._pos >= len(self._data):
                raise ValueError("truncated varint")
            byte = self._data[self._pos]
            self._pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise ValueError("varint too long")

    def read_bytes(self) -> bytes:
        return self.read(self.read_varint())

    def read_str(self) -> str:
        return self.read_bytes().decode("utf-8")

    def expect_end(self) -> None:
        if self.remaining:
            raise ValueError(f"{self.remaining} trailing bytes after message")
