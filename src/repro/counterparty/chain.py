"""The Tendermint-like counterparty chain actor.

Produces a block every ``block_seconds``: the header commits to the IBC
store's root (``app_hash``), the current validator set and the next one;
the commit carries signatures from the validators that participated this
round.  Participation and validator-set churn are drawn from the seeded
RNG — their distributions are the calibration knobs behind the Fig. 4/5
transaction counts (see EXPERIMENTS.md).

Transactions "on" the counterparty are modelled as function calls
executed at the next block boundary; the paper explicitly excludes the
counterparty's costs and latencies from its evaluation (§V: "we do not
evaluate the cost or latency involved in calling the counterparty
blockchain"), so no fee machinery is needed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.crypto.keys import Keypair, SignatureScheme
from repro.errors import ReproError
from repro.ibc.apps.transfer import Bank, TransferApp
from repro.ibc.host import IbcHost
from repro.ibc.identifiers import PortId
from repro.lightclient.tendermint import (
    CometHeader,
    Commit,
    LightClientUpdate,
    ValidatorSet,
)
from repro.sim.kernel import Simulation
from repro.trie.store import ProvableStore
from repro.units import COUNTERPARTY_BLOCK_SECONDS


@dataclass
class CounterpartyConfig:
    """Tunables of the counterparty model."""

    chain_id: str = "picasso-1"
    block_seconds: float = COUNTERPARTY_BLOCK_SECONDS
    #: Validator-set size.  Cosmos hubs run 100–200 validators; the
    #: commit size this produces drives the Fig. 4 transaction counts.
    validator_count: int = 190
    #: Mean and stddev of per-block commit participation.
    participation_mean: float = 0.85
    participation_std: float = 0.06
    #: Participation never drops below 2/3 (the chain would halt).
    participation_floor: float = 0.70
    #: Probability per block that a validator's power changes (stake
    #: delegation churn), rotating ``next_validators_hash``.
    valset_churn_probability: float = 0.35
    #: Keep only the most recent N block records (None = keep all).
    #: Relayers only ever prove against recent heights.
    retain_blocks: Optional[int] = None
    #: Synthetic entries pre-loaded into the IBC store.  A production
    #: chain's store holds many thousands of commitments, which is what
    #: gives membership proofs their realistic depth — and packet
    #: deliveries on the guest their 4–5-transaction size (§V-A).
    store_preload_entries: int = 0


@dataclass
class _BlockRecord:
    header: CometHeader
    validator_set: ValidatorSet
    store_view: ProvableStore
    #: Commit signatures are produced lazily — only for the heights a
    #: relayer actually requests — so week-long simulations do not pay
    #: for ~160 signatures per 6-second block.  Participant selection is
    #: seeded per height, so laziness never perturbs determinism.
    commit: Optional[Commit] = None


class CounterpartyChain:
    """The counterparty actor on the simulation kernel."""

    def __init__(self, sim: Simulation, scheme: SignatureScheme,
                 config: Optional[CounterpartyConfig] = None) -> None:
        self.sim = sim
        self.scheme = scheme
        self.config = config or CounterpartyConfig()
        self._rng = sim.rng.fork("counterparty")
        self._participant_seed = self._rng.randint(0, (1 << 60) - 1)

        self._validators: list[tuple[Keypair, int]] = []
        for index in range(self.config.validator_count):
            seed = bytes([2]) + index.to_bytes(4, "big") + bytes(27)
            keypair = scheme.keypair_from_seed(seed)
            # Power follows a mild skew: a few heavyweights, a long tail.
            power = 1_000_000 // (1 + index // 10)
            self._validators.append((keypair, power))

        self.height = 0
        self._valset_cache: Optional[ValidatorSet] = None
        self.blocks: dict[int, _BlockRecord] = {}
        self._pending_calls: list[tuple[Callable[[], Any], Optional[Callable[[Any, int], None]]]] = []
        self._block_listeners: list[Callable[[int], None]] = []
        #: (packet, height committed) for every packet this chain sent;
        #: relayers poll it through :meth:`sent_packets_since`.
        self.sent_packets: list[tuple[Any, int]] = []

        self.bank = Bank()
        self.ibc = IbcHost(self.config.chain_id, store=ProvableStore(), seal_receipts=False)
        self.transfer_port = PortId("transfer")
        self.transfer = TransferApp(self.bank, self.transfer_port)
        self.ibc.bind_port(self.transfer_port, self.transfer)
        self._valset_hash_history: set[bytes] = {
            bytes(self.validator_set().canonical_hash())
        }
        self.ibc.self_client_validator = self._validate_claim_about_us
        if self.config.store_preload_entries:
            self._preload_store(self.config.store_preload_entries)
        self._producing = False
        # Sends inside block execution commit at the current height;
        # direct sends land in the next produced block.
        self.ibc.on_send = lambda packet: self.sent_packets.append(
            (packet, self.height if self._producing else self.height + 1)
        )

        sim.schedule(self.config.block_seconds, self._produce_block)

    def _preload_store(self, count: int) -> None:
        """Fill the IBC store with synthetic commitments so membership
        proofs have production-scale depth."""
        import hashlib
        trie = self.ibc.store.trie
        for index in range(count):
            key = hashlib.sha256(b"preload" + index.to_bytes(8, "big")).digest()
            trie.set(key, key)

    # ------------------------------------------------------------------
    # Consensus model
    # ------------------------------------------------------------------

    def validator_set(self) -> ValidatorSet:
        if self._valset_cache is None:
            self._valset_cache = ValidatorSet(members=tuple(
                (keypair.public_key, power) for keypair, power in self._validators
            ))
        return self._valset_cache

    def _maybe_churn(self) -> None:
        if self._rng.bernoulli(self.config.valset_churn_probability):
            index = self._rng.randint(0, len(self._validators) - 1)
            keypair, power = self._validators[index]
            delta = max(1, power // 100)
            power = power + delta if self._rng.bernoulli(0.5) else max(1, power - delta)
            self._validators[index] = (keypair, power)
            self._valset_cache = None
            self._valset_hash_history.add(
                bytes(self.validator_set().canonical_hash())
            )

    def _participants(self, height: int, valset: ValidatorSet) -> list[int]:
        """Deterministic per-height participant indices (lazy commits)."""
        rng = self.sim.rng.__class__(self._participant_seed ^ height)
        rate = rng.gauss(self.config.participation_mean, self.config.participation_std)
        rate = min(1.0, max(self.config.participation_floor, rate))
        count = max(1, round(rate * len(valset)))
        indices = list(range(len(valset)))
        rng.shuffle(indices)
        return sorted(indices[:count])

    def _build_commit(self, record: "_BlockRecord", height: int) -> Commit:
        sign_bytes = record.header.sign_bytes()
        keypairs = {bytes(kp.public_key): kp for kp, _ in self._validators}
        signatures = []
        for index in self._participants(height, record.validator_set):
            public_key, _ = record.validator_set.members[index]
            keypair = keypairs.get(bytes(public_key))
            if keypair is None:
                continue  # validator rotated out since; skip
            signatures.append((public_key, keypair.sign(sign_bytes)))
        return Commit(signatures=tuple(signatures))

    def _produce_block(self) -> None:
        self.height += 1
        self._producing = True
        current_set = self.validator_set()

        # Execute queued transactions against this block's state.
        calls, self._pending_calls = self._pending_calls, []
        results: list[tuple[Optional[Callable[[Any, int], None]], Any]] = []
        for fn, on_result in calls:
            try:
                value: Any = fn()
            except (ReproError, ValueError) as exc:
                value = exc  # failed txs surface their error to the caller
            results.append((on_result, value))
        self._producing = False

        self._maybe_churn()
        next_set = self.validator_set()
        header = CometHeader(
            chain_id=self.config.chain_id,
            height=self.height,
            time=self.sim.now,
            app_hash=self.ibc.store.root_hash,
            validators_hash=current_set.canonical_hash(),
            next_validators_hash=next_set.canonical_hash(),
        )
        self.blocks[self.height] = _BlockRecord(
            header=header,
            validator_set=current_set,
            store_view=self.ibc.store.snapshot(),
        )
        retain = self.config.retain_blocks
        if retain is not None and self.height > retain:
            self.blocks.pop(self.height - retain, None)
        for on_result, value in results:
            if on_result is not None:
                on_result(value, self.height)
        for listener in self._block_listeners:
            listener(self.height)
        self.sim.schedule(self.config.block_seconds, self._produce_block)

    def _validate_claim_about_us(self, claimed_bytes) -> None:
        """ICS-03 validate_self_client for the counterparty side."""
        from repro.ibc.self_client import SelfClientState, validate_self_client
        claimed = SelfClientState.from_bytes(claimed_bytes)
        validate_self_client(
            claimed,
            our_chain_id=self.config.chain_id,
            our_height=self.height,
            known_set_hashes=frozenset(self._valset_hash_history),
        )

    # ------------------------------------------------------------------
    # Interfaces used by relayers and workloads
    # ------------------------------------------------------------------

    def on_block(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired (synchronously) at each new height."""
        self._block_listeners.append(listener)

    def submit(self, fn: Callable[[], Any],
               on_result: Optional[Callable[[Any, int], None]] = None) -> None:
        """Queue a state-changing call for the next block.

        ``on_result(value, height)`` fires after the block commits, with
        the call's return value and the height it executed at — relayers
        use the height to know from when the result becomes provable.
        """
        self._pending_calls.append((fn, on_result))

    def light_client_update(self, height: Optional[int] = None) -> LightClientUpdate:
        """The update a relayer ships to the guest for ``height``."""
        resolved = height if height is not None else self.height
        record = self.blocks[resolved]
        if record.commit is None:
            record.commit = self._build_commit(record, resolved)
        return LightClientUpdate(
            header=record.header,
            commit=record.commit,
            validator_set=record.validator_set,
        )

    def store_at(self, height: int) -> ProvableStore:
        """Frozen store view whose root is that height's ``app_hash``."""
        return self.blocks[height].store_view

    def sent_packets_since(self, count_seen: int) -> list[tuple[Any, int]]:
        """Packets sent after the first ``count_seen`` (relayer polling)."""
        return self.sent_packets[count_seen:]

    def genesis_validator_set(self) -> ValidatorSet:
        """The set a guest-side light client should be initialised with
        before the first block arrives."""
        return self.validator_set()
