"""The counterparty blockchain: a Tendermint-like chain with native IBC.

Stands in for Picasso, the Cosmos-SDK chain the deployment connected to
(§IV).  Only the properties the guest's measurements depend on are
modelled: ~6-second block cadence, a large validator set whose commit
signatures dominate the chunked light-client updates (Fig. 4/5), mild
validator-set churn, and a native IBC host with a provable store.
"""

from repro.counterparty.chain import CounterpartyChain, CounterpartyConfig

__all__ = ["CounterpartyChain", "CounterpartyConfig"]
