"""Guest blockchain: IBC interoperability for IBC-incompatible chains.

A complete reproduction of "Be My Guest: Welcoming Interoperability into
IBC-Incompatible Blockchains" (DSN 2025): the sealable Merkle trie, the
Guest Contract (Alg. 1), validators/relayers/fishermen (Alg. 2), a full
IBC stack with ICS-20 token transfer, both light clients, and simulated
host (Solana-like) and counterparty (Tendermint-like) chains on a
deterministic discrete-event kernel.

Quick start::

    from repro import Deployment, DeploymentConfig

    deployment = Deployment(DeploymentConfig(seed=1))
    guest_chan, cp_chan = deployment.establish_link()
    # ... send ICS-20 transfers in either direction; see examples/.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.deployment import Deployment, DeploymentConfig, build
from repro.guest import GuestApi, GuestConfig, GuestContract
from repro.host import HostChain, HostConfig
from repro.counterparty import CounterpartyChain, CounterpartyConfig
from repro.relayer import Cranker, Relayer, RelayerConfig
from repro.sim import Simulation
from repro.trie import SealableTrie

__version__ = "1.0.0"

__all__ = [
    "CounterpartyChain",
    "CounterpartyConfig",
    "Cranker",
    "Deployment",
    "DeploymentConfig",
    "GuestApi",
    "GuestConfig",
    "GuestContract",
    "HostChain",
    "HostConfig",
    "Relayer",
    "RelayerConfig",
    "SealableTrie",
    "Simulation",
    "build",
]
