"""Deterministic slash-and-eject with stake conservation and a liveness floor.

Applying an :class:`~repro.accountability.proof.AccountabilityProof`
must not depend on iteration order (the same proof replayed from a
checkpoint has to burn the same lamports) and must never leave the guest
without enough eligible candidates to form the next epoch.  Offenders
are therefore processed in sorted key order, and an offender whose
ejection would drop the eligible-candidate count below the configured
``min_live_validators`` floor is *spared* — recorded in the outcome but
left bonded — rather than bricking the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable

from repro.crypto.keys import PublicKey

if TYPE_CHECKING:  # avoids a cycle: guest.contract imports this package
    from repro.guest.staking import StakingPool


@dataclass(frozen=True)
class AccountabilitySlashOutcome:
    """What one proof application did to the staking pool."""

    offenders: tuple[PublicKey, ...]
    ejected: tuple[PublicKey, ...]
    spared: tuple[PublicKey, ...]
    slashed: tuple[tuple[PublicKey, int], ...]
    total_slashed: int
    locked_before: int
    locked_after: int

    def conserves_stake(self) -> bool:
        return self.locked_before == self.locked_after + self.total_slashed


def apply_accountability_slash(
    staking: StakingPool,
    offenders: Iterable[PublicKey],
    *,
    fraction: Fraction,
    min_live: int,
) -> AccountabilitySlashOutcome:
    """Slash ``fraction`` of each offender's stake and eject it.

    Deterministic: offenders are deduplicated and processed sorted by
    key bytes.  The liveness floor is evaluated per offender against the
    pool's *current* eligible count, so when an entire validator set is
    implicated the last ``min_live`` eligible candidates (in processing
    order) are spared and keep their stake.
    """
    ordered = sorted(set(offenders), key=bytes)
    locked_before = staking.locked_total()
    ejected: list[PublicKey] = []
    spared: list[PublicKey] = []
    amounts: list[tuple[PublicKey, int]] = []
    for offender in ordered:
        if (staking.is_eligible(offender)
                and staking.eligible_count() - 1 < min_live):
            spared.append(offender)
            continue
        amount = staking.slash(offender, fraction)
        staking.remove(offender)
        if amount:
            amounts.append((offender, amount))
        ejected.append(offender)
    return AccountabilitySlashOutcome(
        offenders=tuple(ordered),
        ejected=tuple(ejected),
        spared=tuple(spared),
        slashed=tuple(amounts),
        total_slashed=sum(amount for _, amount in amounts),
        locked_before=locked_before,
        locked_after=staking.locked_total(),
    )
