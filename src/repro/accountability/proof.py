"""The :class:`AccountabilityProof` wire format and its verifier.

A proof pins two *finalisations* of the same height on the same chain:
each side carries the commitment the quorum signed off on (the guest
block fingerprint, or a Comet app hash), the exact bytes that were
signed, and the raw ``(public_key, signature)`` set.  Verification is
protocol-agnostic — the caller supplies the validator powers and the
quorum threshold of the epoch named by ``valset_hash`` and a batch
verifier, and :func:`verify_proof` checks that

* the two commitments differ (the finalisations genuinely conflict),
* each side is signed by at least quorum power, and
* the signer intersection holds more than one third of the total power,

returning the intersection — the validators that attributably
double-signed.  Binding the sign-bytes to the claimed height is the one
protocol-specific step and stays with the caller (the guest contract
reconstructs ``sign_message(height, commitment)``; the Tendermint side
re-derives the vote bytes from the embedded header).

Encoding uses the zero-copy codec writers so golden vectors stay
byte-stable; see ``tests/test_golden_vectors.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.crypto.hashing import Hash, hash_concat
from repro.crypto.keys import (
    PUBLIC_KEY_SIZE,
    SIGNATURE_SIZE,
    PublicKey,
    Signature,
)
from repro.encoding import Reader, write_bytes, write_str, write_varint
from repro.errors import AccountabilityError


@dataclass(frozen=True)
class Finalisation:
    """One side of an equivocation: a quorum-signed commitment.

    ``commitment`` distinguishes the two branches (block fingerprint /
    app hash), ``sign_bytes`` is exactly what each validator signed, and
    ``header_bytes`` optionally embeds the full header for protocols
    whose sign-bytes cannot be reconstructed from ``(height,
    commitment)`` alone (Comet votes hash the whole header).
    """

    commitment: bytes
    sign_bytes: bytes
    signatures: tuple[tuple[PublicKey, Signature], ...]
    header_bytes: bytes = b""

    def signers(self) -> tuple[PublicKey, ...]:
        return tuple(public_key for public_key, _ in self.signatures)

    def write_to(self, out: bytearray) -> None:
        write_bytes(out, self.commitment)
        write_bytes(out, self.sign_bytes)
        write_bytes(out, self.header_bytes)
        write_varint(out, len(self.signatures))
        for public_key, signature in self.signatures:
            out += bytes(public_key)
            out += bytes(signature)

    @classmethod
    def read_from(cls, reader: Reader) -> "Finalisation":
        commitment = reader.read_bytes()
        sign_bytes = reader.read_bytes()
        header_bytes = reader.read_bytes()
        count = reader.read_varint()
        signatures = tuple(
            (PublicKey(reader.read(PUBLIC_KEY_SIZE)),
             Signature(reader.read(SIGNATURE_SIZE)))
            for _ in range(count)
        )
        return cls(commitment=commitment, sign_bytes=sign_bytes,
                   signatures=signatures, header_bytes=header_bytes)


@dataclass(frozen=True)
class AccountabilityProof:
    """Two conflicting finalisations of ``height`` on ``chain_id``.

    Canonical form orders the sides by commitment
    (``first.commitment < second.commitment``) so a given equivocation
    has exactly one encoding and one :meth:`proof_id` no matter which
    side was observed first; :func:`build_proof` establishes the order
    and :func:`verify_proof` rejects proofs that violate it.
    """

    chain_id: str
    height: int
    valset_hash: bytes
    first: Finalisation
    second: Finalisation

    def proof_id(self) -> Hash:
        """Stable identifier for on-chain double-prosecution detection."""
        return hash_concat(
            b"accountability",
            self.chain_id.encode(),
            self.height.to_bytes(8, "big"),
            self.valset_hash,
            self.first.commitment,
            self.second.commitment,
        )

    def offenders(self) -> tuple[PublicKey, ...]:
        """Validators that signed both sides, sorted by key bytes."""
        both = set(self.first.signers()) & set(self.second.signers())
        return tuple(sorted(both, key=bytes))

    def to_bytes(self) -> bytes:
        out = bytearray()
        write_str(out, self.chain_id)
        write_varint(out, self.height)
        write_bytes(out, self.valset_hash)
        self.first.write_to(out)
        self.second.write_to(out)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "AccountabilityProof":
        reader = Reader(data)
        chain_id = reader.read_str()
        height = reader.read_varint()
        valset_hash = reader.read_bytes()
        first = Finalisation.read_from(reader)
        second = Finalisation.read_from(reader)
        reader.expect_end()
        return cls(chain_id=chain_id, height=height, valset_hash=valset_hash,
                   first=first, second=second)


def build_proof(chain_id: str, height: int, valset_hash: bytes,
                a: Finalisation, b: Finalisation) -> AccountabilityProof:
    """Assemble a proof in canonical side order from two finalisations."""
    if a.commitment == b.commitment:
        raise AccountabilityError(
            "finalisations share a commitment; nothing to attribute")
    first, second = (a, b) if a.commitment < b.commitment else (b, a)
    return AccountabilityProof(chain_id=chain_id, height=height,
                               valset_hash=valset_hash,
                               first=first, second=second)


def _side_power(fin: Finalisation, powers: Mapping[PublicKey, int],
                ) -> tuple[dict[PublicKey, Signature], int]:
    """Deduplicated member signatures of one side and their total power."""
    members: dict[PublicKey, Signature] = {}
    for public_key, signature in fin.signatures:
        if public_key in powers and public_key not in members:
            members[public_key] = signature
    return members, sum(powers[public_key] for public_key in members)


def verify_proof(
    proof: AccountabilityProof,
    *,
    powers: Mapping[PublicKey, int],
    total_power: int,
    quorum_power: int,
    batch_verify: Callable[
        [Sequence[tuple[PublicKey, bytes, Signature]]], bool],
) -> tuple[PublicKey, ...]:
    """Check a proof against an epoch and return the double-signers.

    Raises :class:`AccountabilityError` unless both sides carry quorum
    power, every signature verifies (all-or-nothing — prosecutors build
    proofs from already-verified material, so one bad signature marks
    the whole artefact untrustworthy), and the intersection exceeds one
    third of ``total_power``.
    """
    if proof.first.commitment == proof.second.commitment:
        raise AccountabilityError(
            "finalisations share a commitment; nothing to attribute")
    if proof.first.commitment > proof.second.commitment:
        raise AccountabilityError("proof sides are not in canonical order")
    entries: list[tuple[PublicKey, bytes, Signature]] = []
    sides: list[dict[PublicKey, Signature]] = []
    for label, fin in (("first", proof.first), ("second", proof.second)):
        members, power = _side_power(fin, powers)
        if power < quorum_power:
            raise AccountabilityError(
                f"{label} finalisation carries {power} of the required "
                f"{quorum_power} quorum power")
        entries.extend((public_key, fin.sign_bytes, signature)
                       for public_key, signature in members.items())
        sides.append(members)
    if not batch_verify(entries):
        raise AccountabilityError("proof contains an invalid signature")
    intersection = sorted(sides[0].keys() & sides[1].keys(), key=bytes)
    guilty_power = sum(powers[public_key] for public_key in intersection)
    if guilty_power * 3 <= total_power:
        raise AccountabilityError(
            f"double-signers hold {guilty_power} of {total_power} stake — "
            f"not the attributable one-third overlap")
    return tuple(intersection)
