"""Accountable safety: attributable equivocation proofs and slashing.

When a light client (or the fisherman watching gossip) observes two
conflicting quorum finalisations for the same height, the protocol can
do better than freeze: the two signer sets must intersect in at least
one third of the voting power, and every validator in that intersection
provably signed both sides.  :class:`AccountabilityProof` packages the
two finalisations — commitments, sign-bytes, and both raw signature
sets — into a compact, self-contained artefact that any party can
verify with one :meth:`~repro.crypto.keys.SignatureScheme.verify_batch`
call, and :func:`apply_accountability_slash` burns the offenders' stake
and ejects them from the candidate set with deterministic,
stake-conserving accounting.

See docs/ACCOUNTABILITY.md for the proof format and the end-to-end
slashing flow.
"""

from repro.accountability.proof import (
    AccountabilityProof,
    Finalisation,
    build_proof,
    verify_proof,
)
from repro.accountability.slashing import (
    AccountabilitySlashOutcome,
    apply_accountability_slash,
)

__all__ = [
    "AccountabilityProof",
    "AccountabilitySlashOutcome",
    "Finalisation",
    "apply_accountability_slash",
    "build_proof",
    "verify_proof",
]
