"""The guest blockchain's light client (runs on the counterparty).

Verifying a guest block takes one stake-weighted signature check per
validator — no header chains, no commit rounds — because the Guest
Contract is the sole block producer and validators merely attest
(§III-B).  §VI-D points out this makes the client cheap enough to be
useful even on resource-constrained counterparties.

Epoch rotation: a block generated under epoch *e* may carry
``next_epoch_hash``; the update that first uses the new epoch must supply
the full :class:`~repro.guest.epoch.Epoch` whose canonical hash matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashing import Hash
from repro.crypto.keys import PublicKey, Signature, SignatureScheme
from repro.errors import ClientError, EvidenceError
from repro.guest.block import GuestBlockHeader
from repro.guest.epoch import Epoch
from repro.ibc.client import LightClient


@dataclass(frozen=True)
class GuestClientUpdate:
    """One light-client update: a header, its signatures, and (on epoch
    boundaries) the incoming validator set."""

    header: GuestBlockHeader
    signatures: dict[PublicKey, Signature]
    new_epoch: Optional[Epoch] = None


class GuestLightClient(LightClient):
    """Stake-quorum verification of guest block headers."""

    def __init__(self, scheme: SignatureScheme, genesis_epoch: Epoch,
                 chain_id: str = "guest") -> None:
        super().__init__()
        self.scheme = scheme
        self.epoch = genesis_epoch
        #: The tracked guest's chain id (its namespace); must match or
        #: the guest's validate_self_client rejects the handshake.
        self.chain_id = chain_id
        #: height -> (state root, timestamp)
        self._consensus: dict[int, tuple[Hash, float]] = {}
        self._latest = 0

    # ------------------------------------------------------------------
    # LightClient interface
    # ------------------------------------------------------------------

    def latest_height(self) -> int:
        return self._latest

    def consensus_root(self, height: int) -> Optional[Hash]:
        entry = self._consensus.get(height)
        return entry[0] if entry else None

    def consensus_timestamp(self, height: int) -> Optional[float]:
        entry = self._consensus.get(height)
        return entry[1] if entry else None

    def state_summary(self):
        """What this client claims about the guest chain — exchanged and
        validated during connection handshakes (repro.ibc.self_client)."""
        from repro.ibc.self_client import SelfClientState
        return SelfClientState(
            chain_id=self.chain_id,
            latest_height=self._latest,
            trusted_set_hash=bytes(self.epoch.canonical_hash()),
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, update: GuestClientUpdate) -> None:
        """Verify and adopt a new guest block header.

        Epoch handling: a header in the tracked epoch verifies against
        it directly.  A header in a *later* epoch (the client may have
        skipped blocks — Alg. 2 only relays blocks with content) must
        carry the full new validator set matching the header's epoch
        hash, and — the trust rule — the signers must also hold more
        than one third of the *currently tracked* epoch's stake, so a
        fabricated epoch cannot be adopted without buy-in from the set
        the client already trusts.
        """
        self.ensure_active()
        header = update.header

        epoch = self.epoch
        skipping = False
        if header.epoch_id > epoch.epoch_id:
            if update.new_epoch is None:
                raise ClientError(
                    f"header is in epoch {header.epoch_id}; update must "
                    f"include the new validator set"
                )
            if update.new_epoch.epoch_id != header.epoch_id:
                raise ClientError("supplied epoch does not match the header's id")
            epoch = update.new_epoch
            skipping = True
        elif header.epoch_id != epoch.epoch_id:
            raise ClientError(
                f"header epoch {header.epoch_id} is older than tracked "
                f"epoch {epoch.epoch_id}"
            )

        if header.epoch_hash != epoch.canonical_hash():
            raise ClientError("header's epoch hash does not match the validator set")

        message = header.sign_message()
        members = [
            (public_key, signature)
            for public_key, signature in update.signatures.items()
            if epoch.is_validator(public_key)  # ignore non-validators, as the contract does
        ]
        # Batch-verify the quorum in one pass; fall back to filtering out
        # individually bad signatures only if the batch fails (rare).
        if self.scheme.verify_batch(
            [(public_key, message, signature) for public_key, signature in members]
        ):
            valid_signers: set[PublicKey] = {public_key for public_key, _ in members}
        else:
            valid_signers = {
                public_key
                for public_key, signature in members
                if self.scheme.verify(public_key, message, signature)
            }
        if not epoch.has_quorum(valid_signers):
            raise ClientError(
                f"signatures cover {epoch.signed_stake(valid_signers)} stake; "
                f"quorum is {epoch.quorum_stake}"
            )
        if skipping:
            overlap = self.epoch.signed_stake(valid_signers)
            if overlap * 3 <= self.epoch.total_stake:
                raise ClientError(
                    f"epoch transition signers hold {overlap} of the trusted "
                    f"epoch's {self.epoch.total_stake} stake; need more than 1/3"
                )

        known = self._consensus.get(header.height)
        if known is not None and known[0] != header.state_root:
            # Conflicting finalised blocks at one height: equivocation.
            self.freeze()
            raise EvidenceError(
                f"conflicting guest blocks at height {header.height}; client frozen"
            )

        self._consensus[header.height] = (header.state_root, header.timestamp)
        self._latest = max(self._latest, header.height)
        if epoch is not self.epoch:
            self.epoch = epoch

    # ------------------------------------------------------------------
    # Misbehaviour (what Fishermen submit, §III-C)
    # ------------------------------------------------------------------

    def submit_misbehaviour(self, a: GuestClientUpdate, b: GuestClientUpdate) -> None:
        """Freeze the client given two quorum-signed conflicting headers."""
        if a.header.height != b.header.height:
            raise EvidenceError("misbehaviour headers must share a height")
        if a.header.fingerprint() == b.header.fingerprint():
            raise EvidenceError("headers are identical; no conflict")
        # Both must independently verify; reuse update() on throwaway
        # clones so a bogus report cannot corrupt our state.
        for update in (a, b):
            probe = GuestLightClient(self.scheme, self.epoch)
            probe._consensus = dict(self._consensus)
            probe._latest = self._latest
            try:
                probe.update(update)
            except EvidenceError:
                pass  # the conflict itself trips the probe; that's fine
        self.freeze()
