"""The guest blockchain's light client (runs on the counterparty).

Verifying a guest block takes one stake-weighted signature check per
validator — no header chains, no commit rounds — because the Guest
Contract is the sole block producer and validators merely attest
(§III-B).  §VI-D points out this makes the client cheap enough to be
useful even on resource-constrained counterparties.

Epoch rotation: a block generated under epoch *e* may carry
``next_epoch_hash``; the update that first uses the new epoch must supply
the full :class:`~repro.guest.epoch.Epoch` whose canonical hash matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accountability import (
    AccountabilityProof,
    Finalisation,
    build_proof,
    verify_proof,
)
from repro.crypto.hashing import Hash
from repro.crypto.keys import PublicKey, Signature, SignatureScheme
from repro.errors import AccountabilityError, ClientError, EvidenceError
from repro.guest.block import GuestBlockHeader, sign_message
from repro.guest.epoch import Epoch
from repro.ibc.client import LightClient


@dataclass(frozen=True)
class GuestClientUpdate:
    """One light-client update: a header, its signatures, and (on epoch
    boundaries) the incoming validator set."""

    header: GuestBlockHeader
    signatures: dict[PublicKey, Signature]
    new_epoch: Optional[Epoch] = None


class GuestLightClient(LightClient):
    """Stake-quorum verification of guest block headers."""

    def __init__(self, scheme: SignatureScheme, genesis_epoch: Epoch,
                 chain_id: str = "guest", accountable: bool = True) -> None:
        super().__init__()
        self.scheme = scheme
        self.epoch = genesis_epoch
        #: The tracked guest's chain id (its namespace); must match or
        #: the guest's validate_self_client rejects the handshake.
        self.chain_id = chain_id
        #: height -> (state root, timestamp)
        self._consensus: dict[int, tuple[Hash, float]] = {}
        self._latest = 0
        #: Accountable-safety mode (docs/ACCOUNTABILITY.md): retain each
        #: adopted finalisation's signatures so a conflicting one yields
        #: an :class:`AccountabilityProof` instead of a bare freeze.
        self.accountable = accountable
        #: height -> (fingerprint, epoch hash, adopted signature set)
        self._finalisations: dict[
            int, tuple[bytes, bytes, dict[PublicKey, Signature]]] = {}
        #: Every epoch this client ever trusted, by canonical hash —
        #: proofs name the epoch they indict via this hash.
        self._epochs_by_hash: dict[bytes, Epoch] = {
            bytes(genesis_epoch.canonical_hash()): genesis_epoch}
        #: Proofs this client constructed on observing a conflict.
        self.equivocation_proofs: list[AccountabilityProof] = []
        #: Validators proven (via :meth:`register_accountability`) to
        #: have double-signed.  Their stake no longer counts toward the
        #: skipping-trust overlap rule: once a colluding quorum is
        #: slashed on chain, the replacement epoch's honest signers
        #: might hold less than one third of the *nominal* trusted
        #: stake, and without the discount the client would be wedged
        #: at the next rotation even though every unpunished validator
        #: vouched for it.
        self.proven_offenders: set[PublicKey] = set()

    # ------------------------------------------------------------------
    # LightClient interface
    # ------------------------------------------------------------------

    def latest_height(self) -> int:
        return self._latest

    def consensus_root(self, height: int) -> Optional[Hash]:
        entry = self._consensus.get(height)
        return entry[0] if entry else None

    def consensus_timestamp(self, height: int) -> Optional[float]:
        entry = self._consensus.get(height)
        return entry[1] if entry else None

    def state_summary(self):
        """What this client claims about the guest chain — exchanged and
        validated during connection handshakes (repro.ibc.self_client)."""
        from repro.ibc.self_client import SelfClientState
        return SelfClientState(
            chain_id=self.chain_id,
            latest_height=self._latest,
            trusted_set_hash=bytes(self.epoch.canonical_hash()),
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, update: GuestClientUpdate) -> None:
        """Verify and adopt a new guest block header.

        Epoch handling: a header in the tracked epoch verifies against
        it directly.  A header in a *later* epoch (the client may have
        skipped blocks — Alg. 2 only relays blocks with content) must
        carry the full new validator set matching the header's epoch
        hash, and — the trust rule — the signers must also hold more
        than one third of the *currently tracked* epoch's stake, so a
        fabricated epoch cannot be adopted without buy-in from the set
        the client already trusts.
        """
        self.ensure_active()
        header = update.header

        epoch = self.epoch
        skipping = False
        if header.epoch_id > epoch.epoch_id:
            if update.new_epoch is None:
                raise ClientError(
                    f"header is in epoch {header.epoch_id}; update must "
                    f"include the new validator set"
                )
            if update.new_epoch.epoch_id != header.epoch_id:
                raise ClientError("supplied epoch does not match the header's id")
            epoch = update.new_epoch
            skipping = True
        elif header.epoch_id != epoch.epoch_id:
            raise ClientError(
                f"header epoch {header.epoch_id} is older than tracked "
                f"epoch {epoch.epoch_id}"
            )

        if header.epoch_hash != epoch.canonical_hash():
            raise ClientError("header's epoch hash does not match the validator set")

        message = header.sign_message()
        members = [
            (public_key, signature)
            for public_key, signature in update.signatures.items()
            if epoch.is_validator(public_key)  # ignore non-validators, as the contract does
        ]
        # Batch-verify the quorum in one pass; fall back to filtering out
        # individually bad signatures only if the batch fails (rare).
        if self.scheme.verify_batch(
            [(public_key, message, signature) for public_key, signature in members]
        ):
            valid_signers: set[PublicKey] = {public_key for public_key, _ in members}
        else:
            valid_signers = {
                public_key
                for public_key, signature in members
                if self.scheme.verify(public_key, message, signature)
            }
        if not epoch.has_quorum(valid_signers):
            raise ClientError(
                f"signatures cover {epoch.signed_stake(valid_signers)} stake; "
                f"quorum is {epoch.quorum_stake}"
            )
        if skipping:
            # Discount proven double-signers from both sides of the
            # overlap rule: they are no longer trustworthy vouchers, and
            # keeping their stake in the denominator would wedge the
            # client after an on-chain quorum slash.
            offenders = {
                public_key for public_key in self.proven_offenders
                if self.epoch.is_validator(public_key)
            }
            effective_total = (self.epoch.total_stake
                               - self.epoch.signed_stake(offenders))
            overlap = self.epoch.signed_stake(valid_signers - offenders)
            if effective_total > 0 and overlap * 3 <= effective_total:
                raise ClientError(
                    f"epoch transition signers hold {overlap} of the trusted "
                    f"epoch's {effective_total} unindicted stake; need more "
                    f"than 1/3"
                )

        known = self._consensus.get(header.height)
        if known is not None and known[0] != header.state_root:
            # Conflicting finalised blocks at one height: equivocation.
            if self.accountable:
                self._build_conflict_proof(header, epoch, valid_signers,
                                           update.signatures)
            self.freeze()
            raise EvidenceError(
                f"conflicting guest blocks at height {header.height}; client frozen"
            )

        self._consensus[header.height] = (header.state_root, header.timestamp)
        self._latest = max(self._latest, header.height)
        if self.accountable:
            self._finalisations[header.height] = (
                header.fingerprint(),
                bytes(epoch.canonical_hash()),
                {public_key: update.signatures[public_key]
                 for public_key in valid_signers},
            )
        if epoch is not self.epoch:
            self.epoch = epoch
            self._epochs_by_hash.setdefault(
                bytes(epoch.canonical_hash()), epoch)

    # ------------------------------------------------------------------
    # Accountable safety (docs/ACCOUNTABILITY.md)
    # ------------------------------------------------------------------

    def _build_conflict_proof(self, header: GuestBlockHeader, epoch: Epoch,
                              valid_signers: set[PublicKey],
                              signatures: dict[PublicKey, Signature],
                              ) -> Optional[AccountabilityProof]:
        """Turn an observed conflict into an :class:`AccountabilityProof`.

        Needs the retained signature set of the finalisation this client
        already adopted at the height, under the *same* epoch the new
        header claims (cross-epoch conflicts stay bare freezes — there
        is no single validator set to indict)."""
        record = self._finalisations.get(header.height)
        if record is None:
            return None
        known_fingerprint, known_epoch_hash, known_signatures = record
        epoch_hash = bytes(epoch.canonical_hash())
        if known_epoch_hash != epoch_hash:
            return None
        fingerprint = header.fingerprint()
        if fingerprint == known_fingerprint:
            return None
        known_side = Finalisation(
            commitment=known_fingerprint,
            sign_bytes=sign_message(header.height, known_fingerprint),
            signatures=tuple(sorted(known_signatures.items(),
                                    key=lambda item: bytes(item[0]))),
        )
        new_side = Finalisation(
            commitment=fingerprint,
            sign_bytes=sign_message(header.height, fingerprint),
            signatures=tuple(sorted(
                ((public_key, signatures[public_key])
                 for public_key in valid_signers),
                key=lambda item: bytes(item[0]))),
        )
        proof = build_proof(self.chain_id, header.height, epoch_hash,
                            known_side, new_side)
        self.equivocation_proofs.append(proof)
        return proof

    def register_accountability(self,
                                proof: AccountabilityProof,
                                ) -> tuple[PublicKey, ...]:
        """Verify an equivocation proof and record its double-signers.

        Called by watchers (the fisherman) after the guest chain accepts
        the proof on-chain.  Does *not* freeze the client: the proof
        indicts specific validators, not the finalisations this client
        adopted — their stake simply stops counting toward the
        skipping-trust overlap rule, which is exactly what lets the
        client follow the post-slash replacement epoch.  Returns the
        offenders; raises :class:`EvidenceError` on a bad proof.
        """
        if proof.chain_id != self.chain_id:
            raise EvidenceError(
                f"proof is for chain {proof.chain_id!r}, not {self.chain_id!r}")
        epoch = self._epochs_by_hash.get(proof.valset_hash)
        if epoch is None:
            raise EvidenceError("proof references an epoch this client "
                                "never trusted")
        for fin in (proof.first, proof.second):
            if fin.sign_bytes != sign_message(proof.height, fin.commitment):
                raise AccountabilityError(
                    "finalisation sign-bytes do not bind the claimed height")
        offenders = verify_proof(
            proof,
            powers=epoch.validators,
            total_power=epoch.total_stake,
            quorum_power=epoch.quorum_stake,
            batch_verify=self.scheme.verify_batch,
        )
        self.proven_offenders.update(offenders)
        return offenders

    # ------------------------------------------------------------------
    # Misbehaviour (what Fishermen submit, §III-C)
    # ------------------------------------------------------------------

    def submit_misbehaviour(self, a: GuestClientUpdate, b: GuestClientUpdate) -> None:
        """Freeze the client given two quorum-signed conflicting headers."""
        if a.header.height != b.header.height:
            raise EvidenceError("misbehaviour headers must share a height")
        if a.header.fingerprint() == b.header.fingerprint():
            raise EvidenceError("headers are identical; no conflict")
        # Both must independently verify; reuse update() on throwaway
        # clones so a bogus report cannot corrupt our state.
        for update in (a, b):
            probe = GuestLightClient(self.scheme, self.epoch,
                                     chain_id=self.chain_id)
            probe._consensus = dict(self._consensus)
            probe._latest = self._latest
            try:
                probe.update(update)
            except EvidenceError:
                pass  # the conflict itself trips the probe; that's fine
        if self.accountable:
            self._proof_from_updates(a, b)
        self.freeze()

    def _proof_from_updates(self, a: GuestClientUpdate,
                            b: GuestClientUpdate,
                            ) -> Optional[AccountabilityProof]:
        """Build a proof directly from two conflicting verified updates
        (both must sit in the tracked epoch)."""
        epoch = self.epoch
        epoch_hash = bytes(epoch.canonical_hash())
        sides = []
        for update in (a, b):
            header = update.header
            if header.epoch_hash != epoch.canonical_hash():
                return None
            fingerprint = header.fingerprint()
            members = tuple(sorted(
                ((public_key, signature)
                 for public_key, signature in update.signatures.items()
                 if epoch.is_validator(public_key)),
                key=lambda item: bytes(item[0])))
            sides.append(Finalisation(
                commitment=fingerprint,
                sign_bytes=sign_message(header.height, fingerprint),
                signatures=members,
            ))
        proof = build_proof(self.chain_id, a.header.height, epoch_hash,
                            sides[0], sides[1])
        self.equivocation_proofs.append(proof)
        return proof
