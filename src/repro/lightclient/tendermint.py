"""A Tendermint/CometBFT-style light client (what the guest runs).

The counterparty (Picasso in the deployment) is a Tendermint chain: each
height is finalised by a commit carrying signatures from validators whose
voting power exceeds two thirds of the validator set.  The light client
verifies exactly that, tracking validator-set rotations through the
``next_validators_hash`` committed in each header.

Verification is split in two layers so it can run both off-host (one
call, signatures checked directly) and on-host (the Guest Contract feeds
in signer sets that the *runtime* verified through the precompile, one
chunk-transaction at a time — see :mod:`repro.lightclient.chunked`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accountability import (
    AccountabilityProof,
    Finalisation,
    build_proof,
    verify_proof,
)
from repro.crypto.hashing import Hash, hash_concat
from repro.crypto.keys import PublicKey, Signature, SignatureScheme
from repro.encoding import Reader, encode_bytes, encode_str, encode_varint
from repro.errors import AccountabilityError, ClientError, EquivocationError
from repro.ibc.client import LightClient


@dataclass(frozen=True)
class ValidatorSet:
    """An ordered list of (public key, voting power) pairs."""

    members: tuple[tuple[PublicKey, int], ...]

    @property
    def total_power(self) -> int:
        return sum(power for _, power in self.members)

    def power_map(self) -> dict[PublicKey, int]:
        """``public key -> voting power``, built once per set.

        Quorum checks look up every signer's power on every update;
        the linear ``power_of`` scan made each update O(signers x
        members).  Cached on the instance (the set is frozen, so the
        map can never go stale); equality and serialisation still use
        only ``members``.
        """
        cached = self.__dict__.get("_power_map")
        if cached is None:
            cached = dict(self.members)
            object.__setattr__(self, "_power_map", cached)
        return cached

    def power_of(self, public_key: PublicKey) -> int:
        return self.power_map().get(public_key, 0)

    def canonical_hash(self) -> Hash:
        parts: list[bytes] = [b"valset"]
        for public_key, power in self.members:
            parts.append(bytes(public_key))
            parts.append(power.to_bytes(8, "big"))
        return hash_concat(*parts)

    def to_bytes(self) -> bytes:
        out = bytearray(encode_varint(len(self.members)))
        for public_key, power in self.members:
            out += bytes(public_key)
            out += encode_varint(power)
        return bytes(out)

    @classmethod
    def read_from(cls, reader: Reader) -> "ValidatorSet":
        count = reader.read_varint()
        members = tuple(
            (PublicKey(reader.read(32)), reader.read_varint()) for _ in range(count)
        )
        return cls(members=members)

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class CometHeader:
    """The signed header of one counterparty block."""

    chain_id: str
    height: int
    time: float
    #: Root of the chain's provable store (its IBC commitments).
    app_hash: Hash
    validators_hash: Hash
    next_validators_hash: Hash

    def sign_bytes(self) -> bytes:
        """The canonical message every commit signature covers."""
        return bytes(hash_concat(
            b"comet-vote",
            self.chain_id.encode("utf-8"),
            self.height.to_bytes(8, "big"),
            round(self.time * 1000).to_bytes(8, "big"),
            self.app_hash,
            self.validators_hash,
            self.next_validators_hash,
        ))

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += encode_str(self.chain_id)
        out += encode_varint(self.height)
        out += encode_varint(round(self.time * 1000))
        out += bytes(self.app_hash)
        out += bytes(self.validators_hash)
        out += bytes(self.next_validators_hash)
        return bytes(out)

    @classmethod
    def read_from(cls, reader: Reader) -> "CometHeader":
        return cls(
            chain_id=reader.read_str(),
            height=reader.read_varint(),
            time=reader.read_varint() / 1000.0,
            app_hash=Hash(reader.read(32)),
            validators_hash=Hash(reader.read(32)),
            next_validators_hash=Hash(reader.read(32)),
        )


@dataclass(frozen=True)
class Commit:
    """The signatures finalising one header."""

    signatures: tuple[tuple[PublicKey, Signature], ...]

    def to_bytes(self) -> bytes:
        out = bytearray(encode_varint(len(self.signatures)))
        for public_key, signature in self.signatures:
            out += bytes(public_key)
            out += bytes(signature)
        return bytes(out)

    @classmethod
    def read_from(cls, reader: Reader) -> "Commit":
        count = reader.read_varint()
        signatures = tuple(
            (PublicKey(reader.read(32)), Signature(reader.read(64)))
            for _ in range(count)
        )
        return cls(signatures=signatures)

    def __len__(self) -> int:
        return len(self.signatures)


@dataclass(frozen=True)
class LightClientUpdate:
    """One full update: header, commit and (if rotating) the new set."""

    header: CometHeader
    commit: Commit
    #: Included when the client has not seen this header's validator set.
    validator_set: Optional[ValidatorSet] = None

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += encode_bytes(self.header.to_bytes())
        out += encode_bytes(self.commit.to_bytes())
        if self.validator_set is not None:
            out += encode_varint(1)
            out += encode_bytes(self.validator_set.to_bytes())
        else:
            out += encode_varint(0)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "LightClientUpdate":
        reader = Reader(data)
        header = CometHeader.read_from(Reader(reader.read_bytes()))
        commit = Commit.read_from(Reader(reader.read_bytes()))
        validator_set = None
        if reader.read_varint():
            validator_set = ValidatorSet.read_from(Reader(reader.read_bytes()))
        reader.expect_end()
        return cls(header=header, commit=commit, validator_set=validator_set)


class TendermintLightClient(LightClient):
    """Tendermint light client with the skipping-verification trust rule.

    A header is adopted when (a) validators holding strictly more than
    2/3 of *its own* validator set's power signed it, and (b) signers
    holding strictly more than 1/3 of the *currently trusted* set's
    power are among them — the overlap condition that lets the client
    skip heights safely.  An empty genesis set means trust-on-first-use:
    the first update's set is adopted as-is (how the deployed Guest
    Contract was initialised against Picasso).
    """

    def __init__(self, chain_id: str, genesis_validators: ValidatorSet,
                 accountable: bool = True) -> None:
        super().__init__()
        self.chain_id = chain_id
        self._trusted: Optional[ValidatorSet] = (
            genesis_validators if len(genesis_validators) else None
        )
        self._known_valsets: dict[Hash, ValidatorSet] = {
            genesis_validators.canonical_hash(): genesis_validators,
        }
        self._consensus: dict[int, tuple[Hash, float]] = {}
        self._latest = 0
        #: Accountable-safety mode (docs/ACCOUNTABILITY.md): retain each
        #: adopted header with its commit signatures so a conflicting
        #: finalisation yields an :class:`AccountabilityProof`.
        self.accountable = accountable
        #: height -> (header, adopted signature set)
        self._finalisations: dict[
            int, tuple[CometHeader, dict[PublicKey, Signature]]] = {}
        #: Proofs this client constructed on observing a conflict.
        self.equivocation_proofs: list[AccountabilityProof] = []

    # ------------------------------------------------------------------
    # LightClient interface
    # ------------------------------------------------------------------

    def latest_height(self) -> int:
        return self._latest

    def consensus_root(self, height: int) -> Optional[Hash]:
        entry = self._consensus.get(height)
        return entry[0] if entry else None

    def consensus_timestamp(self, height: int) -> Optional[float]:
        entry = self._consensus.get(height)
        return entry[1] if entry else None

    def state_summary(self):
        """What this client claims about the tracked chain — exchanged
        and validated during connection handshakes."""
        from repro.ibc.self_client import SelfClientState
        trusted = self._trusted
        return SelfClientState(
            chain_id=self.chain_id,
            latest_height=self._latest,
            trusted_set_hash=(
                bytes(trusted.canonical_hash()) if trusted is not None else b""
            ),
        )

    # ------------------------------------------------------------------
    # Update — two layers
    # ------------------------------------------------------------------

    def resolve_validator_set(self, update: LightClientUpdate) -> ValidatorSet:
        """Find (or admit) the validator set the header commits to."""
        valset = self._known_valsets.get(update.header.validators_hash)
        if valset is None:
            if update.validator_set is None:
                raise ClientError(
                    "unknown validator set and none supplied in the update"
                )
            if update.validator_set.canonical_hash() != update.header.validators_hash:
                raise ClientError("supplied validator set does not match the header")
            valset = update.validator_set
        return valset

    def apply_verified(self, header: CometHeader, signers: set[PublicKey],
                       valset: ValidatorSet,
                       signatures: Optional[dict[PublicKey, Signature]] = None,
                       ) -> None:
        """State transition given signers whose signatures are already
        verified (by the host runtime's precompile, in the chunked flow).

        ``signatures`` optionally carries the raw commit signatures for
        the verified signers; in accountable mode the client retains
        them per height so a later conflicting finalisation raises
        :class:`EquivocationError` bearing an attributable
        :class:`AccountabilityProof` instead of a bare freeze.
        """
        self.ensure_active()
        if header.chain_id != self.chain_id:
            raise ClientError(
                f"header is for chain {header.chain_id!r}, client tracks {self.chain_id!r}"
            )
        if valset.canonical_hash() != header.validators_hash:
            raise ClientError("validator set does not match the header")
        signed_power = sum(valset.power_of(signer) for signer in signers)
        threshold = (valset.total_power * 2) // 3
        if signed_power <= threshold:
            raise ClientError(
                f"signed power {signed_power} does not exceed 2/3 of "
                f"{valset.total_power}"
            )
        if self._trusted is not None:
            trusted_power = sum(self._trusted.power_of(signer) for signer in signers)
            if trusted_power * 3 <= self._trusted.total_power:
                raise ClientError(
                    f"signers hold {trusted_power} of the trusted set's "
                    f"{self._trusted.total_power} power; need more than 1/3"
                )
        known = self._consensus.get(header.height)
        if known is not None and known[0] != header.app_hash:
            proof = None
            if self.accountable:
                proof = self._build_conflict_proof(header, signers, signatures)
            self.freeze()
            if proof is not None:
                raise EquivocationError(
                    f"conflicting counterparty headers at height "
                    f"{header.height}; frozen with an accountability proof",
                    proof=proof,
                )
            raise ClientError(
                f"conflicting counterparty headers at height {header.height}; frozen"
            )
        self._consensus[header.height] = (header.app_hash, header.time)
        if self.accountable and signatures:
            retained = {
                public_key: signatures[public_key]
                for public_key in signers
                if public_key in signatures
            }
            if retained:
                self._finalisations[header.height] = (header, retained)
        if header.height >= self._latest:
            self._latest = header.height
            self._trusted = valset
        self._known_valsets[header.validators_hash] = valset

    def _build_conflict_proof(self, header: CometHeader,
                              signers: set[PublicKey],
                              signatures: Optional[dict[PublicKey, Signature]],
                              ) -> Optional[AccountabilityProof]:
        """Turn a conflicting finalisation into an accountability proof.

        Needs the retained commit of the adopted header at this height,
        raw signatures for the new header, and a shared validator set —
        otherwise the conflict stays a bare freeze."""
        if not signatures:
            return None
        record = self._finalisations.get(header.height)
        if record is None:
            return None
        known_header, known_signatures = record
        if known_header.validators_hash != header.validators_hash:
            return None
        if known_header.app_hash == header.app_hash:
            return None
        known_side = Finalisation(
            commitment=bytes(known_header.app_hash),
            sign_bytes=known_header.sign_bytes(),
            signatures=tuple(sorted(known_signatures.items(),
                                    key=lambda item: bytes(item[0]))),
            header_bytes=known_header.to_bytes(),
        )
        new_side = Finalisation(
            commitment=bytes(header.app_hash),
            sign_bytes=header.sign_bytes(),
            signatures=tuple(sorted(
                ((public_key, signatures[public_key])
                 for public_key in signers if public_key in signatures),
                key=lambda item: bytes(item[0]))),
            header_bytes=header.to_bytes(),
        )
        proof = build_proof(self.chain_id, header.height,
                            bytes(header.validators_hash),
                            known_side, new_side)
        self.equivocation_proofs.append(proof)
        return proof

    def verify_accountability(self, proof: AccountabilityProof,
                              scheme: SignatureScheme,
                              ) -> tuple[PublicKey, ...]:
        """Verify a Comet equivocation proof against a known validator
        set and return the double-signers.

        The protocol binding re-derives each side's sign-bytes and
        commitment from the embedded header, so the proof cannot lie
        about what was signed or at which height.
        """
        if proof.chain_id != self.chain_id:
            raise AccountabilityError(
                f"proof is for chain {proof.chain_id!r}, "
                f"not {self.chain_id!r}")
        valset = self._known_valsets.get(Hash(proof.valset_hash))
        if valset is None:
            raise AccountabilityError(
                "proof references a validator set this client never saw")
        for fin in (proof.first, proof.second):
            side = CometHeader.read_from(Reader(fin.header_bytes))
            if (side.chain_id != proof.chain_id
                    or side.height != proof.height
                    or bytes(side.validators_hash) != proof.valset_hash):
                raise AccountabilityError(
                    "embedded header does not match the proof's claims")
            if fin.sign_bytes != side.sign_bytes():
                raise AccountabilityError(
                    "finalisation sign-bytes do not match the header")
            if fin.commitment != bytes(side.app_hash):
                raise AccountabilityError(
                    "finalisation commitment is not the header's app hash")
        quorum = (valset.total_power * 2) // 3 + 1
        return verify_proof(
            proof,
            powers=valset.power_map(),
            total_power=valset.total_power,
            quorum_power=quorum,
            batch_verify=scheme.verify_batch,
        )

    def update(self, update: LightClientUpdate, scheme: SignatureScheme) -> None:
        """Full verification: check every commit signature directly.

        The common case — every member signature in the commit is valid —
        verifies the whole quorum in one :meth:`~repro.crypto.keys.
        SignatureScheme.verify_batch` call.  Only when the batch fails
        does the client fall back to per-signature filtering, preserving
        the original semantics (individually bad signatures are dropped,
        not fatal; the quorum thresholds decide the outcome).
        """
        valset = self.resolve_validator_set(update)
        sign_bytes = update.header.sign_bytes()
        powers = valset.power_map()
        members = [
            (public_key, signature)
            for public_key, signature in update.commit.signatures
            if powers.get(public_key, 0) > 0
        ]
        if scheme.verify_batch(
            [(public_key, sign_bytes, signature) for public_key, signature in members]
        ):
            signers = {public_key for public_key, _ in members}
        else:
            signers = {
                public_key
                for public_key, signature in members
                if scheme.verify(public_key, sign_bytes, signature)
            }
        self.apply_verified(update.header, signers, valset,
                            signatures=dict(members))
