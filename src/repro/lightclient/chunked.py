"""Splitting a light-client update into host-sized transactions.

The Solana runtime cannot take a whole Tendermint update in one
transaction: the update (header + ~10² commit signatures + validator
set) is tens of kilobytes against a 1232-byte transaction cap, and the
compute budget cannot verify the signatures in-program anyway (§IV).
The deployment's workaround — reproduced here — is:

1. **data chunks**: the header and validator-set bytes are written into a
   staging buffer across as many transactions as needed;
2. **signature batches**: each commit signature rides as an Ed25519
   precompile entry (verified by the runtime, paid per §V-B's
   0.1 ¢/signature), as many per transaction as fit the size cap;
3. **finalize**: one transaction makes the Guest Contract assemble the
   buffer, check the accumulated verified signers against the validator
   set's voting power, and adopt the consensus state.

Fig. 4 reports the result: 36.5 transactions on average (σ 5.8).  This
module computes the split from actual byte sizes — no constant 36 lives
anywhere in the code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import PublicKey, Signature
from repro.lightclient.tendermint import LightClientUpdate, ValidatorSet
from repro.units import MAX_TRANSACTION_BYTES

#: Envelope + one payer signature + program/account keys for a chunk tx
#: (see repro.host.transaction layout constants; 4 accounts assumed).
_CHUNK_TX_OVERHEAD = 38 + 64 + 5 * 32 + 4 + 4 + 16
#: Per-entry overhead of the signature-verify precompile (signature,
#: public key, offsets) — the message bytes are counted separately.
_SIG_ENTRY_OVERHEAD = 64 + 32 + 14


@dataclass(frozen=True)
class ChunkPlan:
    """The transaction-level plan of one chunked light-client update."""

    #: Staged data split into per-transaction slices.
    data_chunks: tuple[bytes, ...]
    #: Signature-verify batches; each inner tuple rides in one tx.
    signature_batches: tuple[tuple[tuple[PublicKey, Signature], ...], ...]
    #: The message every signature covers (the header's sign-bytes).
    sign_message: bytes

    @property
    def transaction_count(self) -> int:
        """Data chunks + signature batches + the finalize transaction."""
        return len(self.data_chunks) + len(self.signature_batches) + 1

    @property
    def signature_count(self) -> int:
        return sum(len(batch) for batch in self.signature_batches)


def usable_chunk_bytes(tx_size_limit: int = MAX_TRANSACTION_BYTES) -> int:
    """Instruction-data capacity of one staging transaction."""
    return tx_size_limit - _CHUNK_TX_OVERHEAD


def signatures_per_transaction(message_length: int,
                               tx_size_limit: int = MAX_TRANSACTION_BYTES) -> int:
    """How many precompile entries fit one transaction.

    Each entry carries the signature, the signer's key and the shared
    message; the message is embedded once per entry in the Solana
    precompile layout, so it counts against every entry.
    """
    per_entry = _SIG_ENTRY_OVERHEAD + message_length
    capacity = tx_size_limit - _CHUNK_TX_OVERHEAD
    return max(1, capacity // per_entry)


def plan_update_chunks(update: LightClientUpdate,
                       known_valset_hashes: frozenset[bytes] = frozenset(),
                       tx_size_limit: int = MAX_TRANSACTION_BYTES,
                       tracer=None) -> ChunkPlan:
    """Split ``update`` into host transactions.

    ``known_valset_hashes`` lets the relayer skip re-uploading a
    validator set the Guest Contract already stores (hashes as raw
    bytes); the header and commit metadata are always uploaded.
    ``tx_size_limit`` is the host's transaction cap — hosts other than
    Solana have different caps and hence different chunk counts (§VI-D).
    ``tracer`` (an :class:`repro.observability.Tracer`) records the
    plan-shape histograms behind Fig. 4's 36.5-transaction average.
    """
    header_bytes = update.header.to_bytes()
    staged = bytearray()
    staged += len(header_bytes).to_bytes(4, "big")
    staged += header_bytes
    valset = update.validator_set
    if valset is not None and bytes(valset.canonical_hash()) not in known_valset_hashes:
        valset_bytes = valset.to_bytes()
        staged += len(valset_bytes).to_bytes(4, "big")
        staged += valset_bytes
    else:
        staged += (0).to_bytes(4, "big")

    chunk_size = usable_chunk_bytes(tx_size_limit)
    data_chunks = tuple(
        bytes(staged[offset : offset + chunk_size])
        for offset in range(0, len(staged), chunk_size)
    )

    message = update.header.sign_bytes()
    per_tx = signatures_per_transaction(len(message), tx_size_limit)
    signatures = tuple(update.commit.signatures)
    signature_batches = tuple(
        signatures[offset : offset + per_tx]
        for offset in range(0, len(signatures), per_tx)
    )
    plan = ChunkPlan(
        data_chunks=data_chunks,
        signature_batches=signature_batches,
        sign_message=message,
    )
    if tracer is not None:
        tracer.observe("lc.plan.staged_bytes", len(staged))
        tracer.observe("lc.plan.data_chunks", len(data_chunks))
        tracer.observe("lc.plan.sig_batches", len(signature_batches))
        tracer.observe("lc.plan.transactions", plan.transaction_count)
    return plan
