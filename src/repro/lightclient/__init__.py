"""Concrete light clients for both directions of the bridge.

* :class:`~repro.lightclient.guest_client.GuestLightClient` — what the
  counterparty chain runs to follow the guest blockchain: verify a stake
  quorum of guest-validator signatures over each block fingerprint.  The
  paper highlights how lightweight this is (§VI-D).
* :class:`~repro.lightclient.tendermint.TendermintLightClient` — what the
  Guest Contract runs to follow the counterparty (a Tendermint/CometBFT
  chain).  On the host it cannot run in one transaction; the chunked
  update machinery in :mod:`repro.lightclient.chunked` splits each update
  into the ~36.5 transactions measured in Fig. 4.
"""

from repro.lightclient.guest_client import GuestLightClient, GuestClientUpdate
from repro.lightclient.tendermint import (
    CometHeader,
    Commit,
    LightClientUpdate,
    TendermintLightClient,
    ValidatorSet,
)
from repro.lightclient.chunked import ChunkPlan, plan_update_chunks

__all__ = [
    "ChunkPlan",
    "CometHeader",
    "Commit",
    "GuestClientUpdate",
    "GuestLightClient",
    "LightClientUpdate",
    "TendermintLightClient",
    "ValidatorSet",
    "plan_update_chunks",
]
