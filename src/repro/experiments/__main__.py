"""Command-line harness: regenerate any paper figure from a terminal.

Usage::

    python -m repro.experiments               # everything (≈1-2 min)
    python -m repro.experiments fig2 fig4     # just those figures
    python -m repro.experiments --duration-hours 48 table1

Valid targets: fig2 fig3 fig4 fig5 fig6 table1 recv storage all.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import report
from repro.experiments.blocks import BlockIntervalConfig, BlockIntervalRun
from repro.experiments.evaluation import EvaluationConfig, EvaluationRun
from repro.experiments.storage import measure_capacity, sealing_ablation

_EVALUATION_TARGETS = {"fig2", "fig3", "fig4", "fig5", "table1", "recv"}
#: ``throughput-smoke`` is CI-only (scaled-down, asserting) and not part
#: of ``all``.
_ALL_TARGETS = sorted(_EVALUATION_TARGETS | {"fig6", "storage", "throughput"})
_EXTRA_TARGETS = {"throughput-smoke"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("targets", nargs="*", default=["all"],
                        help=f"any of: {' '.join(_ALL_TARGETS)} all")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--duration-hours", type=float, default=24.0,
                        help="length of the simulated evaluation deployment")
    parser.add_argument("--fig6-days", type=float, default=3.0,
                        help="length of the Fig. 6 run")
    args = parser.parse_args(argv)

    targets = set(args.targets) or {"all"}
    if "all" in targets:
        targets = set(_ALL_TARGETS)
    unknown = targets - set(_ALL_TARGETS) - _EXTRA_TARGETS
    if unknown:
        parser.error(f"unknown targets: {', '.join(sorted(unknown))}")

    blocks: list[str] = []

    if targets & _EVALUATION_TARGETS:
        started = time.time()
        print(f"Running the evaluation deployment "
              f"({args.duration_hours:.0f} simulated hours)...", file=sys.stderr)
        results = EvaluationRun(EvaluationConfig(
            seed=args.seed, duration=args.duration_hours * 3600.0,
        )).execute()
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        renderers = {
            "fig2": lambda: report.render_fig2(results),
            "fig3": lambda: report.render_fig3(results),
            "fig4": lambda: report.render_fig4(results),
            "fig5": lambda: report.render_fig5(results),
            "table1": lambda: report.render_table1(results),
            "recv": lambda: report.render_receive_packet(results),
        }
        for name in ("fig2", "fig3", "fig4", "fig5", "recv", "table1"):
            if name in targets:
                blocks.append(renderers[name]())

    if "fig6" in targets:
        started = time.time()
        print(f"Running the Fig. 6 deployment "
              f"({args.fig6_days:.0f} simulated days)...", file=sys.stderr)
        fig6 = BlockIntervalRun(BlockIntervalConfig(
            seed=args.seed, duration=args.fig6_days * 24 * 3600.0,
        )).execute()
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        blocks.append(report.render_fig6(fig6))

    if "storage" in targets:
        blocks.append(report.render_storage(measure_capacity(), sealing_ablation()))

    if targets & {"throughput", "throughput-smoke"}:
        import json

        from repro.experiments.throughput import (
            check_smoke, render_sweep, run_throughput_smoke,
            run_throughput_sweep,
        )
        smoke = "throughput-smoke" in targets
        started = time.time()
        print("Running the throughput sweep"
              + (" (smoke scale)" if smoke else "") + "...", file=sys.stderr)
        results = run_throughput_smoke() if smoke else run_throughput_sweep()
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        blocks.append(render_sweep(results))
        suffix = "_smoke" if smoke else ""
        with open(f"BENCH_throughput{suffix}.json", "w") as handle:
            json.dump(results, handle, indent=2)
        if smoke:
            failures = check_smoke(results)
            if failures:
                print("\n\n".join(blocks))
                for failure in failures:
                    print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
                return 1

    print("\n\n".join(blocks))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
