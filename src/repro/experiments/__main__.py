"""Command-line harness: regenerate any paper figure from a terminal.

Usage::

    python -m repro.experiments               # everything (≈1-2 min)
    python -m repro.experiments fig2 fig4     # just those figures
    python -m repro.experiments --duration-hours 48 table1

Valid targets: fig2 fig3 fig4 fig5 fig6 table1 recv storage all —
plus the operational targets ``throughput-smoke`` (CI assertions),
``cluster`` (sharded multi-process sweep), ``replay-audit``
(checkpoint/restore/replay divergence check), ``chaos-soak`` (the
docs/CHAOS.md fault storm with its fault-free twin), ``chaos-smoke``
(the scaled-down asserting variant CI runs), ``accountability-smoke``
(the docs/ACCOUNTABILITY.md equivocation storm: three seeds, run twice
each, asserting attributable slashing and bit-reproducibility),
``state-sweep`` (the multi-million-packet sealing-scheduler comparison
of docs/STATE.md) and ``state-smoke`` (its CI-scale asserting variant).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import report
from repro.experiments.blocks import BlockIntervalConfig, BlockIntervalRun
from repro.experiments.evaluation import EvaluationConfig, EvaluationRun
from repro.experiments.storage import measure_capacity, sealing_ablation

_EVALUATION_TARGETS = {"fig2", "fig3", "fig4", "fig5", "table1", "recv"}
#: ``throughput-smoke`` is CI-only (scaled-down, asserting) and not part
#: of ``all``.
_ALL_TARGETS = sorted(_EVALUATION_TARGETS | {"fig6", "storage", "throughput"})
_EXTRA_TARGETS = {"throughput-smoke", "cluster", "replay-audit",
                  "chaos-soak", "chaos-smoke", "accountability-smoke",
                  "profile-soak", "wallclock-smoke",
                  "topology-sweep", "topology-smoke",
                  "state-sweep", "state-smoke"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("targets", nargs="*", default=["all"],
                        help=f"any of: {' '.join(_ALL_TARGETS)} all")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--duration-hours", type=float, default=24.0,
                        help="length of the simulated evaluation deployment")
    parser.add_argument("--fig6-days", type=float, default=3.0,
                        help="length of the Fig. 6 run")
    parser.add_argument("--cluster-workers", type=int, default=None,
                        help="worker processes for the cluster/smoke "
                             "targets (default: one per CPU)")
    parser.add_argument("--run-dir", default="results/cluster-run",
                        help="cluster run directory (task files, "
                             "checkpoints, results)")
    parser.add_argument("--checkpoint-every", type=float, default=300.0,
                        help="simulated seconds between mid-task world "
                             "checkpoints in cluster workers (0 = off)")
    parser.add_argument("--audit-seeds", type=int, nargs="+",
                        default=[401, 402, 403],
                        help="seeds for the replay-audit target")
    parser.add_argument("--profile-packets", type=int, default=2_000,
                        help="soak scale for the profile-soak target")
    parser.add_argument("--profile-sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="profile-soak stats sort key")
    parser.add_argument("--profile-lines", type=int, default=30,
                        help="profile-soak stats rows to print")
    parser.add_argument("--wallclock-packets", type=int, default=1_500,
                        help="soak scale for the wallclock-smoke target")
    parser.add_argument("--wallclock-floor", type=float, default=500.0,
                        help="events/sec of wall time the wallclock-smoke "
                             "target asserts (generous: CI machines vary)")
    args = parser.parse_args(argv)

    targets = set(args.targets) or {"all"}
    if "all" in targets:
        targets = set(_ALL_TARGETS)
    unknown = targets - set(_ALL_TARGETS) - _EXTRA_TARGETS
    if unknown:
        parser.error(f"unknown targets: {', '.join(sorted(unknown))}")

    blocks: list[str] = []

    if targets & _EVALUATION_TARGETS:
        started = time.time()
        print(f"Running the evaluation deployment "
              f"({args.duration_hours:.0f} simulated hours)...", file=sys.stderr)
        results = EvaluationRun(EvaluationConfig(
            seed=args.seed, duration=args.duration_hours * 3600.0,
        )).execute()
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        renderers = {
            "fig2": lambda: report.render_fig2(results),
            "fig3": lambda: report.render_fig3(results),
            "fig4": lambda: report.render_fig4(results),
            "fig5": lambda: report.render_fig5(results),
            "table1": lambda: report.render_table1(results),
            "recv": lambda: report.render_receive_packet(results),
        }
        for name in ("fig2", "fig3", "fig4", "fig5", "recv", "table1"):
            if name in targets:
                blocks.append(renderers[name]())

    if "fig6" in targets:
        started = time.time()
        print(f"Running the Fig. 6 deployment "
              f"({args.fig6_days:.0f} simulated days)...", file=sys.stderr)
        fig6 = BlockIntervalRun(BlockIntervalConfig(
            seed=args.seed, duration=args.fig6_days * 24 * 3600.0,
        )).execute()
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        blocks.append(report.render_fig6(fig6))

    if "storage" in targets:
        blocks.append(report.render_storage(measure_capacity(), sealing_ablation()))

    if targets & {"throughput", "throughput-smoke"}:
        import json

        from repro.experiments.throughput import (
            check_smoke, render_sweep, run_throughput_smoke,
            run_throughput_sweep,
        )
        smoke = "throughput-smoke" in targets
        started = time.time()
        print("Running the throughput sweep"
              + (" (smoke scale)" if smoke else "") + "...", file=sys.stderr)
        if smoke and args.cluster_workers is not None:
            from repro.cluster import ClusterConfig, run_cluster_smoke

            results = run_cluster_smoke(cluster=ClusterConfig(
                workers=args.cluster_workers,
                run_dir=args.run_dir,
                checkpoint_every_seconds=args.checkpoint_every,
            ))
        else:
            results = run_throughput_smoke() if smoke else run_throughput_sweep()
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        blocks.append(render_sweep(results))
        suffix = "_smoke" if smoke else ""
        with open(f"BENCH_throughput{suffix}.json", "w") as handle:
            json.dump(results, handle, indent=2)
        if smoke:
            failures = check_smoke(results)
            if failures:
                print("\n\n".join(blocks))
                for failure in failures:
                    print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
                return 1

    if "cluster" in targets:
        import json

        from repro.cluster import ClusterConfig, run_cluster_sweep
        from repro.experiments.throughput import render_sweep

        started = time.time()
        print("Running the sharded throughput sweep...", file=sys.stderr)
        results = run_cluster_sweep(cluster=ClusterConfig(
            workers=args.cluster_workers,
            run_dir=args.run_dir,
            checkpoint_every_seconds=args.checkpoint_every,
        ))
        info = results["cluster"]
        print(f"  done in {time.time() - started:.1f} s "
              f"({info['workers']} workers)", file=sys.stderr)
        blocks.append(render_sweep(results))
        with open("BENCH_throughput.json", "w") as handle:
            json.dump(results, handle, indent=2)

    if targets & {"chaos-soak", "chaos-smoke"}:
        import json

        from repro.experiments.chaos import (
            ChaosSoakConfig, check_chaos_smoke, render_chaos,
            run_chaos_smoke, run_chaos_soak,
        )
        smoke = "chaos-smoke" in targets
        started = time.time()
        print("Running the chaos soak"
              + (" (smoke scale)" if smoke else "") + "...", file=sys.stderr)
        record = (run_chaos_smoke(seed=args.seed) if smoke
                  else run_chaos_soak(ChaosSoakConfig(seed=args.seed)))
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        blocks.append(render_chaos(record))
        suffix = "_smoke" if smoke else ""
        with open(f"BENCH_chaos{suffix}.json", "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        failures = check_chaos_smoke(record)
        if failures:
            print("\n\n".join(blocks))
            for failure in failures:
                print(f"CHAOS FAILURE: {failure}", file=sys.stderr)
            return 1

    if "accountability-smoke" in targets:
        import json

        from repro.experiments.accountability import (
            check_accountability_smoke, render_accountability,
            run_accountability_smoke,
        )
        started = time.time()
        print("Running the accountability smoke (equivocation storm, "
              "3 seeds x 2 runs)...", file=sys.stderr)
        record = run_accountability_smoke()
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        blocks.append(render_accountability(record))
        with open("BENCH_accountability_smoke.json", "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        failures = check_accountability_smoke(record)
        if failures:
            print("\n\n".join(blocks))
            for failure in failures:
                print(f"ACCOUNTABILITY FAILURE: {failure}", file=sys.stderr)
            return 1

    if targets & {"topology-sweep", "topology-smoke"}:
        import json

        from repro.experiments.topology import (
            check_topology, render_topology, run_topology_smoke,
            run_topology_sweep,
        )
        smoke = "topology-smoke" in targets
        started = time.time()
        print("Running the topology sweep"
              + (" (smoke scale)" if smoke else "") + "...", file=sys.stderr)
        record = (run_topology_smoke(seed=args.seed) if smoke
                  else run_topology_sweep())
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        blocks.append(render_topology(record))
        suffix = "_smoke" if smoke else ""
        with open(f"BENCH_topology{suffix}.json", "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        failures = check_topology(record)
        if failures:
            print("\n\n".join(blocks))
            for failure in failures:
                print(f"TOPOLOGY FAILURE: {failure}", file=sys.stderr)
            return 1

    if targets & {"state-sweep", "state-smoke"}:
        import json

        from repro.experiments.state import (
            check_state, render_state, run_state_smoke, run_state_sweep,
        )
        smoke = "state-smoke" in targets
        started = time.time()
        print("Running the state sweep"
              + (" (smoke scale)" if smoke else "") + "...", file=sys.stderr)
        if smoke:
            record = run_state_smoke(seed=args.seed)
        else:
            cluster = None
            if args.cluster_workers is not None:
                from repro.cluster import ClusterConfig

                cluster = ClusterConfig(
                    workers=args.cluster_workers,
                    run_dir=args.run_dir,
                    checkpoint_every_seconds=args.checkpoint_every,
                )
            record = run_state_sweep(cluster=cluster)
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        blocks.append(render_state(record))
        suffix = "_smoke" if smoke else ""
        with open(f"BENCH_state{suffix}.json", "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        failures = check_state(record)
        if failures:
            print("\n\n".join(blocks))
            for failure in failures:
                print(f"STATE FAILURE: {failure}", file=sys.stderr)
            return 1

    if "profile-soak" in targets:
        from repro.experiments.profiling import (
            SoakConfig, profile_soak, render_soak_result,
        )

        config = SoakConfig(packets=args.profile_packets)
        print(f"Profiling the soak workload ({config.packets} packets)...",
              file=sys.stderr)
        result, table = profile_soak(
            config, sort=args.profile_sort, lines=args.profile_lines)
        blocks.append(render_soak_result(result, title="profile-soak"))
        blocks.append(table.rstrip())

    if "wallclock-smoke" in targets:
        import json

        from repro.experiments.profiling import (
            SoakConfig, render_soak_result, run_soak,
        )

        config = SoakConfig(packets=args.wallclock_packets)
        started = time.time()
        print(f"Running the wall-clock smoke soak "
              f"({config.packets} packets)...", file=sys.stderr)
        result = run_soak(config)
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        blocks.append(render_soak_result(result, title="wallclock-smoke"))
        payload = {
            "packets": config.packets,
            "floor_events_per_sec": args.wallclock_floor,
            **result.to_json(),
        }
        with open("BENCH_wallclock_smoke.json", "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        if result.outstanding:
            print("\n\n".join(blocks))
            print(f"WALLCLOCK FAILURE: {result.outstanding} packets "
                  f"never delivered", file=sys.stderr)
            return 1
        if result.events_per_sec < args.wallclock_floor:
            print("\n\n".join(blocks))
            print(f"WALLCLOCK FAILURE: {result.events_per_sec:.0f} events/s "
                  f"wall is below the {args.wallclock_floor:.0f} floor",
                  file=sys.stderr)
            return 1

    if "replay-audit" in targets:
        import json

        from repro.checkpoint.audit import run_replay_audits

        started = time.time()
        print(f"Running the replay-divergence audit "
              f"(seeds {args.audit_seeds})...", file=sys.stderr)
        audit = run_replay_audits(seeds=tuple(args.audit_seeds))
        print(f"  done in {time.time() - started:.1f} s", file=sys.stderr)
        with open("BENCH_replay_audit.json", "w") as handle:
            json.dump(audit, handle, indent=2)
        for record in audit["audits"]:
            verdict = "ok" if record["match"] else "DIVERGED"
            blocks.append(
                f"replay-audit seed {record['config']['seed']}: {verdict} "
                f"({record['events_replayed']} events replayed, "
                f"checkpoint {record['checkpoint_bytes'] / 1e6:.1f} MB)")
        if not audit["match"]:
            print("\n\n".join(blocks))
            for record in audit["audits"]:
                for divergence in record["divergences"]:
                    print(f"AUDIT DIVERGENCE: {divergence}", file=sys.stderr)
            return 1

    print("\n\n".join(blocks))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
