"""Experiment runners: one per table/figure of the paper's §V.

* :mod:`repro.experiments.evaluation` — the main simulated deployment;
  produces the data behind Fig. 2 (send latency), Fig. 3 (send cost),
  Fig. 4 (LC update latency), Fig. 5 (LC update cost), Table I
  (validator statistics) and the ReceivePacket numbers of §V-A.
* :mod:`repro.experiments.blocks` — the long-horizon run behind Fig. 6
  (guest inter-block intervals against the Δ cut-off).
* :mod:`repro.experiments.storage` — §V-D storage sizing, the rent
  deposit, and the seal-vs-no-seal occupancy comparison.
* :mod:`repro.experiments.ablations` — Δ sweep, fee-strategy trade-off
  and quorum-size sweep (design choices the paper discusses in §VI).
* :mod:`repro.experiments.report` — text rendering of every result in
  the paper's format.
"""

from repro.experiments.evaluation import EvaluationConfig, EvaluationRun

__all__ = ["EvaluationConfig", "EvaluationRun"]
