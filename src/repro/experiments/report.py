"""Render every reproduced table and figure in the paper's format.

Each ``render_*`` function takes the corresponding experiment's results
and returns the text block the benchmark harness prints: the same rows
(Table I) or series/threshold readouts (the figures) that the paper
reports, ready for side-by-side comparison with the published values.
"""

from __future__ import annotations

import statistics

from repro.experiments.evaluation import EvaluationResults
from repro.experiments.blocks import BlockIntervalResults
from repro.experiments.storage import SealingAblationResults, StorageResults
from repro.metrics.figures import cdf, histogram
from repro.metrics.stats import fraction_below, summarize
from repro.metrics.table import format_distribution, format_table
from repro.units import lamports_to_cents


def render_fig2(results: EvaluationResults) -> str:
    """Fig. 2: SendPacket → FinalisedBlock latency.

    Paper: "all but three transfers were completed within 21 seconds";
    the stragglers came from validator signing delays.
    """
    latencies = results.send_latencies()
    stragglers = sum(1 for value in latencies if value >= 21.0)
    bulk = [value for value in latencies if value < 60.0]
    lines = [
        "Fig. 2 — delay between SendPacket and FinalisedBlock",
        "  " + format_distribution(latencies, "s", thresholds=[10.0, 21.0, 60.0]),
        f"  stragglers (>= 21 s): {stragglers} of {len(latencies)}"
        "   [paper: 3 stragglers, rest < 21 s]",
        cdf(bulk, unit="s", markers=[21.0],
            title="  CDF (stragglers excluded; paper: all but 3 below 21 s):"),
    ]
    return "\n".join(lines)


def render_fig3(results: EvaluationResults) -> str:
    """Fig. 3: cost of sending a packet — the two fee-policy clusters."""
    priority = [r.cost_usd for r in results.sends
                if r.strategy == "priority" and r.cost_usd is not None]
    bundle = [r.cost_usd for r in results.sends
              if r.strategy == "bundle" and r.cost_usd is not None]
    total = len(priority) + len(bundle)
    lines = ["Fig. 3 — cost of sending a packet (USD)"]
    if priority:
        lines.append(
            f"  priority-fee cluster: mean {statistics.mean(priority):.2f} USD, "
            f"{100 * len(priority) / total:.0f} % of sends   [paper: 1.40 USD, 17 %]"
        )
    if bundle:
        lines.append(
            f"  block-bundle cluster: mean {statistics.mean(bundle):.2f} USD, "
            f"{100 * len(bundle) / total:.0f} % of sends   [paper: 3.02 USD, 83 %]"
        )
    return "\n".join(lines)


def render_fig4(results: EvaluationResults) -> str:
    """Fig. 4: light-client update latency + transaction counts."""
    updates = [u for u in results.lc_updates if u.success]
    tx_counts = [u.transaction_count for u in updates]
    latencies = [u.latency for u in updates]
    lines = [
        "Fig. 4 — latency of counterparty light-client updates on the guest",
        f"  transactions per update: mean {statistics.mean(tx_counts):.1f}, "
        f"std {statistics.pstdev(tx_counts):.1f}   [paper: 36.5 ± 5.8]",
        "  " + format_distribution(latencies, "s", thresholds=[25.0, 60.0]),
        "  [paper: 50 % < 25 s, 96 % < 60 s]",
        cdf(latencies, unit="s", markers=[25.0, 60.0], title="  CDF:"),
    ]
    return "\n".join(lines)


def render_fig5(results: EvaluationResults) -> str:
    """Fig. 5: light-client update cost (0.1 ¢/tx + 0.1 ¢/signature)."""
    updates = [u for u in results.lc_updates if u.success]
    costs = [lamports_to_cents(u.total_fee) for u in updates]
    expected = [0.1 * (u.transaction_count + u.signature_count) for u in updates]
    lines = [
        "Fig. 5 — cost of light-client updates (cents)",
        "  " + format_distribution(costs, "c"),
        f"  matches 0.1c/tx + 0.1c/signature model: "
        f"max deviation {max(abs(c - e) for c, e in zip(costs, expected)):.2f}c",
        histogram(costs, bins=8, unit="c", title="  distribution:"),
    ]
    return "\n".join(lines)


def render_receive_packet(results: EvaluationResults) -> str:
    """§V-A / §V-B: the ReceivePacket transaction counts and costs."""
    ok = [d for d in results.deliveries if d.success]
    tx_counts = sorted({d.transaction_count for d in ok})
    costs = [round(lamports_to_cents(d.total_fee), 1) for d in ok]
    cheap_share = 100.0 * sum(1 for c in costs if c <= 0.4) / max(1, len(costs))
    lines = [
        "ReceivePacket (§V-A/B)",
        f"  transactions per delivery: {tx_counts}   [paper: 4-5]",
        f"  all transactions land in one host block: "
        f"{all(d.success for d in ok)} across {len(ok)} deliveries",
        f"  cost 0.4c for {cheap_share:.1f} % of deliveries, 0.5c otherwise"
        "   [paper: 0.4c in 98.2 %, 0.5c rest]",
    ]
    return "\n".join(lines)


def render_table1(results: EvaluationResults) -> str:
    """Table I: per-validator signing statistics."""
    headers = ["#", "sigs", "cost(c)", "min", "Q1", "med", "Q3", "max", "mean", "std"]
    rows = []
    for row in results.validator_rows:
        if row.latency is None:
            rows.append([f"#{row.index}", "0", f"{row.cost_cents:.2f}"] + ["-"] * 7)
        else:
            rows.append(
                [f"#{row.index}", str(row.signatures), f"{row.cost_cents:.2f}"]
                + row.latency.row()
            )
    table = format_table(headers, rows, title="Table I — validator signing statistics")
    footer = (
        f"\n  silent validators: {results.silent_validators} of "
        f"{results.silent_validators + len(results.validator_rows)}   [paper: 7 of 24]"
        f"\n  cost vs latency correlation: {results.cost_latency_correlation:.3f}"
        "   [paper: 0.007 — no meaningful correlation]"
    )
    return table + footer


def render_fig6(results: BlockIntervalResults) -> str:
    """Fig. 6: interval between consecutive guest blocks."""
    intervals = results.intervals
    bounded = [min(value, 4_000.0) for value in intervals]
    lines = [
        "Fig. 6 — interval between consecutive guest blocks",
        "  " + format_distribution(intervals, "s", thresholds=[600.0, 1800.0, 3600.0]),
        histogram(bounded, bins=10, unit="s", log_counts=False,
                  title="  distribution (clipped at 4000 s; note the Delta spike):"),
        f"  blocks at the Delta = 1 h cut-off: {results.at_delta_cutoff} of "
        f"{len(intervals)} ({100 * results.cutoff_share():.0f} %)"
        "   [paper: about a quarter]",
        f"  intervals far over Delta (signing stalls): {results.far_over_delta}"
        "   [paper: five over the month]",
    ]
    return "\n".join(lines)


def render_storage(capacity: StorageResults, ablation: SealingAblationResults) -> str:
    """§V-D: account sizing, rent deposit, sealing effectiveness."""
    lines = [
        "Storage costs (§V-D)",
        f"  10 MiB account rent deposit: {capacity.deposit_usd:,.0f} USD"
        "   [paper: 14.6 thousand USD, recoverable]",
        f"  key-value pairs fitting 10 MiB: {capacity.pairs_in_account:,}"
        f" ({capacity.bytes_per_pair:.0f} B/pair)   [paper: over 72 thousand]",
        f"  sealing ablation over {ablation.packets_processed} packets "
        f"(live window {ablation.live_window}):",
        f"    sealable trie: {ablation.sealed_final:,} B live"
        f"  |  plain trie: {ablation.plain_final:,} B"
        f"  |  growth ratio {ablation.growth_ratio:.0f}x",
    ]
    return "\n".join(lines)
