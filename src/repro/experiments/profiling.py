"""Profile the hot paths of a soak-scale workload run.

Wall-clock cost is the binding constraint on every large experiment
(docs/PERFORMANCE.md): the 10k-packet soak dominates CI time and caps
how far the topology/population sweeps can scale.  This module wraps
the exact soak workload shape from ``tests/test_workload_soak.py`` in a
:mod:`cProfile` harness so that optimisation work starts from data, not
hunches::

    PYTHONPATH=src python -m repro.experiments profile-soak
    PYTHONPATH=src python -m repro.experiments profile-soak \
        --profile-packets 2000 --profile-sort tottime --profile-lines 40

The harness reports both the profile table (top functions by the chosen
sort key) and the wall-clock summary the benchmark gate tracks
(events/sec and packets/sec of *wall* time, see
``benchmarks/test_wallclock.py``).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass

from repro.deployment import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.ibc.identifiers import PortId
from repro.relayer.relayer import RelayerConfig
from repro.validators.profiles import simple_profiles
from repro.workload import WorkloadEngine, WorkloadSpec


@dataclass(frozen=True)
class SoakConfig:
    """The soak workload shape (mirrors tests/test_workload_soak.py).

    ``packets`` scales the run: the offered rate stays fixed at the
    soak's 40 pps and the sending window stretches to fit, so a scaled
    profile exercises the same steady-state hot paths as the full run.
    """

    seed: int = 29
    packets: int = 10_000
    offered_pps: float = 40.0
    channels: int = 3
    amount: int = 3
    batch_max_packets: int = 32
    batch_flush_seconds: float = 2.0
    delta_seconds: float = 120.0
    drain_seconds: float = 1_800.0
    tracing: bool = True

    @property
    def duration(self) -> float:
        return self.packets / self.offered_pps


@dataclass
class SoakResult:
    """What one soak run measured, in wall-clock terms."""

    sent: int
    delivered: int
    outstanding: int
    events_dispatched: int
    wall_seconds: float
    simulated_seconds: float

    @property
    def events_per_sec(self) -> float:
        return self.events_dispatched / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def packets_per_sec(self) -> float:
        return self.delivered / self.wall_seconds if self.wall_seconds else 0.0

    def to_json(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "outstanding": self.outstanding,
            "events_dispatched": self.events_dispatched,
            "wall_seconds": round(self.wall_seconds, 3),
            "simulated_seconds": self.simulated_seconds,
            "events_per_sec": round(self.events_per_sec, 1),
            "packets_per_sec": round(self.packets_per_sec, 2),
        }


def build_soak(config: SoakConfig):
    """A linked multi-channel deployment plus its workload engine."""
    dep = Deployment(DeploymentConfig(
        seed=config.seed,
        guest=GuestConfig(delta_seconds=config.delta_seconds,
                          min_stake_lamports=1),
        relayer=RelayerConfig(
            batch_max_packets=config.batch_max_packets,
            batch_flush_seconds=config.batch_flush_seconds,
        ),
        profiles=simple_profiles(4),
        tracing=config.tracing,
    ))
    channels = [dep.establish_link()]
    for _ in range(config.channels - 1):
        opened: dict = {}
        dep.relayer.open_channel(
            PortId("transfer"), PortId("transfer"),
            lambda g, c: opened.update(guest=g, cp=c),
        )
        deadline = dep.sim.now + 3_600.0
        while "cp" not in opened and dep.sim.now < deadline:
            dep.sim.step()
        if "cp" not in opened:
            raise RuntimeError("extra channel failed to open")
        channels.append((opened["guest"], opened["cp"]))
    engine = WorkloadEngine(dep, channels, WorkloadSpec(
        mode="open-constant",
        offered_pps=config.offered_pps,
        duration=config.duration,
        amount=config.amount,
        drain_seconds=config.drain_seconds,
    ))
    return dep, engine


def run_soak(config: SoakConfig) -> SoakResult:
    """Run the soak workload once and time it (no profiler overhead)."""
    dep, engine = build_soak(config)
    events_before = dep.sim.dispatched_events()
    sim_before = dep.sim.now
    started = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - started
    return SoakResult(
        sent=engine.sent,
        delivered=engine.delivered,
        outstanding=engine.outstanding(),
        events_dispatched=dep.sim.dispatched_events() - events_before,
        wall_seconds=wall,
        simulated_seconds=dep.sim.now - sim_before,
    )


def profile_soak(config: SoakConfig, sort: str = "cumulative",
                 lines: int = 30) -> tuple[SoakResult, str]:
    """Run the soak under :mod:`cProfile`; return (result, profile table).

    The profiler is attached only around the workload run itself —
    deployment construction and channel handshakes are excluded, so the
    table reflects the steady-state packet pipeline the optimisation
    work targets.
    """
    dep, engine = build_soak(config)
    events_before = dep.sim.dispatched_events()
    sim_before = dep.sim.now
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    engine.run()
    profiler.disable()
    wall = time.perf_counter() - started
    result = SoakResult(
        sent=engine.sent,
        delivered=engine.delivered,
        outstanding=engine.outstanding(),
        events_dispatched=dep.sim.dispatched_events() - events_before,
        wall_seconds=wall,
        simulated_seconds=dep.sim.now - sim_before,
    )
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(lines)
    return result, buffer.getvalue()


def render_soak_result(result: SoakResult, title: str = "soak") -> str:
    return (
        f"{title}: {result.delivered}/{result.sent} packets delivered, "
        f"{result.events_dispatched} events in {result.wall_seconds:.2f} s wall "
        f"({result.events_per_sec:,.0f} events/s, "
        f"{result.packets_per_sec:,.1f} packets/s wall; "
        f"{result.simulated_seconds:,.0f} simulated s)"
    )
