"""Ablations over the design choices §III/§VI discuss.

* **Δ sweep** — the empty-block rate (and hence the validators' standing
  cost) against the Δ parameter: small Δ means frequent empty blocks for
  timely counterparty timestamps; large Δ means slow timeout detection.
* **Fee strategies** — the §VI-B trade-off: landing latency vs cost for
  base / priority / bundle submissions under congestion.
* **Quorum sweep** — block finalisation latency against the required
  stake fraction (more stake → safer but slower/more fragile).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from repro.deployment import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.host.accounts import Address
from repro.host.chain import HostChain, HostConfig
from repro.host.fees import BaseFee, BundleFee, PriorityFee
from repro.host.transaction import Instruction, Transaction
from repro.crypto.simsig import SimSigScheme
from repro.metrics.stats import Summary, summarize
from repro.sim.kernel import Simulation
from repro.units import lamports_to_usd, sol_to_lamports
from repro.validators.profiles import simple_profiles


# ---------------------------------------------------------------------------
# Δ sweep
# ---------------------------------------------------------------------------

@dataclass
class DeltaPoint:
    delta_seconds: float
    blocks: int
    empty_blocks: int
    mean_interval: float

    @property
    def empty_share(self) -> float:
        return self.empty_blocks / max(1, self.blocks)


def delta_sweep(deltas: tuple[float, ...] = (600.0, 1_800.0, 3_600.0, 7_200.0),
                duration: float = 12 * 3600.0,
                send_mean_gap: float = 2_600.0,
                seed: int = 71) -> list[DeltaPoint]:
    """Empty-block share as a function of Δ under fixed traffic."""
    points = []
    for delta in deltas:
        dep = Deployment(DeploymentConfig(
            seed=seed,
            guest=GuestConfig(delta_seconds=delta, min_stake_lamports=1),
            host=HostConfig(slot_seconds=2.0, retain_blocks=2_000),
            profiles=simple_profiles(4),
            cranker_poll_seconds=5.0,
        ))
        channel, _ = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 10 ** 12)
        rng = dep.sim.rng.fork("delta-sweep")

        def send(dep=dep, channel=channel, rng=rng):
            payload = dep.contract.transfer.make_payload(channel, "GUEST", 1, "alice", "bob")
            dep.user_api.send_packet("transfer", str(channel), payload)
            if dep.sim.now + 1 < duration:
                dep.sim.schedule(rng.expovariate(1.0 / send_mean_gap), send)

        dep.sim.schedule(rng.expovariate(1.0 / send_mean_gap), send)
        dep.sim.run_until(duration)

        blocks = dep.contract.blocks
        empty = sum(
            1 for prev, cur in zip(blocks, blocks[1:])
            if cur.header.state_root == prev.header.state_root
        )
        times = [b.header.timestamp for b in blocks]
        intervals = [b - a for a, b in zip(times, times[1:])]
        points.append(DeltaPoint(
            delta_seconds=delta,
            blocks=len(blocks),
            empty_blocks=empty,
            mean_interval=sum(intervals) / max(1, len(intervals)),
        ))
    return points


# ---------------------------------------------------------------------------
# Fee-strategy trade-off (§VI-B)
# ---------------------------------------------------------------------------

@dataclass
class FeeStrategyPoint:
    name: str
    latency: Summary
    mean_cost_usd: float


def fee_strategy_tradeoff(congestion: float = 0.7, samples: int = 150,
                          seed: int = 72) -> list[FeeStrategyPoint]:
    """Landing latency vs cost for each strategy on a congested host."""
    sim = Simulation(seed=seed)
    chain = HostChain(sim, SimSigScheme(), HostConfig(
        base_congestion=congestion, diurnal_congestion=0.0, spike_probability=0.0,
    ))
    payer = Address.derive("fee-ablation-payer")
    chain.airdrop(payer, sol_to_lamports(10_000.0))

    sink = Address.derive("fee-ablation-program")

    class Sink:
        program_id = sink

        def execute(self, ctx, data):
            ctx.meter.charge(5_000)

    chain.deploy(Sink())

    strategies = [
        ("base", BaseFee()),
        ("priority", PriorityFee(compute_unit_price=5_000_000)),
        ("bundle", BundleFee(tip_lamports=15_090_000)),
    ]
    observations: dict[str, list[tuple[float, int]]] = {name: [] for name, _ in strategies}

    for index in range(samples):
        submit_time = index * 20.0
        for name, strategy in strategies:
            def submit(name=name, strategy=strategy, t0=submit_time):
                tx = Transaction(
                    payer=payer,
                    instructions=(Instruction(sink, (), b"x"),),
                    fee_strategy=strategy,
                    compute_budget=1_400_000,
                )
                chain.submit(tx, on_result=lambda r, t0=t0, name=name:
                             observations[name].append((r.time - t0, r.fee_paid)))
            sim.schedule_at(submit_time, submit)
    sim.run_until(samples * 20.0 + 300.0)

    points = []
    for name, _ in strategies:
        data = observations[name]
        points.append(FeeStrategyPoint(
            name=name,
            latency=summarize([latency for latency, _ in data]),
            mean_cost_usd=lamports_to_usd(
                round(sum(fee for _, fee in data) / len(data))
            ),
        ))
    return points


# ---------------------------------------------------------------------------
# Adaptive fees (§VI-B future work, implemented)
# ---------------------------------------------------------------------------

@dataclass
class AdaptiveFeePoint:
    congestion: float
    fixed_cost_usd: float
    adaptive_cost_usd: float
    fixed_latency_median: float
    adaptive_latency_median: float


def adaptive_fee_comparison(congestion_levels: tuple[float, ...] = (0.1, 0.4, 0.8),
                            samples: int = 80,
                            seed: int = 74) -> list[AdaptiveFeePoint]:
    """Fixed priority fee vs the §VI-B adaptive strategy.

    The claim: at low congestion the adaptive sender pays a fraction of
    the fixed fee for comparable latency; at high congestion it matches
    the fixed fee's latency by paying up.
    """
    from repro.host.fees import AdaptiveFee

    points = []
    for level in congestion_levels:
        sim = Simulation(seed=seed)
        chain = HostChain(sim, SimSigScheme(), HostConfig(
            base_congestion=level, diurnal_congestion=0.0, spike_probability=0.0,
        ))
        payer = Address.derive("adaptive-ablation-payer")
        chain.airdrop(payer, sol_to_lamports(10_000.0))
        sink = Address.derive("adaptive-ablation-sink")

        class Sink:
            program_id = sink

            def execute(self, ctx, data):
                ctx.meter.charge(5_000)

        chain.deploy(Sink())
        fixed = PriorityFee(compute_unit_price=5_000_000)
        adaptive = AdaptiveFee(lambda: chain.congestion_at(sim.now))
        observations: dict[str, list[tuple[float, int]]] = {"fixed": [], "adaptive": []}

        for index in range(samples):
            submit_time = index * 15.0
            for name, strategy in (("fixed", fixed), ("adaptive", adaptive)):
                def submit(name=name, strategy=strategy, t0=submit_time):
                    tx = Transaction(
                        payer=payer,
                        instructions=(Instruction(sink, (), b"x"),),
                        fee_strategy=strategy,
                        compute_budget=1_400_000,
                    )
                    chain.submit(tx, on_result=lambda r, t0=t0, name=name:
                                 observations[name].append((r.time - t0, r.fee_paid)))
                sim.schedule_at(submit_time, submit)
        sim.run_until(samples * 15.0 + 120.0)

        fixed_lat = summarize([l for l, _ in observations["fixed"]])
        adaptive_lat = summarize([l for l, _ in observations["adaptive"]])
        mean_fee = lambda rows: lamports_to_usd(
            round(sum(f for _, f in rows) / len(rows))
        )
        points.append(AdaptiveFeePoint(
            congestion=level,
            fixed_cost_usd=mean_fee(observations["fixed"]),
            adaptive_cost_usd=mean_fee(observations["adaptive"]),
            fixed_latency_median=fixed_lat.median,
            adaptive_latency_median=adaptive_lat.median,
        ))
    return points


# ---------------------------------------------------------------------------
# Quorum sweep
# ---------------------------------------------------------------------------

@dataclass
class QuorumPoint:
    quorum_fraction: Fraction
    finalisation_latency: Summary
    stalled_blocks: int


def quorum_sweep(fractions: tuple[Fraction, ...] = (
                     Fraction(1, 2), Fraction(2, 3), Fraction(4, 5), Fraction(9, 10),
                 ),
                 validators: int = 12,
                 duration: float = 4 * 3600.0,
                 seed: int = 73) -> list[QuorumPoint]:
    """Finalisation latency against the required stake fraction.

    Validators miss ~2 % of blocks (online_probability), so demanding
    more stake slows finalisation and eventually stalls blocks until the
    periodic catch-up sweep fills the gap.
    """
    points = []
    for fraction in fractions:
        dep = Deployment(DeploymentConfig(
            seed=seed,
            guest=GuestConfig(
                delta_seconds=300.0, min_stake_lamports=1,
                quorum_fraction=fraction,
            ),
            host=HostConfig(retain_blocks=2_000),
            profiles=simple_profiles(validators),
        ))
        dep.run_for(duration)
        latencies = []
        stalled = 0
        for block in dep.contract.blocks[1:]:  # genesis self-finalises
            if block.finalised_at is None:
                stalled += 1
            else:
                latency = block.finalised_at - block.generated_at
                latencies.append(latency)
                if latency > 60.0:
                    stalled += 1
        points.append(QuorumPoint(
            quorum_fraction=fraction,
            finalisation_latency=summarize(latencies),
            stalled_blocks=stalled,
        ))
    return points
