"""§VI-D's last observation, quantified: the guest light client is cheap.

"The guest blockchain may be useful in systems whose light clients have
high resource demands.  Since the guest blockchain design is simple and
comes with a lightweight light client implementation, it might replace
the host light client on the counterparty blockchain."

This experiment measures what a counterparty pays to *follow* each chain
design: signature verifications per verified header, update bytes on the
wire, and wall-clock verification time — for the guest light client
(stake quorum over one fingerprint, ≤24 validators) versus a Tendermint
light client of a Picasso-sized chain (~190 commit signatures plus
validator-set bookkeeping).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.crypto.hashing import Hash
from repro.crypto.simsig import SimSigScheme
from repro.guest.block import GuestBlockHeader
from repro.guest.epoch import Epoch
from repro.lightclient.guest_client import GuestClientUpdate, GuestLightClient
from repro.lightclient.tendermint import (
    CometHeader,
    Commit,
    LightClientUpdate,
    TendermintLightClient,
    ValidatorSet,
)


@dataclass
class ClientCostPoint:
    """Per-header cost of following one chain design."""

    name: str
    validators: int
    signatures_verified: int
    update_bytes: int
    seconds_per_header: float


def _measure_guest_client(validator_count: int, headers: int, seed_salt: int) -> ClientCostPoint:
    scheme = SimSigScheme()
    keys = [
        scheme.keypair_from_seed(bytes([seed_salt]) + i.to_bytes(4, "big") + bytes(27))
        for i in range(validator_count)
    ]
    epoch = Epoch(
        epoch_id=0,
        validators={kp.public_key: 100 for kp in keys},
        quorum_stake=100 * validator_count * 2 // 3 + 1,
    )
    client = GuestLightClient(scheme, epoch)

    total_bytes = 0
    total_sigs = 0
    started = time.perf_counter()
    for height in range(1, headers + 1):
        header = GuestBlockHeader(
            height=height, prev_hash=Hash.zero(), timestamp=float(height),
            host_slot=height, state_root=Hash.of(height.to_bytes(8, "big")),
            epoch_id=0, epoch_hash=epoch.canonical_hash(),
        )
        message = header.sign_message()
        signatures = {kp.public_key: kp.sign(message) for kp in keys}
        total_sigs += len(signatures)
        # Wire size: fingerprint preimage + per-signer (key + signature).
        total_bytes += len(message) + len(signatures) * (32 + 64)
        client.update(GuestClientUpdate(header=header, signatures=signatures))
    elapsed = time.perf_counter() - started
    return ClientCostPoint(
        name="guest",
        validators=validator_count,
        signatures_verified=total_sigs // headers,
        update_bytes=total_bytes // headers,
        seconds_per_header=elapsed / headers,
    )


def _measure_tendermint_client(validator_count: int, headers: int, seed_salt: int) -> ClientCostPoint:
    scheme = SimSigScheme()
    keys = [
        scheme.keypair_from_seed(bytes([seed_salt]) + i.to_bytes(4, "big") + bytes(27))
        for i in range(validator_count)
    ]
    valset = ValidatorSet(members=tuple((kp.public_key, 100) for kp in keys))
    client = TendermintLightClient("heavy-1", valset)

    total_bytes = 0
    total_sigs = 0
    started = time.perf_counter()
    for height in range(1, headers + 1):
        header = CometHeader(
            chain_id="heavy-1", height=height, time=float(height),
            app_hash=Hash.of(height.to_bytes(8, "big")),
            validators_hash=valset.canonical_hash(),
            next_validators_hash=valset.canonical_hash(),
        )
        message = header.sign_bytes()
        commit = Commit(signatures=tuple(
            (kp.public_key, kp.sign(message)) for kp in keys
        ))
        update = LightClientUpdate(header=header, commit=commit, validator_set=valset)
        total_sigs += len(commit)
        total_bytes += len(update.to_bytes())
        client.update(update, scheme)
    elapsed = time.perf_counter() - started
    return ClientCostPoint(
        name="tendermint",
        validators=validator_count,
        signatures_verified=total_sigs // headers,
        update_bytes=total_bytes // headers,
        seconds_per_header=elapsed / headers,
    )


def light_client_cost_comparison(guest_validators: int = 24,
                                 tendermint_validators: int = 190,
                                 headers: int = 50) -> list[ClientCostPoint]:
    """Cost per verified header: guest LC vs a heavy host's LC."""
    return [
        _measure_guest_client(guest_validators, headers, seed_salt=5),
        _measure_tendermint_client(tendermint_validators, headers, seed_salt=6),
    ]
