"""State growth economics at scale: the ``state-sweep`` experiment.

The §V-D ablation showed sealing works for 5k packets; this sweep is
the multi-million-packet version, and it compares sealing *schedulers*
(:mod:`repro.state.scheduler`) instead of just sealing-vs-not.  One
point replays a long packet lifecycle — send commitment, receipt, ack,
commitment delete on ack return, lagged-rule seal offers — directly
against a :class:`~repro.trie.store.ProvableStore` in batched store
ops (no simulator kernel), which is what makes ≥1M logical packets
tractable in pure Python; points are independent, so the sweep shards
across cluster workers as ``state-point`` tasks.

Per point it records trajectories of live nodes, accounted live bytes,
cumulative host rent paid for those bytes, and the byte size of a
fresh membership proof (proof-size drift).  ``check_state`` enforces
the conservation properties: every scheduler — including not sealing
at all — must end at the *same root* (sealing is root-neutral), cached
aggregates must equal a full recount, the rent-aware scheduler must
keep live bytes near its budget while the plain trie grows without
bound.

``python -m repro.experiments state-sweep`` writes ``BENCH_state.json``;
``state-smoke`` is the scaled-down asserting variant CI runs.  Schema
notes live in docs/STATE.md.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.state.scheduler import SealScheduler, scheduler_from_name
from repro.trie.store import ProvableStore
from repro.units import RENT_LAMPORTS_PER_BYTE_YEAR

SCHEMA = "state-sweep/v1"

_SECONDS_PER_YEAR = 365.25 * 24 * 3600.0

_RECEIPT_PREFIX = "receipts/ports/transfer/channels/channel-0"
_ACK_PREFIX = "acks/ports/transfer/channels/channel-0"
_COMMITMENT_PREFIX = "commitments/ports/transfer/channels/channel-0"


@dataclass
class StatePointConfig:
    """One scheduler's long-horizon replay."""

    scheduler: str = "eager"            # "plain" | "eager" | "lazy" | "rent-aware"
    packets: int = 1_000_000
    #: Acks return to the sender (deleting its commitment and
    #: confirming the ack for sealing) this many packets later.
    ack_lag: int = 32
    #: Logical seconds per packet — prices rent over the horizon
    #: (0.5 s/packet ≈ 2 packets/s sustained, the paper's ballpark).
    seconds_per_packet: float = 0.5
    sample_every: int = 10_000
    #: LazyScheduler batch size.
    lazy_batch: int = 256
    #: RentAwareScheduler annual budget, expressed as the live-byte
    #: level the budget prices (budget = bytes × rent rate).
    rent_budget_bytes: int = 262_144
    seed: int = 2024

    def annual_budget_lamports(self) -> int:
        return round(self.rent_budget_bytes * RENT_LAMPORTS_PER_BYTE_YEAR)


@dataclass
class StateSweepConfig:
    schedulers: tuple[str, ...] = ("plain", "eager", "lazy", "rent-aware")
    point: StatePointConfig = field(default_factory=StatePointConfig)


def _build_scheduler(config: StatePointConfig) -> Optional[SealScheduler]:
    if config.scheduler == "plain":
        return None
    if config.scheduler == "lazy":
        return scheduler_from_name("lazy", batch=config.lazy_batch)
    if config.scheduler == "rent-aware":
        return scheduler_from_name(
            "rent-aware",
            annual_budget_lamports=config.annual_budget_lamports(),
        )
    return scheduler_from_name(config.scheduler)


def run_state_point(config: StatePointConfig) -> dict:
    """Replay ``config.packets`` packet lifecycles under one scheduler.

    The op mix per sequence ``n`` mirrors ``IbcHost`` exactly:

    * ``n`` sent: commitment written;
    * ``n`` delivered: receipt written, ack written; the lagged rule
      makes receipt ``n-1`` safe, so it is *offered* to the scheduler;
    * ``n - ack_lag`` acknowledged: that commitment is deleted and the
      ack (confirmed + safe) is offered;
    * the scheduler is drained after each offer batch, sealing
      whichever offered entries its policy releases.
    """
    store = ProvableStore()
    scheduler = _build_scheduler(config)
    value = hashlib.sha256(b"state-sweep-%d" % config.seed).digest()

    def drain() -> None:
        if scheduler is None:
            return
        while True:
            due = scheduler.drain(store)
            if not due:
                return
            for prefix, sequence in due:
                store.seal_seq(prefix, sequence)

    samples: list[dict] = []
    rent_paid = 0.0
    rent_per_byte_second = RENT_LAMPORTS_PER_BYTE_YEAR / _SECONDS_PER_YEAR
    max_live_bytes = 0

    def sample(packet_index: int) -> None:
        proof = store.prove_seq(_RECEIPT_PREFIX, packet_index)
        samples.append({
            "packet": packet_index,
            "live_nodes": store.node_count(),
            "live_bytes": store.storage_bytes(),
            "sealed_count": store.trie.sealed_count(),
            "rent_paid_lamports": round(rent_paid, 3),
            "proof_bytes": len(proof.to_bytes()),
            "pending_seals": scheduler.pending_count() if scheduler else 0,
        })

    for n in range(config.packets):
        store.set_seq(_COMMITMENT_PREFIX, n, value)          # send
        store.set_seq(_RECEIPT_PREFIX, n, b"\x01")           # deliver
        store.set_seq(_ACK_PREFIX, n, value)                 # ack written
        if scheduler is not None and n >= 1:
            # Lagged rule, in-order arrival: receipt n-1 became safe.
            scheduler.offer(_RECEIPT_PREFIX, n - 1)
        acked = n - config.ack_lag
        if acked >= 0:
            store.delete_seq(_COMMITMENT_PREFIX, acked)      # ack returned
            if scheduler is not None:
                # Confirmed by the sender, and long past the lagged-rule
                # watermark (ack_lag >= 1), so safe to offer.
                scheduler.offer(_ACK_PREFIX, acked)
        drain()
        rent_paid += (store.storage_bytes() * rent_per_byte_second
                      * config.seconds_per_packet)
        max_live_bytes = max(max_live_bytes, store.storage_bytes())
        if n % config.sample_every == 0 or n == config.packets - 1:
            sample(n)

    recount = store.trie.recount_aggregates()
    cached = (store.storage_bytes(), store.node_count(),
              store.trie.sealed_count())
    return {
        "config": asdict(config),
        "scheduler": config.scheduler,
        "samples": samples,
        "final": {
            "root": store.root_hash.hex(),
            "live_nodes": store.node_count(),
            "live_bytes": store.storage_bytes(),
            "sealed_count": store.trie.sealed_count(),
            "max_live_bytes": max_live_bytes,
            "rent_paid_lamports": round(rent_paid, 3),
            "recount_ok": cached == recount,
            "offered": scheduler.offered if scheduler else 0,
            "sealed_by_scheduler": scheduler.sealed if scheduler else 0,
            "pending_seals": scheduler.pending_count() if scheduler else 0,
        },
    }


# ----------------------------------------------------------------------
# Sweep fronts (serial and cluster-sharded)
# ----------------------------------------------------------------------


def point_configs(config: StateSweepConfig) -> list[StatePointConfig]:
    points = []
    for name in config.schedulers:
        point = StatePointConfig(**{**asdict(config.point),
                                    "scheduler": name})
        points.append(point)
    return points


def state_tasks(configs: list[StatePointConfig]) -> list[dict]:
    return [
        {"index": index, "kind": "state-point", "config": asdict(point)}
        for index, point in enumerate(configs)
    ]


def run_state_sweep(config: StateSweepConfig | None = None,
                    cluster=None) -> dict:
    """Run every scheduler's point; pass ``cluster`` (a
    :class:`repro.cluster.ClusterConfig`) to shard points across worker
    processes instead of running them serially."""
    config = config or StateSweepConfig()
    configs = point_configs(config)
    if cluster is not None:
        from repro.cluster import ClusterRunner

        runner = ClusterRunner(cluster)
        records = runner.run_tasks(state_tasks(configs))
    else:
        records = [run_state_point(point) for point in configs]
    return {
        "schema": SCHEMA,
        "seed": config.point.seed,
        "packets": config.point.packets,
        "schedulers": list(config.schedulers),
        "points": records,
    }


def run_state_smoke(seed: int = 2024) -> dict:
    """CI scale: 4k packets, every scheduler, tight sampling."""
    return run_state_sweep(StateSweepConfig(
        point=StatePointConfig(
            packets=4_000, sample_every=500, ack_lag=16,
            lazy_batch=64, rent_budget_bytes=98_304, seed=seed,
        ),
    ))


# ----------------------------------------------------------------------
# Checks and rendering
# ----------------------------------------------------------------------


def check_state(record: dict) -> list[str]:
    """Schema + conservation assertions for the sweep and smoke runs."""
    failures: list[str] = []
    if record.get("schema") != SCHEMA:
        failures.append(f"schema is {record.get('schema')!r}, want {SCHEMA!r}")
        return failures

    points = {point["scheduler"]: point for point in record.get("points", ())}
    if not points:
        failures.append("no sweep points recorded")
        return failures

    roots = {name: point["final"]["root"] for name, point in points.items()}
    if len(set(roots.values())) != 1:
        failures.append(f"final roots differ across schedulers: {roots}")

    for name, point in points.items():
        final = point["final"]
        if not final["recount_ok"]:
            failures.append(f"{name}: cached aggregates diverge from recount")
        if not point["samples"]:
            failures.append(f"{name}: no trajectory samples")
            continue
        last = point["samples"][-1]
        if last["packet"] != point["config"]["packets"] - 1:
            failures.append(
                f"{name}: final trajectory sample is for packet "
                f"{last['packet']}, want {point['config']['packets'] - 1}")
        if final["offered"] != final["sealed_by_scheduler"] + final["pending_seals"]:
            failures.append(
                f"{name}: scheduler counters leak: offered {final['offered']} "
                f"!= sealed {final['sealed_by_scheduler']} + pending "
                f"{final['pending_seals']}")
        if name != "plain" and final["sealed_count"] == 0:
            failures.append(f"{name}: sealed nothing over the whole horizon")

    plain = points.get("plain")
    if plain is not None:
        bytes_trajectory = [s["live_bytes"] for s in plain["samples"]]
        if any(b < a for a, b in zip(bytes_trajectory, bytes_trajectory[1:])):
            failures.append("plain: live bytes are not monotone (commitment "
                            "deletes should be dwarfed by receipt growth)")

    rent_aware = points.get("rent-aware")
    if rent_aware is not None:
        budget_bytes = rent_aware["config"]["rent_budget_bytes"]
        # Bound: budget, plus one drain batch and the unconfirmed ack
        # window that cannot be sealed yet.
        slack = budget_bytes // 2 + 65_536
        peak = rent_aware["final"]["max_live_bytes"]
        if peak > budget_bytes + slack:
            failures.append(
                f"rent-aware: live bytes peaked at {peak}, above budget "
                f"{budget_bytes} + slack {slack}")
        if plain is not None:
            if plain["final"]["live_bytes"] < 3 * rent_aware["final"]["live_bytes"]:
                failures.append(
                    "plain trie did not outgrow the rent-aware one "
                    f"({plain['final']['live_bytes']} vs "
                    f"{rent_aware['final']['live_bytes']}): horizon too short?")
            if plain["final"]["rent_paid_lamports"] <= \
                    rent_aware["final"]["rent_paid_lamports"]:
                failures.append("plain trie paid no more rent than rent-aware")

    eager = points.get("eager")
    if eager is not None and plain is not None:
        if eager["samples"][-1]["proof_bytes"] > plain["samples"][-1]["proof_bytes"]:
            failures.append(
                "eager sealing made fresh-receipt proofs larger than the "
                "plain trie's")
    return failures


def render_state(record: dict) -> str:
    lines = [f"state sweep ({record['packets']} packets per scheduler)",
             f"  {'scheduler':<12} {'live bytes':>12} {'peak bytes':>12} "
             f"{'sealed':>9} {'rent (SOL)':>11} {'proof B':>8}"]
    for point in record["points"]:
        final = point["final"]
        proof_bytes = point["samples"][-1]["proof_bytes"] if point["samples"] else 0
        lines.append(
            f"  {point['scheduler']:<12} {final['live_bytes']:>12,} "
            f"{final['max_live_bytes']:>12,} {final['sealed_count']:>9,} "
            f"{final['rent_paid_lamports'] / 1e9:>11.4f} {proof_bytes:>8}")
    roots = {point["final"]["root"] for point in record["points"]}
    lines.append(f"  root fingerprint{'s' if len(roots) > 1 else ''}: "
                 + ", ".join(sorted(r[:16] for r in roots))
                 + (" (AGREE)" if len(roots) == 1 else " (DIVERGED)"))
    return "\n".join(lines)
