"""Throughput experiment: offered load vs. what the relayer sustains.

Sweeps offered packet rate across relayer batching configurations on
identical seeds and reports, per point, the sustained packets/sec,
end-to-end latency percentiles (from the observability layer's
``workload.e2e_latency`` histogram), and host fee cost per packet.

The interesting regime is scarce block space: with the default
2048-tx blocks the host never saturates, so the sweep lowers
``block_tx_limit`` until the per-packet transaction overhead is the
binding constraint.  There, coalescing RecvPacket messages into one
transaction (``RelayerConfig.batch_max_packets > 1``) multiplies how
many packets fit per block — the measured win of §V-style batching.

Everything is simulated time on fixed seeds, so every number this
module produces is deterministic across hosts and runs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.deployment import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.host.chain import HostConfig
from repro.ibc.identifiers import PortId
from repro.relayer.relayer import RelayerConfig
from repro.validators.profiles import simple_profiles
from repro.workload import WorkloadEngine, WorkloadSpec


@dataclass(frozen=True)
class ThroughputPointConfig:
    """One (offered load, batching config) measurement."""

    seed: int = 101
    mode: str = "open-constant"
    offered_pps: float = 1.0
    duration: float = 300.0
    drain_seconds: float = 2400.0
    channels: int = 2
    #: Relayer coalescing: 1 = classic packet-at-a-time relaying.
    batch_max_packets: int = 1
    batch_flush_seconds: float = 2.0
    #: Scarce block space makes per-packet tx overhead the bottleneck.
    block_tx_limit: int = 8
    delta_seconds: float = 120.0


def build_linked_deployment(config: ThroughputPointConfig):
    """A linked deployment plus its open channel list."""
    dep = Deployment(DeploymentConfig(
        seed=config.seed,
        guest=GuestConfig(delta_seconds=config.delta_seconds, min_stake_lamports=1),
        host=HostConfig(block_tx_limit=config.block_tx_limit),
        relayer=RelayerConfig(
            batch_max_packets=config.batch_max_packets,
            batch_flush_seconds=config.batch_flush_seconds,
        ),
        profiles=simple_profiles(4),
        tracing=True,
    ))
    channels = [dep.establish_link()]
    for _ in range(config.channels - 1):
        opened: dict = {}
        dep.relayer.open_channel(
            PortId("transfer"), PortId("transfer"),
            lambda g, c: opened.update(guest=g, cp=c),
        )
        deadline = dep.sim.now + 3_600.0
        while "cp" not in opened and dep.sim.now < deadline:
            dep.sim.step()
        if "cp" not in opened:
            raise RuntimeError("extra channel failed to open")
        channels.append((opened["guest"], opened["cp"]))
    return dep, channels


def run_throughput_point(config: ThroughputPointConfig, *,
                         collect_trace: bool = False) -> dict:
    """Measure one sweep point; returns a JSON-ready record.

    With ``collect_trace`` the record additionally carries the full
    ``TraceReport`` JSON under ``"trace"`` (the cluster runner uses this
    to merge per-shard traces); the default record is unchanged either
    way, so benchmark outputs stay byte-identical.
    """
    dep, channels = build_linked_deployment(config)
    engine = WorkloadEngine(dep, channels, WorkloadSpec(
        mode=config.mode,
        offered_pps=config.offered_pps,
        duration=config.duration,
        drain_seconds=config.drain_seconds,
    ))
    engine.run()
    return point_record(config, dep, engine, collect_trace=collect_trace)


def point_record(config: ThroughputPointConfig, dep, engine, *,
                 collect_trace: bool = False) -> dict:
    """The JSON record for a *finished* point.

    Shared by the serial path above and the cluster workers' resumable
    path (:mod:`repro.cluster.worker`), so a point measured either way
    produces byte-identical rows.
    """
    report = engine.report()
    trace = dep.trace_report()
    try:
        latency_summary = trace.histogram_summary("workload.e2e_latency").to_json()
    except (KeyError, ValueError):
        latency_summary = None  # nothing delivered at this point
    record = {
        "config": asdict(config),
        "offered_pps": config.offered_pps,
        "batch_max_packets": config.batch_max_packets,
        "sent": report.sent,
        "committed": report.committed,
        "delivered": report.delivered,
        "send_failures": report.send_failures,
        "outstanding": engine.outstanding(),
        "sustained_pps": report.sustained_pps,
        "latency_p50_s": report.latency_p50,
        "latency_p95_s": report.latency_p95,
        "latency_p99_s": report.latency_p99,
        "trace_latency": latency_summary,
        "relayer_fee_lamports": report.relayer_fee_lamports,
        "relayer_txs": report.relayer_txs,
        "fee_lamports_per_packet": report.fee_lamports_per_packet,
        "fee_usd_per_packet": report.fee_usd_per_packet,
    }
    if collect_trace:
        record["trace"] = trace.to_json()
    return record


def sweep_point_configs(
    seed: int = 101,
    offered_loads: tuple[float, ...] = (2.0, 8.0, 16.0),
    batch_sizes: tuple[int, ...] = (1, 32),
    duration: float = 300.0,
    base: ThroughputPointConfig = ThroughputPointConfig(),
) -> list[ThroughputPointConfig]:
    """The sweep's point configs, in canonical (load-major) order.

    The serial sweep and the cluster runner both build their work list
    here, so a sharded sweep measures exactly the points a serial one
    would — in the same output order.
    """
    configs = []
    for offered in offered_loads:
        for batch in batch_sizes:
            configs.append(replace(
                base, seed=seed, offered_pps=offered,
                batch_max_packets=batch, duration=duration,
            ))
    return configs


def run_throughput_sweep(
    seed: int = 101,
    offered_loads: tuple[float, ...] = (2.0, 8.0, 16.0),
    batch_sizes: tuple[int, ...] = (1, 32),
    duration: float = 300.0,
    base: ThroughputPointConfig = ThroughputPointConfig(),
) -> dict:
    """The full sweep: every offered load under every batching config.

    Same seed per column, so a batched and an unbatched point at the
    same load see identical traffic, congestion and validator draws.
    """
    points = [
        run_throughput_point(config)
        for config in sweep_point_configs(
            seed, offered_loads, batch_sizes, duration, base)
    ]
    return {
        "experiment": "throughput_sweep",
        "seed": seed,
        "offered_loads": list(offered_loads),
        "batch_sizes": list(batch_sizes),
        "duration_s": duration,
        "points": points,
    }


#: The CI smoke sweep's shape — shared with the cluster smoke path so
#: both measure the same points.
SMOKE_OFFERED_LOADS: tuple[float, ...] = (4.0, 12.0)
SMOKE_BATCH_SIZES: tuple[int, ...] = (1, 16)
SMOKE_DURATION = 60.0


def smoke_base_config() -> ThroughputPointConfig:
    return ThroughputPointConfig(duration=SMOKE_DURATION, drain_seconds=1_200.0)


def run_throughput_smoke(seed: int = 101) -> dict:
    """A scaled-down sweep for CI: two loads, one minute of sending.

    Small enough to run on every push, large enough that the batching
    win is already visible at the saturated point.
    """
    return run_throughput_sweep(
        seed=seed,
        offered_loads=SMOKE_OFFERED_LOADS,
        batch_sizes=SMOKE_BATCH_SIZES,
        duration=SMOKE_DURATION,
        base=smoke_base_config(),
    )


def check_smoke(results: dict) -> list[str]:
    """Regression checks over a smoke sweep; returns failure messages.

    The simulation is deterministic, but the thresholds still leave
    slack below the measured values so an intentional small retune of
    relayer defaults does not break CI.
    """
    failures: list[str] = []
    required = (
        "offered_pps", "batch_max_packets", "sent", "committed", "delivered",
        "send_failures", "sustained_pps", "latency_p50_s", "latency_p95_s",
        "latency_p99_s", "relayer_fee_lamports", "fee_lamports_per_packet",
    )
    for index, point in enumerate(results["points"]):
        missing = [key for key in required if key not in point]
        if missing:
            failures.append(f"point {index} missing keys: {missing}")
    if failures:
        return failures
    by_key = {(p["offered_pps"], p["batch_max_packets"]): p
              for p in results["points"]}
    for point in results["points"]:
        where = (f"offered={point['offered_pps']} "
                 f"batch={point['batch_max_packets']}")
        if point["send_failures"]:
            failures.append(f"{where}: {point['send_failures']} send failures")
        if point["delivered"] != point["sent"] or not point["sent"]:
            failures.append(
                f"{where}: delivered {point['delivered']} of {point['sent']}")
    top = max(results["offered_loads"])
    unbatched = by_key[(top, min(results["batch_sizes"]))]
    batched = by_key[(top, max(results["batch_sizes"]))]
    ratio = (batched["sustained_pps"] / unbatched["sustained_pps"]
             if unbatched["sustained_pps"] else 0.0)
    if ratio < 1.3:
        failures.append(
            f"batching speedup at offered={top} is {ratio:.2f}x (< 1.3x): "
            f"{batched['sustained_pps']:.3f} vs "
            f"{unbatched['sustained_pps']:.3f} pps")
    if batched["fee_lamports_per_packet"] >= unbatched["fee_lamports_per_packet"]:
        failures.append(
            f"batched fee/packet {batched['fee_lamports_per_packet']:.0f} "
            f"not below unbatched "
            f"{unbatched['fee_lamports_per_packet']:.0f}")
    # Absolute floor with ample slack under the measured ~6.5 pps: the
    # sim is deterministic, so only an intentional behaviour change can
    # move this, and a halving should fail loudly.
    if batched["sustained_pps"] < 4.0:
        failures.append(
            f"batched throughput at offered={top} fell to "
            f"{batched['sustained_pps']:.3f} pps (< 4.0 floor)")
    return failures


def render_sweep(results: dict) -> str:
    """A human-readable table of the sweep (for pytest -s output)."""
    lines = [
        "Throughput sweep (sustained pps / p95 latency s / fee per packet, lamports)",
        f"{'offered':>8} | " + " | ".join(
            f"batch={b:<3}" + " " * 18 for b in results["batch_sizes"]
        ),
    ]
    by_key = {
        (p["offered_pps"], p["batch_max_packets"]): p for p in results["points"]
    }
    for offered in results["offered_loads"]:
        cells = []
        for batch in results["batch_sizes"]:
            p = by_key[(offered, batch)]
            cells.append(
                f"{p['sustained_pps']:6.3f} / {p['latency_p95_s']:7.1f} / "
                f"{p['fee_lamports_per_packet']:9.0f}"
            )
        lines.append(f"{offered:>8.2f} | " + " | ".join(cells))
    return "\n".join(lines)
