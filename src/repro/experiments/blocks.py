"""Fig. 6: the guest inter-block interval distribution.

A multi-day run with paper-like traffic (tens of packets per day,
diurnally modulated): blocks are generated when the state root moves, or
after Δ = 1 h at the latest, so the interval distribution follows the
arrival process up to a hard cut-off at Δ — with roughly a quarter of the
blocks at the cut-off (empty blocks), and a handful of intervals *far*
beyond it caused by the Validator #1 outage stalling finalisation (§V-C).

The host runs with coarser 2-second slots here: every measured quantity
is minutes-to-hours scale, and the coarser slots make the multi-day
simulation ~5× cheaper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.counterparty.chain import CounterpartyConfig
from repro.deployment import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.host.chain import HostConfig
from repro.validators.profiles import deployment_profiles


@dataclass
class BlockIntervalConfig:
    """Parameters of the Fig. 6 run."""

    seed: int = 606
    duration: float = 4 * 24 * 3600.0
    delta_seconds: float = 3600.0
    #: Base mean gap between packets; calibrated so ~a quarter of gaps
    #: exceed Δ (P(gap > Δ) = exp(-Δ/gap) ≈ 0.25 → gap ≈ Δ/1.386).
    send_mean_gap: float = 2_600.0
    #: Diurnal modulation amplitude of the arrival rate.
    diurnal_amplitude: float = 0.6
    #: Validator #1's outage — the cause of the >Δ stragglers.
    outage_seconds: float = 36_000.0
    host_slot_seconds: float = 2.0
    #: Epoch length in slots (kept at the paper's ≈11 h wall time).
    epoch_length_slots: int = 20_000


@dataclass
class BlockIntervalResults:
    intervals: list[float] = field(default_factory=list)
    total_blocks: int = 0
    at_delta_cutoff: int = 0
    far_over_delta: int = 0

    def cutoff_share(self) -> float:
        return self.at_delta_cutoff / max(1, len(self.intervals))


class BlockIntervalRun:
    """Drives the Fig. 6 deployment."""

    def __init__(self, config: Optional[BlockIntervalConfig] = None) -> None:
        self.config = config or BlockIntervalConfig()
        cfg = self.config
        self.deployment = Deployment(DeploymentConfig(
            seed=cfg.seed,
            run_duration=cfg.duration,
            guest=GuestConfig(
                delta_seconds=cfg.delta_seconds,
                epoch_length_host_blocks=cfg.epoch_length_slots,
            ),
            host=HostConfig(slot_seconds=cfg.host_slot_seconds, retain_blocks=2_000),
            counterparty=CounterpartyConfig(retain_blocks=1_000),
            profiles=deployment_profiles(outage_seconds=cfg.outage_seconds),
            cranker_poll_seconds=5.0,
        ))
        self._rng = self.deployment.sim.rng.fork("fig6-workload")
        self._channel = None

    def _arrival_gap(self) -> float:
        """Poisson gap whose rate swings diurnally (thinning by scaling
        the mean with the time-of-day factor)."""
        cfg = self.config
        phase = 2.0 * math.pi * (self.deployment.sim.now % 86_400.0) / 86_400.0
        factor = 1.0 + cfg.diurnal_amplitude * math.sin(phase)
        mean = cfg.send_mean_gap / max(0.2, factor)
        return self._rng.expovariate(1.0 / mean)

    def _send(self) -> None:
        dep = self.deployment
        payload = dep.contract.transfer.make_payload(
            self._channel, "GUEST", 1, "alice", "bob",
        )
        dep.user_api.send_packet("transfer", str(self._channel), payload)
        if dep.sim.now + 1 < self.config.duration:
            dep.sim.schedule(self._arrival_gap(), self._send)

    def execute(self) -> BlockIntervalResults:
        dep = self.deployment
        cfg = self.config
        self._channel, _ = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 10 ** 12)
        dep.sim.schedule(self._arrival_gap(), self._send)
        dep.sim.run_until(cfg.duration)

        times = [b.header.timestamp for b in dep.contract.blocks]
        intervals = [b - a for a, b in zip(times, times[1:])]
        results = BlockIntervalResults(
            intervals=intervals,
            total_blocks=len(dep.contract.blocks),
        )
        # "At the cut-off": within cranker jitter above Δ.
        for interval in intervals:
            if cfg.delta_seconds <= interval < cfg.delta_seconds * 1.05:
                results.at_delta_cutoff += 1
            elif interval >= cfg.delta_seconds * 1.5:
                results.far_over_delta += 1
        return results
