"""Accountability smoke: a short equivocation storm, three seeds, run
twice each (docs/ACCOUNTABILITY.md).

The acceptance bar for accountable safety is sharper than the general
chaos soak's: **every** seeded conflicting finalisation must end in an
on-chain :class:`~repro.accountability.AccountabilityProof` slashing at
least one third of the epoch's voting power, the fault-free twin must
stay untouched, and the whole record must be a bit-reproducible pure
function of the seed — so each seed is executed twice and the two JSON
serialisations compared byte for byte.

``python -m repro.experiments accountability-smoke`` writes
``BENCH_accountability_smoke.json``; ``make accountability-smoke`` and
the CI job wrap that.
"""

from __future__ import annotations

import json

from repro.chaos import FaultPlan
from repro.experiments.chaos import (
    ChaosSoakConfig,
    check_chaos_smoke,
    run_chaos_soak,
)

DEFAULT_SEEDS = (505, 506, 507)


def equivocation_storm(config: ChaosSoakConfig) -> FaultPlan:
    """A storm focused on the slashing paths: both equivocation kinds,
    plus a host blackout and gossip loss timed to force the fisherman
    through its RetryPolicy/CircuitBreaker recovery stack while the
    evidence and the proof are in flight."""
    plan = FaultPlan(label="equivocation-storm")
    plan.add("gossip_drop", at=10.0, duration=45.0, probability=0.3)
    plan.add("validator_equivocate", at=30.0, magnitude=6,
             target=str(config.byzantine_validator))
    plan.add("validator_quorum_equivocate", at=35.0, duration=20.0,
             magnitude=5, target=str(config.byzantine_validator))
    # Opens just as the first evidence submissions go out.
    plan.add("host_blackout", at=32.0, duration=20.0)
    return plan.validate()


def smoke_config(seed: int) -> ChaosSoakConfig:
    """CI scale: under a minute of sending, long settle for retries,
    breaker probes and the post-slash epoch rotation."""
    return ChaosSoakConfig(
        seed=seed, offered_pps=4.0, duration=45.0,
        drain_seconds=1_800.0, channels=1,
    )


def _run_once(seed: int) -> dict:
    config = smoke_config(seed)
    return run_chaos_soak(config, plan=equivocation_storm(config))


def run_accountability_smoke(seeds: tuple[int, ...] = DEFAULT_SEEDS) -> dict:
    """Run the equivocation storm twice per seed; record outcomes and
    whether each seed reproduced bit-identically."""
    runs = []
    for seed in seeds:
        first = _run_once(seed)
        second = _run_once(seed)
        reproducible = (json.dumps(first, sort_keys=True)
                        == json.dumps(second, sort_keys=True))
        runs.append({"seed": seed, "reproducible": reproducible,
                     "record": first})
    return {
        "experiment": "accountability_smoke",
        "seeds": list(seeds),
        "runs": runs,
        "converged": all(run["record"]["converged"] and run["reproducible"]
                         for run in runs),
    }


def check_accountability_smoke(record: dict) -> list[str]:
    """Assertions for the CI job; returns failure messages."""
    failures: list[str] = []
    runs = record.get("runs", ())
    if len(runs) < 3:
        failures.append(f"need >= 3 seeds, got {len(runs)}")
    for run in runs:
        seed = run.get("seed")
        if not run.get("reproducible"):
            failures.append(f"seed {seed}: record not bit-reproducible")
        inner = run.get("record", {})
        for failure in check_chaos_smoke(inner):
            failures.append(f"seed {seed}: {failure}")
        accountability = inner.get("accountability", {})
        if accountability.get("slashes_attributed", 0) < 1:
            failures.append(f"seed {seed}: no attributed slashes")
        if accountability.get("seeded_equivocations", 0) < 1:
            failures.append(f"seed {seed}: storm seeded no equivocation")
    return sorted(set(failures))


def render_accountability(record: dict) -> str:
    """Human-readable summary (for the CLI and pytest -s)."""
    lines = [f"Accountability smoke (seeds {record['seeds']})"]
    for run in record["runs"]:
        inner = run["record"]
        accountability = inner["accountability"]
        lines.append(
            f"  seed {run['seed']}: "
            f"{accountability['slashes_attributed']} slash(es) / "
            f"{accountability['seeded_equivocations']} seeded, "
            f"{accountability['burned_total']} lamports burned, "
            f"{'reproducible' if run['reproducible'] else 'NON-DETERMINISTIC'}, "
            f"{'converged' if inner['converged'] else 'FAILED'}")
    verdict = "CONVERGED" if record["converged"] else "FAILED"
    lines.append(f"  verdict: {verdict}")
    return "\n".join(lines)
