"""Chaos soak: a seeded fault storm over a batched workload, with a
fault-free twin as the correctness oracle.

The storm combines every fault layer (docs/CHAOS.md) on one deployment:
a host RPC blackout, probabilistic transaction drops, a pinned fee
spike, a slot stall, gossip loss/partition, a crashed validator, an
equivocating validator (prosecuted by the fisherman, slashed, and
rotated out of the quorum), a colluding quorum that double-finalises a
fork (answered by an on-chain AccountabilityProof slashing the whole
double-signing intersection, docs/ACCOUNTABILITY.md), and
relayer/cranker crashes — while an open-loop ICS-20 workload keeps
offering packets at a constant rate.

Convergence is judged three ways:

1. **Invariants** on the chaos run itself: token conservation per denom
   (escrowed == circulating vouchers), exactly-once delivery (every
   committed send received exactly once, nothing outstanding), the
   offender slashed to zero stake and excluded from the current epoch.
2. **Differential check**: a twin deployment with the same seed and the
   same workload but *no* injector must end with a bit-identical token
   ledger (the injector draws from a ``derived_seed`` stream, so the
   twin's randomness is unperturbed — any divergence is a real
   double-spend or lost packet, not noise).
3. **Determinism**: the whole record — including fault recovery
   latencies — is a pure function of (seed, plan), so two soak runs
   with the same config serialise to byte-identical JSON.

``python -m repro.experiments chaos-soak`` writes ``BENCH_chaos.json``;
``chaos-smoke`` is the scaled-down asserting variant CI runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.chaos import ChaosInjector, FaultPlan
from repro.deployment import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.host.chain import HostConfig
from repro.ibc.identifiers import PortId
from repro.relayer.relayer import RelayerConfig
from repro.validators.profiles import simple_profiles
from repro.workload import WorkloadEngine, WorkloadSpec


@dataclass(frozen=True)
class ChaosSoakConfig:
    """One chaos soak measurement."""

    seed: int = 505
    #: Offered load and sending window; the acceptance storm wants
    #: ``offered_pps * duration >= 2000`` packets.
    offered_pps: float = 8.0
    duration: float = 300.0
    #: Post-storm settling time: long enough for retries, breaker
    #: probes, the relayer restart and the epoch rotation to finish.
    drain_seconds: float = 3_600.0
    channels: int = 2
    batch_max_packets: int = 16
    batch_flush_seconds: float = 2.0
    #: Short epochs so the post-slash quorum recomputation happens
    #: inside the run (default mainnet epochs are ~12 h).
    epoch_length_host_blocks: int = 750
    delta_seconds: float = 120.0
    validators: int = 5
    #: Index of the validator the storm makes equivocate.
    byzantine_validator: int = 1
    #: Index of the validator the storm crashes.
    crashed_validator: int = 2


def storm_plan(config: ChaosSoakConfig) -> FaultPlan:
    """The acceptance-criteria fault storm, all layers at once.

    Times are relative to arming (i.e. to workload start).  Windows are
    staggered so each recovery path is exercised both alone and while
    another fault is still active.
    """
    plan = FaultPlan(label="storm")
    # Host layer.
    plan.add("host_blackout", at=40.0, duration=25.0)
    plan.add("host_tx_drop", at=90.0, duration=30.0, probability=0.25)
    plan.add("host_fee_spike", at=130.0, duration=40.0, magnitude=0.95)
    plan.add("host_slot_stall", at=200.0, duration=8.0)
    # Network layer.  The partition silences the fisherman while the
    # equivocation claims first circulate; the repeats outlive it.
    plan.add("gossip_partition", at=95.0, duration=20.0, target="fisherman")
    plan.add("gossip_drop", at=60.0, duration=60.0, probability=0.4)
    plan.add("gossip_delay", at=60.0, duration=60.0,
             probability=0.5, magnitude=3.0)
    plan.add("gossip_duplicate", at=150.0, duration=40.0,
             probability=0.3, magnitude=2)
    # Actor layer.
    plan.add("validator_crash", at=80.0, duration=90.0,
             target=str(config.crashed_validator))
    plan.add("validator_equivocate", at=100.0, duration=40.0,
             target=str(config.byzantine_validator), magnitude=6)
    plan.add("validator_bad_signature", at=120.0, duration=10.0,
             target=str(config.byzantine_validator), magnitude=3)
    # Accountable-safety worst case: a whole quorum double-finalises.
    # The target pins the byzantine validator into the colluding set so
    # the two slashing paths overlap instead of ejecting every
    # candidate between them.
    plan.add("validator_quorum_equivocate", at=110.0, duration=30.0,
             target=str(config.byzantine_validator), magnitude=5)
    plan.add("relayer_crash", at=170.0, duration=20.0)
    plan.add("cranker_crash", at=230.0, duration=15.0)
    return plan.validate()


def build_chaos_deployment(config: ChaosSoakConfig):
    """A linked deployment (fisherman on, tracing on) plus its channels."""
    dep = Deployment(DeploymentConfig(
        seed=config.seed,
        guest=GuestConfig(
            delta_seconds=config.delta_seconds,
            epoch_length_host_blocks=config.epoch_length_host_blocks,
            min_stake_lamports=1,
        ),
        host=HostConfig(),
        relayer=RelayerConfig(
            batch_max_packets=config.batch_max_packets,
            batch_flush_seconds=config.batch_flush_seconds,
        ),
        profiles=simple_profiles(config.validators),
        with_fisherman=True,
        tracing=True,
    ))
    channels = [dep.establish_link()]
    for _ in range(config.channels - 1):
        opened: dict = {}
        dep.relayer.open_channel(
            PortId("transfer"), PortId("transfer"),
            lambda g, c: opened.update(guest=g, cp=c),
        )
        deadline = dep.sim.now + 3_600.0
        while "cp" not in opened and dep.sim.now < deadline:
            dep.sim.step()
        if "cp" not in opened:
            raise RuntimeError("extra channel failed to open")
        channels.append((opened["guest"], opened["cp"]))
    return dep, channels


def ledger_fingerprint(dep) -> str:
    """Hash of the final token ledger: every non-zero bank balance on
    both chains, sorted.  Deliberately excludes host lamports (fees,
    tips, slashing and validator rewards legitimately differ under
    faults) and IBC store internals (unreturned acks after a relayer
    crash are benign: a success ack is a no-op on the sender's bank).
    """
    entries = []
    for side, bank in (("cp", dep.counterparty.bank),
                       ("guest", dep.contract.bank)):
        for (owner, denom), amount in bank._balances.items():
            if amount:
                entries.append([side, owner, denom, amount])
    entries.sort()
    digest = hashlib.sha256(json.dumps(entries).encode()).hexdigest()
    return digest


def _conservation(dep, channels, denom: str) -> list[str]:
    """Escrowed-on-cp == circulating-vouchers-on-guest, per channel."""
    failures = []
    for guest_chan, cp_chan in channels:
        escrow = dep.counterparty.transfer.escrow_address(cp_chan)
        voucher = dep.contract.transfer.voucher_denom(guest_chan, denom)
        escrowed = dep.counterparty.bank.balance(escrow, denom)
        circulating = dep.contract.bank.total_supply(voucher)
        if escrowed != circulating:
            failures.append(
                f"conservation broken on {cp_chan}: escrowed {escrowed} "
                f"!= circulating vouchers {circulating}")
    return failures


def _run_workload(dep, channels, config: ChaosSoakConfig) -> WorkloadEngine:
    engine = WorkloadEngine(dep, channels, WorkloadSpec(
        # Constant arrivals: the send schedule is congestion-independent,
        # so a chaos fee spike cannot perturb the twin comparison.
        mode="open-constant",
        offered_pps=config.offered_pps,
        duration=config.duration,
        drain_seconds=config.drain_seconds,
    ))
    engine.run()
    return engine


def run_chaos_soak(config: ChaosSoakConfig = ChaosSoakConfig(),
                   plan: FaultPlan | None = None) -> dict:
    """The full experiment: storm run, twin run, verdicts, JSON record."""
    plan = plan if plan is not None else storm_plan(config)

    # -- chaos run ------------------------------------------------------
    dep, channels = build_chaos_deployment(config)
    injector = ChaosInjector(dep, plan).arm()
    engine = _run_workload(dep, channels, config)
    trace = dep.trace_report()

    # -- fault-free twin: same seed, same workload, no injector ---------
    twin, twin_channels = build_chaos_deployment(config)
    twin_engine = _run_workload(twin, twin_channels, config)

    offender = dep.validator_keypair(config.byzantine_validator).public_key
    invariants: dict[str, bool | str] = {}
    failures: list[str] = []

    failures += _conservation(dep, channels, "PICA")
    invariants["conservation"] = not failures

    exactly_once = (
        engine.delivered == engine.committed
        and engine.outstanding() == 0
        and engine.send_failures == 0
        and dep.counterparty.ibc.counters.packets_acknowledged
        == dep.contract.ibc.counters.packets_received
        == engine.committed
    )
    invariants["exactly_once"] = exactly_once
    if not exactly_once:
        failures.append(
            f"exactly-once broken: committed {engine.committed}, "
            f"delivered {engine.delivered}, "
            f"outstanding {engine.outstanding()}, "
            f"received {dep.contract.ibc.counters.packets_received}, "
            f"acked {dep.counterparty.ibc.counters.packets_acknowledged}")

    slashed = dep.contract.staking.stake_of(offender) == 0
    invariants["offender_slashed"] = slashed
    if not slashed:
        failures.append("equivocating validator kept its stake")
    epoch = dep.contract.current_epoch
    excluded = epoch is not None and not epoch.is_validator(offender)
    invariants["offender_out_of_quorum"] = excluded
    if not excluded:
        failures.append("equivocating validator still in the current epoch")

    # Accountable safety: every seeded quorum equivocation must end in
    # an on-chain AccountabilityProof whose offender set carries >= 1/3
    # of the epoch's voting power; the fault-free twin must never slash.
    slashes = list(dep.contract.accountability_slashes)
    seeded_equivocations = len(injector._quorum_offenders)
    attributed = (
        len(slashes) >= seeded_equivocations
        and all(rec["offender_stake"] * 3 >= rec["total_stake"]
                for rec in slashes)
    )
    invariants["safety_violation_attributed"] = attributed
    if not attributed:
        failures.append(
            f"safety violations not attributed: {seeded_equivocations} "
            f"seeded, {len(slashes)} slashed on chain")
    twin_untouched = (
        not twin.contract.accountability_slashes
        and not (twin.fisherman and twin.fisherman.accountability_reports)
    )
    invariants["twin_accountability_untouched"] = twin_untouched
    if not twin_untouched:
        failures.append("fault-free twin recorded accountability slashes")

    fingerprint = ledger_fingerprint(dep)
    twin_fingerprint = ledger_fingerprint(twin)
    invariants["differential_match"] = fingerprint == twin_fingerprint
    if fingerprint != twin_fingerprint:
        failures.append(
            f"ledger diverged from the fault-free twin: "
            f"{fingerprint[:16]} != {twin_fingerprint[:16]}")
    if twin_engine.delivered != engine.delivered:
        failures.append(
            f"twin delivered {twin_engine.delivered} packets, "
            f"chaos run {engine.delivered}")

    recovery = {
        name.removeprefix("chaos.recovery_seconds."):
            trace.histogram_summary(name).to_json()
        for name in sorted(trace.histograms)
        if name.startswith("chaos.recovery_seconds.")
    }
    chaos_counters = {
        name: count for name, count in sorted(trace.counters.items())
        if name.startswith(("chaos.", "relay.", "fisherman.", "gossip.",
                            "guest.accountability."))
    }
    report = engine.report()
    return {
        "experiment": "chaos_soak",
        "config": asdict(config),
        "plan": plan.to_dict(),
        "faults": injector.summary()["faults"],
        "workload": {
            "sent": report.sent,
            "committed": report.committed,
            "delivered": report.delivered,
            "send_failures": report.send_failures,
            "outstanding": engine.outstanding(),
            "latency_p50_s": report.latency_p50,
            "latency_p95_s": report.latency_p95,
            "latency_p99_s": report.latency_p99,
            "twin_delivered": twin_engine.delivered,
        },
        "recovery_seconds": recovery,
        "redelivery": {
            "redeliveries": dep.relayer.metrics.redeliveries,
            "retries": dep.relayer.metrics.retries,
            "crashes": dep.relayer.metrics.crashes,
        },
        "counters": chaos_counters,
        "accountability": {
            "seeded_equivocations": seeded_equivocations,
            "slashes_attributed": len(slashes),
            "slashes": slashes,
            "burned_total": dep.contract.burned_total,
            "proof_submissions": [
                {"proof_id": report.proof_id, "height": report.height,
                 "offender_count": report.offender_count,
                 "accepted": report.accepted, "error": report.error}
                for report in (dep.fisherman.accountability_reports
                               if dep.fisherman else ())
            ],
            "twin_slashes": len(twin.contract.accountability_slashes),
        },
        "fingerprints": {"chaos": fingerprint, "fault_free": twin_fingerprint},
        "invariants": invariants,
        "failures": failures,
        "converged": not failures,
    }


def smoke_config(seed: int = 505) -> ChaosSoakConfig:
    """CI scale: same storm shape, one minute of sending.

    The plan's last fault starts at t=230 s, so the sending window plus
    drain still covers the whole storm and its recoveries.
    """
    return ChaosSoakConfig(
        seed=seed, offered_pps=4.0, duration=60.0,
        drain_seconds=2_400.0, channels=1, epoch_length_host_blocks=750,
    )


def run_chaos_smoke(seed: int = 505) -> dict:
    return run_chaos_soak(smoke_config(seed))


def check_chaos_smoke(record: dict) -> list[str]:
    """Assertions for the CI smoke run; returns failure messages."""
    failures = list(record.get("failures", ()))
    if not record.get("converged"):
        failures.append("record not converged")
    invariants = record.get("invariants", {})
    for name in ("conservation", "exactly_once", "offender_slashed",
                 "offender_out_of_quorum", "differential_match",
                 "safety_violation_attributed",
                 "twin_accountability_untouched"):
        if not invariants.get(name):
            failures.append(f"invariant {name} failed")
    accountability = record.get("accountability")
    if not isinstance(accountability, dict):
        failures.append("record missing the accountability section")
    else:
        if not isinstance(accountability.get("slashes_attributed"), int):
            failures.append("accountability.slashes_attributed missing")
        elif accountability["slashes_attributed"] < 1:
            failures.append("storm produced no attributed slashes")
        for rec in accountability.get("slashes", ()):
            if rec["offender_stake"] * 3 < rec["total_stake"]:
                failures.append(
                    f"slash at height {rec['height']} attributed "
                    f"< 1/3 of voting power")
        if accountability.get("twin_slashes"):
            failures.append("fault-free twin was slashed")
    workload = record.get("workload", {})
    if workload.get("delivered", 0) <= 0:
        failures.append("no packets delivered through the storm")
    faults = record.get("faults", ())
    stuck = [fault["kind"] for fault in faults if not fault["began"]]
    if stuck:
        failures.append(f"faults never fired: {stuck}")
    unrecovered = [
        fault["kind"] for fault in faults
        if fault["recovered_after"] is None or fault["recovered_after"] < 0
    ]
    if unrecovered:
        failures.append(f"faults never recovered: {unrecovered}")
    return sorted(set(failures))


def render_chaos(record: dict) -> str:
    """Human-readable summary (for the CLI and pytest -s)."""
    workload = record["workload"]
    lines = [
        "Chaos soak "
        f"(seed {record['config']['seed']}, "
        f"{len(record['plan']['specs'])} faults)",
        f"  packets: {workload['delivered']}/{workload['committed']} "
        f"delivered, p50 {workload['latency_p50_s']:.1f} s, "
        f"p99 {workload['latency_p99_s']:.1f} s",
        f"  redeliveries {record['redelivery']['redeliveries']}, "
        f"retries {record['redelivery']['retries']}, "
        f"relayer crashes {record['redelivery']['crashes']}",
    ]
    for kind, summary in record["recovery_seconds"].items():
        lines.append(
            f"  recovery {kind}: p50 {summary['p50']:.1f} s, "
            f"p99 {summary['p99']:.1f} s")
    accountability = record.get("accountability", {})
    if accountability:
        lines.append(
            f"  accountability: {accountability['slashes_attributed']} "
            f"slash(es) for {accountability['seeded_equivocations']} seeded "
            f"equivocation(s), {accountability['burned_total']} "
            f"lamports burned")
    verdicts = ", ".join(
        f"{name}={'ok' if value else 'FAIL'}"
        for name, value in record["invariants"].items())
    lines.append(f"  invariants: {verdicts}")
    lines.append(f"  verdict: {'CONVERGED' if record['converged'] else 'FAILED'}")
    return "\n".join(lines)
