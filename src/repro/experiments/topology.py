"""Topology sweep: host-resource partitioning and multi-hop latency.

Two questions the fabric layer raises that the single-guest evaluation
cannot answer:

1. **Partitioning** — when N independent guests share one host, do
   host compute and fees partition cleanly per guest (no cross-guest
   bleed), and how does each guest's share scale with N?  The sweep
   builds a hub-and-spoke fabric for N ∈ {1, 2, 4, 8}, runs identical
   per-guest transfer workloads, and attributes every lamport of fees
   (via per-guest cohort accounts) and every compute unit (via
   ``GuestContract.compute_consumed``) to its guest.

2. **Multi-hop latency** — how does a routed transfer's end-to-end
   latency decompose per hop?  A 4-chain line (cp-a → g0 → g1 → cp-b)
   carries transfers over the 2-intermediate route; each forwarding
   hop's receive time comes from the guests' ``PacketReceived`` host
   events, the final delivery from the destination counterparty's
   ICS-20 callback.

``python -m repro.experiments topology-sweep`` writes
``BENCH_topology.json``; ``topology-smoke`` is the scaled-down
asserting variant CI runs (guests {1, 2} plus the 2-hop route).
Schema notes live in docs/FABRIC.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric import TopologyConfig, build_fabric
from repro.ibc.identifiers import ChannelId, PortId

SCHEMA = "topology-sweep/v1"


@dataclass
class TopologySweepConfig:
    """Scale knobs for the sweep (the smoke variant shrinks them all)."""

    seed: int = 2024
    guest_counts: tuple[int, ...] = (1, 2, 4, 8)
    #: Counterparty → guest transfers per guest, plus one return
    #: transfer per guest (exercising both fee paths).
    transfers_per_guest: int = 8
    transfer_amount: int = 1_000
    #: Simulated drain budget per sweep point after the last send.
    settle_seconds: float = 2_400.0
    multihop: bool = True
    multihop_transfers: int = 4
    #: Simulated budget for one routed transfer to land end to end.
    multihop_settle_seconds: float = 1_200.0


# ----------------------------------------------------------------------
# Part 1: the star sweep (fee/compute partitioning)
# ----------------------------------------------------------------------

def _cohort_lamports(dep, name: str) -> int:
    return sum(dep.host.accounts.balance(address)
               for address in dep.cohort_addresses(name))


def run_star_point(num_guests: int, config: TopologySweepConfig) -> dict:
    """One sweep point: N guests on one host, identical workloads."""
    dep = build_fabric(TopologyConfig.star(num_guests,
                                           seed=config.seed + num_guests))
    cp = dep.counterparties["picasso-1"]
    cp.bank.mint("sweep-sender", "uatom",
                 10 * num_guests * config.transfers_per_guest
                 * config.transfer_amount)
    checker = dep.conservation_checker()
    established_at = dep.sim.now

    fees_before = {name: _cohort_lamports(dep, name) for name in dep.guests}
    compute_before = {name: g.contract.compute_consumed
                      for name, g in dep.guests.items()}

    voucher: dict[str, str] = {}
    for name in dep.guests:
        link = dep.link_between(name, "picasso-1")
        cp_channel = ChannelId(link.channels["picasso-1"])
        voucher[name] = f"transfer/{link.channels[name]}/uatom"
        for _ in range(config.transfers_per_guest):
            def send(cp_channel=cp_channel, user=str(dep.user[name])):
                payload = cp.transfer.make_payload(
                    cp_channel, "uatom", config.transfer_amount,
                    sender="sweep-sender", receiver=user,
                )
                return cp.ibc.send_packet(
                    PortId("transfer"), cp_channel, payload, 0.0)
            cp.submit(send)

    def all_arrived() -> bool:
        return all(
            g.contract.bank.balance(str(dep.user[name]), voucher[name])
            >= config.transfers_per_guest * config.transfer_amount
            for name, g in dep.guests.items()
        )

    deadline = dep.sim.now + config.settle_seconds
    while not all_arrived() and dep.sim.now < deadline:
        dep.run_for(30.0)
    delivered = {
        name: g.contract.bank.balance(str(dep.user[name]), voucher[name])
        // config.transfer_amount
        for name, g in dep.guests.items()
    }

    # One return transfer per guest: user sends half a transfer's worth
    # of voucher back, exercising the guest-side SEND_PACKET fee path.
    returned = config.transfer_amount // 2
    for name, g in dep.guests.items():
        link = dep.link_between(name, "picasso-1")
        channel = ChannelId(link.channels[name])
        payload = g.contract.transfer.make_payload(
            channel, voucher[name], returned,
            sender=str(dep.user[name]), receiver=f"{name}-return",
        )
        dep.user_api[name].send_packet("transfer", str(channel), payload, 0.0)

    def all_returned() -> bool:
        return all(
            cp.bank.balance(f"{name}-return", "uatom") >= returned
            for name in dep.guests
        )

    deadline = dep.sim.now + config.settle_seconds
    while not all_returned() and dep.sim.now < deadline:
        dep.run_for(30.0)
    dep.run_for(60.0)  # let trailing acks seal

    fees = {name: fees_before[name] - _cohort_lamports(dep, name)
            for name in dep.guests}
    compute = {name: g.contract.compute_consumed - compute_before[name]
               for name, g in dep.guests.items()}
    total_fees = sum(fees.values()) or 1
    total_compute = sum(compute.values()) or 1
    report = checker.check()
    return {
        "guests": num_guests,
        "establish_seconds": established_at,
        "traffic_seconds": dep.sim.now - established_at,
        "delivered": delivered,
        "returned": {
            name: cp.bank.balance(f"{name}-return", "uatom")
            for name in dep.guests
        },
        "expected_per_guest": config.transfers_per_guest,
        "expected_return": returned,
        "fees_lamports": fees,
        "fee_share": {name: fee / total_fees for name, fee in fees.items()},
        "compute_units": compute,
        "compute_share": {name: units / total_compute
                          for name, units in compute.items()},
        "conservation_ok": report.ok,
        "conservation_failures": report.failures,
    }


# ----------------------------------------------------------------------
# Part 2: multi-hop latency decomposition
# ----------------------------------------------------------------------

def run_multihop(config: TopologySweepConfig) -> dict:
    """Route transfers cp-a → g0 → g1 → cp-b; time every hop."""
    dep = build_fabric(TopologyConfig.chain_of(
        ("cp-a", "g0", "g1", "cp-b"), seed=config.seed))
    cp_a = dep.counterparties["cp-a"]
    cp_b = dep.counterparties["cp-b"]
    cp_a.bank.mint("alice", "uatom",
                   10 * config.multihop_transfers * config.transfer_amount)
    checker = dep.conservation_checker()

    # Hop receive times.  Guests announce deliveries as PacketReceived
    # host events; the destination counterparty has no host presence, so
    # time its ICS-20 callback directly.
    recv_times: dict[str, list[float]] = {"g0": [], "g1": [], "cp-b": []}

    def on_guest_recv(event) -> None:
        name = event.payload.get("guest")
        if name in recv_times and event.payload.get("ack_success"):
            recv_times[name].append(event.time)

    dep.host.subscribe("PacketReceived", on_guest_recv)
    inner_recv = cp_b.transfer.on_recv

    def timed_recv(packet):
        ack = inner_recv(packet)
        if ack.success:
            recv_times["cp-b"].append(dep.sim.now)
        return ack

    cp_b.transfer.on_recv = timed_recv

    transfers = []
    for index in range(config.multihop_transfers):
        sent_at = dep.sim.now
        marks = {name: len(times) for name, times in recv_times.items()}
        dep.send_along("path", "alice", "bob", "uatom",
                       config.transfer_amount)
        deadline = dep.sim.now + config.multihop_settle_seconds
        while (len(recv_times["cp-b"]) == marks["cp-b"]
               and dep.sim.now < deadline):
            dep.run_for(10.0)
        stages = {}
        previous = sent_at
        for name in ("g0", "g1", "cp-b"):
            fresh = recv_times[name][marks[name]:]
            if not fresh:
                stages = None
                break
            stages[name] = fresh[0] - previous
            previous = fresh[0]
        transfers.append({
            "index": index,
            "sent_at": sent_at,
            "delivered": stages is not None,
            "per_hop_seconds": stages,
            "total_seconds": (previous - sent_at) if stages else None,
        })
        dep.run_for(30.0)  # space sends out; let acks unwind back

    dep.run_for(120.0)
    delivered = sum(1 for t in transfers if t["delivered"])
    report = checker.check()
    g0 = dep.guests["g0"].contract
    g1 = dep.guests["g1"].contract
    return {
        "route": ["cp-a", "g0", "g1", "cp-b"],
        "hops": 3,
        "transfers": transfers,
        "delivered": delivered,
        "expected": config.multihop_transfers,
        "received_amount": sum(
            amount for (address, _), amount in cp_b.bank.balances().items()
            if address == "bob"
        ),
        "forward_counters": {
            "g0": {"started": g0.forward.forwards_started,
                   "settled": g0.forward.forwards_settled,
                   "unwinds": g0.forward.unwinds},
            "g1": {"started": g1.forward.forwards_started,
                   "settled": g1.forward.forwards_settled,
                   "unwinds": g1.forward.unwinds},
        },
        "conservation_ok": report.ok,
        "conservation_failures": report.failures,
    }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def run_topology_sweep(config: TopologySweepConfig | None = None) -> dict:
    config = config or TopologySweepConfig()
    record = {
        "schema": SCHEMA,
        "seed": config.seed,
        "guest_counts": list(config.guest_counts),
        "transfers_per_guest": config.transfers_per_guest,
        "points": [run_star_point(n, config) for n in config.guest_counts],
    }
    if config.multihop:
        record["multihop"] = run_multihop(config)
    return record


def run_topology_smoke(seed: int = 2024) -> dict:
    """The CI-scale sweep: guests {1, 2} and the 2-hop route."""
    return run_topology_sweep(TopologySweepConfig(
        seed=seed, guest_counts=(1, 2), transfers_per_guest=4,
        settle_seconds=1_200.0, multihop_transfers=2,
    ))


def check_topology(record: dict) -> list[str]:
    """Assertions both the smoke job and the full sweep must satisfy."""
    failures: list[str] = []
    if record.get("schema") != SCHEMA:
        failures.append(f"schema is {record.get('schema')!r}, want {SCHEMA!r}")
    for point in record.get("points", ()):
        n = point["guests"]
        for name, count in point["delivered"].items():
            if count < point["expected_per_guest"]:
                failures.append(
                    f"N={n}: {name} delivered {count}/"
                    f"{point['expected_per_guest']} transfers")
        for name, amount in point["returned"].items():
            if amount < point["expected_return"]:
                failures.append(
                    f"N={n}: {name} return transfer landed {amount}/"
                    f"{point['expected_return']}")
        if not point["conservation_ok"]:
            failures.append(
                f"N={n}: conservation violated: "
                f"{point['conservation_failures'][:3]}")
        share_sum = sum(point["fee_share"].values())
        if point["fee_share"] and abs(share_sum - 1.0) > 1e-9:
            failures.append(f"N={n}: fee shares sum to {share_sum}")
        for name, share in point["fee_share"].items():
            if share <= 0.0:
                failures.append(f"N={n}: {name} burnt no fees ({share})")
        for name, units in point["compute_units"].items():
            if units <= 0:
                failures.append(f"N={n}: {name} consumed no compute")
    multihop = record.get("multihop")
    if multihop is not None:
        if multihop["delivered"] < multihop["expected"]:
            failures.append(
                f"multihop: {multihop['delivered']}/{multihop['expected']} "
                "routed transfers landed")
        for transfer in multihop["transfers"]:
            if not transfer["delivered"]:
                continue
            for hop, seconds in transfer["per_hop_seconds"].items():
                if seconds <= 0.0:
                    failures.append(
                        f"multihop transfer {transfer['index']}: hop {hop} "
                        f"latency {seconds} not positive")
        if not multihop["conservation_ok"]:
            failures.append(
                f"multihop: conservation violated: "
                f"{multihop['conservation_failures'][:3]}")
    return failures


def render_topology(record: dict) -> str:
    """Human-readable summary block for the CLI."""
    lines = ["topology sweep (host partitioning across N guests)",
             f"  {'N':>2}  {'guest':<10} {'fee share':>10} "
             f"{'compute share':>14} {'delivered':>10}"]
    for point in record["points"]:
        for name in sorted(point["fee_share"]):
            lines.append(
                f"  {point['guests']:>2}  {name:<10} "
                f"{point['fee_share'][name]:>10.3f} "
                f"{point['compute_share'][name]:>14.3f} "
                f"{point['delivered'][name]:>10}")
    multihop = record.get("multihop")
    if multihop is not None:
        lines.append("")
        lines.append(f"multi-hop route {' -> '.join(multihop['route'])}: "
                     f"{multihop['delivered']}/{multihop['expected']} landed")
        for transfer in multihop["transfers"]:
            if transfer["delivered"]:
                hops = ", ".join(f"{hop} {seconds:.1f}s" for hop, seconds
                                 in transfer["per_hop_seconds"].items())
                lines.append(f"  transfer {transfer['index']}: "
                             f"{transfer['total_seconds']:.1f}s ({hops})")
            else:
                lines.append(f"  transfer {transfer['index']}: NOT DELIVERED")
    return "\n".join(lines)
