"""§V-D: storage sizing, rent deposit, and the sealing ablation.

Three results:

* the 10 MiB guest state account needs a rent-exemption deposit of
  ≈ 14.6 k USD, recoverable on deletion;
* 10 MiB of sealable-trie storage holds **over 72 thousand key-value
  pairs** (the paper's figure), measured by actually filling a trie and
  counting accounted bytes;
* the ablation behind the design: processing a long stream of packets
  with sealing keeps live storage bounded by the in-flight window, while
  the plain (never-sealing) trie grows without bound.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.trie.trie import SealableTrie
from repro.units import MAX_ACCOUNT_BYTES, lamports_to_usd, rent_exempt_deposit


@dataclass
class StorageResults:
    account_bytes: int = MAX_ACCOUNT_BYTES
    deposit_lamports: int = 0
    deposit_usd: float = 0.0
    pairs_in_account: int = 0
    bytes_per_pair: float = 0.0


def measure_capacity(value_bytes: int = 40, sample: int = 20_000) -> StorageResults:
    """How many key-value pairs fit the 10 MiB account (§V-D).

    Fills a trie with ``sample`` hashed 32-byte keys (IBC commitments are
    32-byte values; receipts smaller — ``value_bytes`` approximates the
    mix) and extrapolates the measured bytes-per-pair to 10 MiB.
    """
    trie = SealableTrie()
    for index in range(sample):
        key = hashlib.sha256(b"capacity" + index.to_bytes(8, "big")).digest()
        trie.set(key, bytes(value_bytes))
    per_pair = trie.storage_bytes() / sample
    deposit = rent_exempt_deposit(MAX_ACCOUNT_BYTES)
    return StorageResults(
        deposit_lamports=deposit,
        deposit_usd=lamports_to_usd(deposit),
        pairs_in_account=int(MAX_ACCOUNT_BYTES / per_pair),
        bytes_per_pair=per_pair,
    )


@dataclass
class SealingAblationResults:
    """Live-storage trajectories with and without sealing (§III-A)."""

    packets_processed: int = 0
    live_window: int = 0
    sealed_bytes_trajectory: list[int] = field(default_factory=list)
    plain_bytes_trajectory: list[int] = field(default_factory=list)

    @property
    def sealed_final(self) -> int:
        return self.sealed_bytes_trajectory[-1]

    @property
    def plain_final(self) -> int:
        return self.plain_bytes_trajectory[-1]

    @property
    def growth_ratio(self) -> float:
        """Plain-trie final size over sealable final size.

        An empty trajectory has no ratio (the run recorded nothing) and
        a zero sealed size means unbounded advantage — both were
        silently masked by a ``max(1, ...)`` guard before; now the
        first raises and the second is an explicit ``inf``.
        """
        if not self.sealed_bytes_trajectory or not self.plain_bytes_trajectory:
            raise ValueError(
                "growth_ratio undefined: no trajectory samples recorded"
            )
        if self.sealed_final == 0:
            return float("inf")
        return self.plain_final / self.sealed_final


def sealing_ablation(packets: int = 5_000, live_window: int = 64,
                     sample_every: int = 100) -> SealingAblationResults:
    """Replay a receipt stream through both trie disciplines.

    Each packet writes a receipt under a monotone sequenced key; the
    sealable trie seals entries that fall behind the in-flight window
    (the lagged rule), the plain trie keeps everything.
    """
    prefix = hashlib.sha256(b"receipts/ports/transfer/channels/channel-0").digest()[:24]

    def key(seq: int) -> bytes:
        return prefix + seq.to_bytes(8, "big")

    sealed_trie, plain_trie = SealableTrie(), SealableTrie()
    results = SealingAblationResults(packets_processed=packets, live_window=live_window)
    for seq in range(packets):
        value = hashlib.sha256(b"receipt" + seq.to_bytes(8, "big")).digest()
        sealed_trie.set(key(seq), value)
        plain_trie.set(key(seq), value)
        behind = seq - live_window
        if behind >= 0:
            sealed_trie.seal(key(behind))
        # Sample on the interval AND at the last packet, so the final
        # state is always recorded even when ``packets`` is not a
        # multiple of ``sample_every``.
        if seq % sample_every == 0 or seq == packets - 1:
            results.sealed_bytes_trajectory.append(sealed_trie.storage_bytes())
            results.plain_bytes_trajectory.append(plain_trie.storage_bytes())
    return results
