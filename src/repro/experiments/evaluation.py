"""The main evaluation run: the September-2024 deployment, scaled.

One simulated deployment with the Table I validator profiles, a
guest→counterparty transfer workload whose senders split 17 % / 83 %
between priority fees and block bundles (§V-A), and a counterparty→guest
workload that forces chunked light-client updates (§V-A/B).  The run
produces every per-packet and per-update series that Figs. 2–5, Table I
and the ReceivePacket paragraph report.

Scaling note (documented in EXPERIMENTS.md): the paper measured one
month of mainnet traffic; the default here simulates 24 hours with
proportionally faster workloads and a proportionally shorter Validator
#1 outage, which preserves every distribution shape while keeping the
run tractable.  Pass a longer ``duration`` for closer absolute counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.counterparty.chain import CounterpartyConfig
from repro.deployment import Deployment, DeploymentConfig
from repro.guest.api import DeliveryResult, LcUpdateResult
from repro.guest.config import GuestConfig
from repro.host.chain import HostConfig
from repro.host.events import HostEvent
from repro.host.fees import PriorityFee
from repro.host.transaction import TxReceipt
from repro.metrics.stats import Summary, correlation, summarize
from repro.observability import TraceReport
from repro.units import MAX_COMPUTE_UNITS, lamports_to_cents, lamports_to_usd
from repro.validators.profiles import deployment_profiles


@dataclass
class EvaluationConfig:
    """Parameters of the evaluation deployment."""

    seed: int = 2024
    #: Simulated duration (the paper's month, scaled; see module docs).
    duration: float = 24 * 3600.0
    #: Mean gap between guest-side sends (Poisson arrivals).
    send_mean_gap: float = 420.0
    #: Mean gap between counterparty-side sends (each one drives a
    #: chunked light-client update on the guest).
    cp_send_mean_gap: float = 780.0
    #: Share of senders using priority fees; the rest use bundles (§V-A
    #: reports 17 % / 83 %).
    priority_share: float = 0.17
    #: Validator #1's outage, scaled from the mainnet ~10 h (§V-C).
    outage_seconds: float = 2_400.0
    #: ICS-20 payload size in bytes.
    payload_bytes: int = 150
    #: Synthetic entries pre-loading the counterparty store (proof depth).
    counterparty_preload: int = 3_000
    #: The fixed fee parameters §V-A reports.
    priority_cu_price: int = 5_000_000       # → ≈ 1.40 USD per send
    bundle_tip_lamports: int = 15_090_000    # → ≈ 3.02 USD per send
    #: Epoch length in host slots, scaled from the mainnet 100 000 slots
    #: (≈ 11 h of a month) to the same share of the simulated duration.
    epoch_length_slots: int = 4_500
    #: Record tracing spans/counters during the run (docs/OBSERVABILITY.md).
    #: On by default: the latency-decomposition and send-cost benches
    #: read their phase breakdowns straight from the trace report.
    tracing: bool = True


@dataclass
class SendRecord:
    """One Fig. 2 / Fig. 3 sample."""

    sequence: int
    strategy: str                   # "priority" | "bundle"
    committed_time: Optional[float] = None
    finalised_time: Optional[float] = None
    fee_paid: Optional[int] = None
    #: When the guest block containing this packet was generated — the
    #: boundary between "waiting for a block" and "waiting for quorum".
    block_generated_time: Optional[float] = None

    @property
    def wait_for_block(self) -> Optional[float]:
        if self.committed_time is None or self.block_generated_time is None:
            return None
        return self.block_generated_time - self.committed_time

    @property
    def wait_for_quorum(self) -> Optional[float]:
        if self.block_generated_time is None or self.finalised_time is None:
            return None
        return self.finalised_time - self.block_generated_time

    @property
    def latency(self) -> Optional[float]:
        if self.committed_time is None or self.finalised_time is None:
            return None
        return self.finalised_time - self.committed_time

    @property
    def cost_usd(self) -> Optional[float]:
        return lamports_to_usd(self.fee_paid) if self.fee_paid is not None else None


@dataclass
class ValidatorRow:
    """One row of the reproduced Table I."""

    index: int
    signatures: int
    cost_cents: float
    latency: Optional[Summary]


@dataclass
class EvaluationResults:
    """Everything the Fig. 2–5 / Table I benches read."""

    sends: list[SendRecord] = field(default_factory=list)
    lc_updates: list[LcUpdateResult] = field(default_factory=list)
    deliveries: list[DeliveryResult] = field(default_factory=list)
    validator_rows: list[ValidatorRow] = field(default_factory=list)
    block_intervals: list[float] = field(default_factory=list)
    silent_validators: int = 0
    cost_latency_correlation: float = 0.0
    #: Observability snapshot of the run (empty if tracing was off).
    trace: Optional[TraceReport] = None

    def send_latencies(self) -> list[float]:
        return [r.latency for r in self.sends if r.latency is not None]

    def send_costs_usd(self) -> list[float]:
        return [r.cost_usd for r in self.sends if r.cost_usd is not None]


class EvaluationRun:
    """Builds, drives and harvests the evaluation deployment."""

    def __init__(self, config: Optional[EvaluationConfig] = None) -> None:
        self.config = config or EvaluationConfig()
        cfg = self.config
        profiles = deployment_profiles(outage_seconds=cfg.outage_seconds)
        self.deployment = Deployment(DeploymentConfig(
            seed=cfg.seed,
            run_duration=cfg.duration,
            guest=GuestConfig(epoch_length_host_blocks=cfg.epoch_length_slots),
            host=HostConfig(retain_blocks=4_000),
            counterparty=CounterpartyConfig(
                store_preload_entries=cfg.counterparty_preload,
                retain_blocks=2_000,
            ),
            profiles=profiles,
            tracing=cfg.tracing,
        ))
        self._rng = self.deployment.sim.rng.fork("evaluation-workload")
        self._send_queue: list[SendRecord] = []
        self._sends_by_seq: dict[int, SendRecord] = {}
        self.results = EvaluationResults()
        self._guest_channel = None
        self._cp_channel = None

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------

    def _next_gap(self, mean: float) -> float:
        return self._rng.expovariate(1.0 / mean)

    def _do_guest_send(self) -> None:
        dep = self.deployment
        cfg = self.config
        payload = dep.contract.transfer.make_payload(
            self._guest_channel, "GUEST", 10, "alice", "bob",
        )
        strategy = "priority" if self._rng.bernoulli(cfg.priority_share) else "bundle"
        record = SendRecord(sequence=-1, strategy=strategy)
        self._send_queue.append(record)

        def on_receipt(receipt: TxReceipt, record=record, strategy=strategy) -> None:
            if receipt.success:
                record.fee_paid = receipt.fee_paid
                # Fig. 3's two fee clusters, as trace histograms.
                dep.sim.trace.observe(f"send.fee.{strategy}", receipt.fee_paid)

        if strategy == "priority":
            dep.user_api.send_packet(
                "transfer", str(self._guest_channel), payload,
                fee=PriorityFee(compute_unit_price=cfg.priority_cu_price),
                compute_budget=MAX_COMPUTE_UNITS,
                on_result=on_receipt,
            )
        else:
            dep.user_api.send_packet_via_bundle(
                "transfer", str(self._guest_channel), payload,
                tip_lamports=cfg.bundle_tip_lamports,
                on_result=on_receipt,
            )
        if dep.sim.now + 1 < cfg.duration:
            dep.sim.schedule(self._next_gap(cfg.send_mean_gap), self._do_guest_send)

    def _do_cp_send(self) -> None:
        dep = self.deployment
        cfg = self.config

        def send() -> None:
            payload = dep.counterparty.transfer.make_payload(
                self._cp_channel, "PICA", 5, "carol", "dave",
            )
            dep.counterparty.ibc.send_packet(
                dep.counterparty.transfer_port, self._cp_channel, payload, 0.0,
            )

        dep.counterparty.submit(send)
        if dep.sim.now + 1 < cfg.duration:
            dep.sim.schedule(self._next_gap(cfg.cp_send_mean_gap), self._do_cp_send)

    # ------------------------------------------------------------------
    # Event capture
    # ------------------------------------------------------------------

    def _on_packet_committed(self, event: HostEvent) -> None:
        # Sequences are assigned in execution order, which is exactly the
        # order PacketCommitted events are emitted in.
        for record in self._send_queue:
            if record.committed_time is None:
                record.sequence = event.payload["sequence"]
                record.committed_time = event.time
                self._sends_by_seq[record.sequence] = record
                return

    def _on_finalised(self, event: HostEvent) -> None:
        for packet in event.payload["packets"]:
            record = self._sends_by_seq.get(packet.sequence)
            if record is not None and record.finalised_time is None:
                record.finalised_time = event.time

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self) -> EvaluationResults:
        dep = self.deployment
        cfg = self.config
        self._guest_channel, self._cp_channel = dep.establish_link()

        dep.contract.bank.mint("alice", "GUEST", 10 ** 12)
        dep.counterparty.bank.mint("carol", "PICA", 10 ** 12)
        dep.host.subscribe("PacketCommitted", self._on_packet_committed)
        dep.host.subscribe("FinalisedBlock", self._on_finalised)

        dep.sim.schedule(self._next_gap(cfg.send_mean_gap), self._do_guest_send)
        dep.sim.schedule(self._next_gap(cfg.cp_send_mean_gap), self._do_cp_send)
        dep.sim.run_until(cfg.duration)
        # Grace period: let in-flight finalisations and relays complete.
        dep.sim.run_until(cfg.duration + 1_200.0)

        self._harvest()
        self.results.trace = dep.trace_report()
        return self.results

    def _harvest(self) -> None:
        dep = self.deployment
        results = self.results
        results.sends = [r for r in self._send_queue if r.committed_time is not None]
        # Latency decomposition: attribute each packet to the guest block
        # that carried it.
        generated_at = {}
        for block in dep.contract.blocks:
            for packet in dep.contract.packets_in_block(block.height):
                generated_at[packet.sequence] = block.generated_at
        for record in results.sends:
            record.block_generated_time = generated_at.get(record.sequence)
        results.lc_updates = list(dep.relayer.metrics.lc_updates)
        results.deliveries = list(dep.relayer.metrics.deliveries)

        costs, latencies = [], []
        for node in sorted(dep.validators, key=lambda n: n.profile.index):
            if node.profile.silent:
                results.silent_validators += 1
                continue
            records = node.successful_records()
            row = ValidatorRow(
                index=node.profile.index,
                signatures=len(records),
                cost_cents=(
                    lamports_to_cents(round(
                        sum(r.fee_paid for r in records) / len(records)
                    )) if records else 0.0
                ),
                latency=summarize(node.latencies()) if records else None,
            )
            results.validator_rows.append(row)
            if records:
                costs.append(row.cost_cents)
                latencies.append(row.latency.median)
        if len(costs) >= 2:
            results.cost_latency_correlation = correlation(costs, latencies)

        times = [b.header.timestamp for b in dep.contract.blocks]
        results.block_intervals = [b - a for a, b in zip(times, times[1:])]
