"""ASCII figures: histograms and CDFs for the terminal.

The paper's evaluation figures are distribution plots; the benchmark
harness renders the reproduced series in the same *shape* with plain
text, so a side-by-side eyeball against the published figures needs no
plotting stack.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

_BAR = "#"


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000:
        return f"{value:,.0f}"
    if magnitude >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def histogram(values: Sequence[float], bins: int = 12, width: int = 40,
              unit: str = "", title: str = "",
              log_counts: bool = False) -> str:
    """A horizontal-bar histogram.

    ``log_counts`` compresses the bar lengths logarithmically — useful
    when one bin dominates (e.g. Fig. 6's Δ cut-off spike) but the tail
    still matters.
    """
    if not values:
        raise ValueError("histogram of empty data")
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0
    span = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span))
        counts[index] += 1

    def bar_length(count: int) -> int:
        if count == 0:
            return 0
        if log_counts:
            peak = math.log1p(max(counts))
            return max(1, round(width * math.log1p(count) / peak))
        return max(1, round(width * count / max(counts)))

    lines = [title] if title else []
    label_width = max(
        len(f"{_format_value(low + i * span)}-{_format_value(low + (i + 1) * span)}{unit}")
        for i in range(bins)
    )
    for index, count in enumerate(counts):
        lower = _format_value(low + index * span)
        upper = _format_value(low + (index + 1) * span)
        label = f"{lower}-{upper}{unit}".rjust(label_width)
        lines.append(f"  {label} |{_BAR * bar_length(count):<{width}} {count}")
    return "\n".join(lines)


def cdf(values: Sequence[float], points: int = 10, width: int = 40,
        unit: str = "", title: str = "",
        markers: Optional[Sequence[float]] = None) -> str:
    """A text CDF: cumulative share of values below evenly spaced levels,
    plus optional marker rows at the thresholds a figure calls out."""
    if not values:
        raise ValueError("cdf of empty data")
    data = sorted(values)
    low, high = data[0], data[-1]
    if high == low:
        high = low + 1.0

    levels = [low + (high - low) * i / (points - 1) for i in range(points)]
    for marker in markers or ():
        if low <= marker <= high:
            levels.append(marker)
    levels = sorted(set(levels))

    import bisect
    lines = [title] if title else []
    label_width = max(len(f"<= {_format_value(level)}{unit}") for level in levels)
    for level in levels:
        share = bisect.bisect_right(data, level) / len(data)
        bar = _BAR * round(width * share)
        flag = "  <-" if markers and any(abs(level - m) < 1e-9 for m in markers) else ""
        label = f"<= {_format_value(level)}{unit}".rjust(label_width)
        lines.append(f"  {label} |{bar:<{width}} {share * 100:5.1f}%{flag}")
    return "\n".join(lines)
