"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that output aligned and readable without pulling in a
plotting stack.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Monospace table with right-aligned numeric-looking cells."""
    columns = len(headers)
    widths = [len(header) for header in headers]
    for row in rows:
        for index in range(columns):
            cell = row[index] if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))

    def render(cells: Sequence[str]) -> str:
        padded = []
        for index in range(columns):
            cell = cells[index] if index < len(cells) else ""
            padded.append(cell.rjust(widths[index]))
        return "  ".join(padded)

    lines = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def format_distribution(values: Sequence[float], unit: str = "",
                        thresholds: Sequence[float] = ()) -> str:
    """One-line CDF readout: key quantiles plus requested thresholds
    (e.g. "95 % < 21 s" to compare against a figure's shape)."""
    from repro.metrics.stats import fraction_below, summarize
    summary = summarize(values)
    parts = [
        f"n={summary.count}",
        f"min={summary.minimum:.1f}{unit}",
        f"p50={summary.median:.1f}{unit}",
        f"p75={summary.q3:.1f}{unit}",
        f"max={summary.maximum:.1f}{unit}",
        f"mean={summary.mean:.1f}{unit}",
    ]
    for threshold in thresholds:
        share = fraction_below(values, threshold) * 100.0
        parts.append(f"{share:.1f}%<{threshold:g}{unit}")
    return "  ".join(parts)
