"""Measurement utilities: summaries, distributions and report tables."""

from repro.metrics.figures import cdf, histogram
from repro.metrics.stats import Summary, percentile, summarize
from repro.metrics.table import format_table, format_distribution

__all__ = ["Summary", "cdf", "format_distribution", "format_table",
           "histogram", "percentile", "summarize"]
