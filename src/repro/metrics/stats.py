"""Summary statistics in the exact shape Table I reports.

Quantiles use the same convention as the paper's table (linear
interpolation between order statistics); ``Summary`` carries min / Q1 /
median / Q3 / max / mean / standard deviation so experiment output can
be compared to the published rows column by column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile over pre-sorted values."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


@dataclass(frozen=True)
class Summary:
    """The Table I statistics block."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    std: float

    def row(self, digits: int = 1) -> list[str]:
        """Formatted [min, Q1, med, Q3, max, mean, std] cells."""
        return [
            f"{value:.{digits}f}"
            for value in (self.minimum, self.q1, self.median,
                          self.q3, self.maximum, self.mean, self.std)
        ]


def summarize(values: Iterable[float]) -> Summary:
    """Full summary of a sample (population standard deviation, like a
    complete month of observations)."""
    data = sorted(values)
    if not data:
        raise ValueError("summarize needs at least one value")
    count = len(data)
    mean = sum(data) / count
    variance = sum((value - mean) ** 2 for value in data) / count
    return Summary(
        count=count,
        minimum=data[0],
        q1=percentile(data, 0.25),
        median=percentile(data, 0.5),
        q3=percentile(data, 0.75),
        maximum=data[-1],
        mean=mean,
        std=math.sqrt(variance),
    )


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Share of values strictly below ``threshold`` (CDF point)."""
    if not values:
        raise ValueError("fraction_below of empty data")
    return sum(1 for value in values if value < threshold) / len(values)


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation (for §V-C's cost↔latency check)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("correlation needs two equal-length samples")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
