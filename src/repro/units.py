"""Units, currencies and the published constants of the deployment.

All on-chain amounts in this library are integer **lamports** (the smallest
Solana denomination).  Conversions to SOL or US dollars happen only at the
metrics/reporting boundary, using the paper's assumption of 200 USD per SOL
(§V: "assuming a SOL price of 200 USD").

The host-runtime constants come straight from the paper (§IV) and the
Solana documentation it cites:

* transaction size limit: **1232 bytes**
* compute budget: **1.4 million compute units**
* default heap limit: **32 KiB**
* maximum account size: **10 MiB**
* base fee: **5000 lamports per signature** (0.1 cents at 200 USD/SOL,
  matching §V-B's "0.1 cents per transaction and additional 0.1 cents per
  signature")
"""

from __future__ import annotations

# --- currency ---------------------------------------------------------------

LAMPORTS_PER_SOL: int = 1_000_000_000
USD_PER_SOL: float = 200.0
MICROLAMPORTS_PER_LAMPORT: int = 1_000_000

# --- host runtime limits (§IV) ----------------------------------------------

MAX_TRANSACTION_BYTES: int = 1232
MAX_COMPUTE_UNITS: int = 1_400_000
MAX_HEAP_BYTES: int = 32 * 1024
MAX_ACCOUNT_BYTES: int = 10 * 1024 * 1024

# --- fees -------------------------------------------------------------------

BASE_FEE_LAMPORTS_PER_SIGNATURE: int = 5_000

# Rent: Solana charges a refundable deposit proportional to account size.
# Calibrated so a 10 MiB account costs ~14.6 k USD (§V-D): the real-network
# rate is ~6.96 lamports per byte-year, exempt at two years.
RENT_LAMPORTS_PER_BYTE_YEAR: float = 3_480.0
RENT_EXEMPTION_YEARS: float = 2.0
ACCOUNT_STORAGE_OVERHEAD_BYTES: int = 128

# --- cadence ----------------------------------------------------------------

HOST_SLOT_SECONDS: float = 0.4
COUNTERPARTY_BLOCK_SECONDS: float = 6.0

# --- guest deployment configuration (§IV) -----------------------------------

DELTA_SECONDS: float = 3600.0
MIN_EPOCH_HOST_BLOCKS: int = 100_000
STAKE_UNBONDING_SECONDS: float = 7 * 24 * 3600.0

SECONDS_PER_YEAR: float = 365.25 * 24 * 3600.0


def lamports_to_sol(lamports: int) -> float:
    """Convert integer lamports to a float amount of SOL."""
    return lamports / LAMPORTS_PER_SOL


def sol_to_lamports(sol: float) -> int:
    """Convert SOL to integer lamports (rounded to nearest lamport)."""
    return round(sol * LAMPORTS_PER_SOL)


def lamports_to_usd(lamports: int) -> float:
    """Convert lamports to US dollars at the paper's 200 USD/SOL rate."""
    return lamports_to_sol(lamports) * USD_PER_SOL


def usd_to_lamports(usd: float) -> int:
    """Convert US dollars to lamports at the paper's 200 USD/SOL rate."""
    return sol_to_lamports(usd / USD_PER_SOL)


def lamports_to_cents(lamports: int) -> float:
    """Convert lamports to US cents (the unit used in Table I and §V-B)."""
    return lamports_to_usd(lamports) * 100.0


def rent_exempt_deposit(data_bytes: int) -> int:
    """Refundable deposit required to keep an account of ``data_bytes`` alive.

    Mirrors Solana's rent-exemption formula: two years of rent on the data
    plus a fixed per-account overhead.  For a 10 MiB account this comes to
    roughly 73 SOL ≈ 14.6 k USD, the figure reported in §V-D.
    """
    total_bytes = data_bytes + ACCOUNT_STORAGE_OVERHEAD_BYTES
    return round(total_bytes * RENT_LAMPORTS_PER_BYTE_YEAR * RENT_EXEMPTION_YEARS)
