"""Seeded randomness and the latency distributions the actors draw from.

All stochastic behaviour flows through one :class:`Rng` per simulation
(a thin wrapper over :class:`random.Random` with the distribution helpers
the validator/relayer models need), so a single seed pins down the whole
run.

The log-normal fitting helper converts the quantile statistics published
in Table I of the paper (median and Q3 of each validator's signing
latency) into distribution parameters, which is how the behaviour
profiles are calibrated.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence

#: z-value of the 75th percentile of the standard normal distribution.
_Z_Q3 = 0.6744897501960817


def lognormal_from_quantiles(median: float, q3: float) -> tuple[float, float]:
    """Return ``(mu, sigma)`` of a log-normal with the given median and Q3.

    For ``X ~ LogNormal(mu, sigma)``: ``median = exp(mu)`` and
    ``Q3 = exp(mu + z_{0.75} * sigma)``.
    """
    if median <= 0 or q3 <= median:
        raise ValueError("need 0 < median < q3 to fit a log-normal")
    mu = math.log(median)
    sigma = (math.log(q3) - mu) / _Z_Q3
    return mu, sigma


class Rng:
    """Seeded random source with the helpers simulations need."""

    def __init__(self, seed: int) -> None:
        self._random = random.Random(seed)

    def fork(self, label: str) -> "Rng":
        """Derive an independent, reproducible sub-stream.

        Actors fork their own streams so adding an actor never perturbs
        the draws of the others.  The label is mixed in with SHA-256 (not
        the built-in ``hash``, which is salted per process and would
        break cross-run determinism).
        """
        label_bits = int.from_bytes(
            hashlib.sha256(label.encode("utf-8")).digest()[:8], "big",
        )
        return Rng(self._random.randrange(1 << 62) ^ (label_bits & ((1 << 62) - 1)))

    def derived_seed(self, label: str) -> int:
        """A reproducible sub-seed that does **not** advance this stream.

        Unlike :meth:`fork`, reading the current state consumes no draw,
        so callers can mint a seed for an out-of-band generator (e.g. the
        host's per-hour congestion-spike schedule) without perturbing any
        draw the rest of the simulation would have made.
        """
        preimage = repr(self._random.getstate()).encode("utf-8") \
            + b"\x00" + label.encode("utf-8")
        return int.from_bytes(hashlib.sha256(preimage).digest()[:8], "big")

    # -- primitives ------------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq: Sequence):
        return self._random.choice(seq)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def bytes(self, count: int) -> bytes:
        return self._random.randbytes(count)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time with the given rate (1/s)."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    # -- modelling helpers -------------------------------------------------

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def lognormal_quantiles(self, median: float, q3: float) -> float:
        """Draw from the log-normal fitted to ``(median, q3)``."""
        mu, sigma = lognormal_from_quantiles(median, q3)
        return self._random.lognormvariate(mu, sigma)

    def bernoulli(self, probability: float) -> bool:
        return self._random.random() < probability

    def poisson(self, mean: float) -> int:
        """Poisson sample via inversion (mean small in our workloads)."""
        if mean < 0:
            raise ValueError("poisson mean must be non-negative")
        if mean > 700:
            # Normal approximation keeps exp() in range for huge means.
            return max(0, round(self._random.gauss(mean, math.sqrt(mean))))
        level = math.exp(-mean)
        k = 0
        product = self._random.random()
        while product > level:
            k += 1
            product *= self._random.random()
        return k
