"""The event loop: a priority queue of timestamped callbacks.

Design notes:

* Time is a float of seconds since simulation start.
* Events at equal times fire in scheduling order (a monotonically
  increasing tie-breaker), so runs are deterministic.
* Events are *coalesced by timestamp*: the heap holds one bucket per
  distinct time carrying every callback scheduled for it, so a slot
  boundary where a whole block's worth of transactions fires costs one
  heap operation instead of one per actor.  Within a bucket, callbacks
  run in append (= scheduling) order, and a second bucket for the same
  time opened after the first started draining sorts after it by its
  first sequence number — both exactly the order the per-event heap
  produced, so dispatch order is bit-identical to the uncoalesced
  kernel.
* Cancellation is lazy: a cancelled handle stays in its bucket but is
  skipped when reached.  The kernel counts resident tombstones and
  compacts the queue once they outnumber the live entries, so
  cancel-heavy workloads (relayer timeout churn) keep the queue — and
  every subsequent push/pop — proportional to the *live* event count.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

from repro.errors import SimulationError
from repro.observability.trace import NULL_TRACER
from repro.sim.rng import Rng

# Heap entries are mutable ``[time, first_sequence, handles]`` buckets.
# ``first_sequence`` is the sequence number of the bucket's first event;
# it is strictly increasing across buckets, so comparison never reaches
# the handles list.  Appending to ``handles`` never reorders the heap
# because the two sort keys are immutable once pushed.


class EventHandle:
    """A scheduled callback; keep it to :meth:`cancel` the event."""

    __slots__ = ("callback", "args", "cancelled", "in_queue", "_sim")

    def __init__(self, callback: Callable[..., None], args: tuple[Any, ...],
                 sim: "Simulation" = None) -> None:
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: True while the handle is still resident in some bucket.
        self.in_queue = False
        self._sim = sim

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.in_queue and self._sim is not None:
            self._sim._note_cancelled()


class Simulation:
    """Deterministic discrete-event simulation loop."""

    def __init__(self, seed: int = 0, tracer=None) -> None:
        self.now: float = 0.0
        self.rng = Rng(seed)
        #: Observability hook (docs/OBSERVABILITY.md).  Disabled by
        #: default: the shared NullTracer makes every probe a no-op.
        self.trace = tracer if tracer is not None else NULL_TRACER
        self.trace.bind(lambda: self.now)
        self._queue: list[list] = []
        #: time -> its open (still-appendable) bucket in the heap.
        self._open_buckets: dict[float, list] = {}
        #: The bucket currently being drained, and the index of the next
        #: handle to dispatch in it.  A bucket leaves ``_open_buckets``
        #: the moment it starts draining, so callbacks that schedule more
        #: work for the *same* time open a fresh bucket that fires after
        #: the remainder of this one — preserving sequence order.
        self._draining: list | None = None
        self._drain_index = 0
        self._sequence = 0
        self._dispatched = 0
        #: Handles resident across all buckets (including tombstones).
        self._resident = 0
        #: Cancelled handles still resident (tombstones).
        self._cancelled = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before now ({self.now})")
        handle = EventHandle(callback, args, self)
        handle.in_queue = True
        self._sequence += 1
        self._resident += 1
        bucket = self._open_buckets.get(time)
        if bucket is None:
            bucket = [time, self._sequence, [handle]]
            self._open_buckets[time] = bucket
            heapq.heappush(self._queue, bucket)
        else:
            bucket[2].append(handle)
        self.trace.count("sim.events.scheduled")
        return handle

    # ------------------------------------------------------------------
    # Lazy-cancellation bookkeeping
    # ------------------------------------------------------------------

    #: Compaction is skipped below this many tombstones: rebuilding a
    #: tiny queue costs more than it saves.
    _COMPACT_MIN_TOMBSTONES = 64

    def _note_cancelled(self) -> None:
        """A resident handle was cancelled; compact if tombstones now
        dominate the queue."""
        self._cancelled += 1
        if (self._cancelled >= self._COMPACT_MIN_TOMBSTONES
                and self._cancelled * 2 > self._resident):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors.

        The bucket being drained (if any) is left alone — its indices
        are live — so its tombstones are skipped at dispatch instead;
        there is at most one such bucket.
        """
        removed = 0
        live: list[list] = []
        for bucket in self._queue:
            handles = bucket[2]
            survivors = [h for h in handles if not h.cancelled]
            if len(survivors) != len(handles):
                for handle in handles:
                    if handle.cancelled:
                        handle.in_queue = False
                removed += len(handles) - len(survivors)
                bucket[2] = survivors
            if survivors:
                live.append(bucket)
        heapq.heapify(live)
        self._queue = live
        self._open_buckets = {bucket[0]: bucket for bucket in live}
        self._cancelled -= removed
        self._resident -= removed
        if removed:
            self.trace.count("sim.events.cancelled", removed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _next_handle(self, until: float | None) -> EventHandle | None:
        """Pop the next live handle at time ≤ ``until`` (sets ``now``)."""
        while True:
            bucket = self._draining
            if bucket is not None:
                handles = bucket[2]
                index = self._drain_index
                if index < len(handles):
                    self._drain_index = index + 1
                    handle = handles[index]
                    handle.in_queue = False
                    self._resident -= 1
                    if handle.cancelled:
                        self._cancelled -= 1
                        self.trace.count("sim.events.cancelled")
                        continue
                    self.now = bucket[0]
                    return handle
                self._draining = None
            if not self._queue:
                return None
            head = self._queue[0]
            if until is not None and head[0] > until:
                return None
            heapq.heappop(self._queue)
            del self._open_buckets[head[0]]
            self._draining = head
            self._drain_index = 0

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        handle = self._next_handle(None)
        if handle is None:
            return False
        self._dispatched += 1
        self.trace.count("sim.events.dispatched")
        handle.callback(*handle.args)
        return True

    def run_until(self, time: float) -> None:
        """Run every event scheduled strictly before or at ``time``, then
        advance the clock to ``time``."""
        if time < self.now:
            raise SimulationError("run_until cannot move time backwards")
        while True:
            handle = self._next_handle(time)
            if handle is None:
                break
            self._dispatched += 1
            self.trace.count("sim.events.dispatched")
            handle.callback(*handle.args)
        self.now = time

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        for _ in range(max_events):
            if not self.step():
                return
        # The budget is spent; that is only an error if work remains
        # (draining in *exactly* ``max_events`` events is a success).
        if self.pending_events() == 0:
            return
        raise SimulationError(f"simulation exceeded {max_events} events")

    def pending_events(self) -> int:
        """Live (non-cancelled) events in the queue — O(1)."""
        return self._resident - self._cancelled

    def iter_pending(self) -> Iterator[tuple[float, EventHandle]]:
        """Yield ``(time, handle)`` for every resident live event.

        Order is unspecified (heap order across buckets); checkpointing
        uses this to validate queued continuations without reaching into
        the bucket layout.
        """
        draining = self._draining
        if draining is not None:
            for handle in draining[2][self._drain_index:]:
                if not handle.cancelled:
                    yield draining[0], handle
        for bucket in self._queue:
            for handle in bucket[2]:
                if not handle.cancelled:
                    yield bucket[0], handle

    def dispatched_events(self) -> int:
        """Events executed so far (checkpoint/replay audits align on
        this count)."""
        return self._dispatched
