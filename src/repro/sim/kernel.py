"""The event loop: a priority queue of timestamped callbacks.

Design notes:

* Time is a float of seconds since simulation start.
* Events at equal times fire in scheduling order (a monotonically
  increasing tie-breaker), so runs are deterministic.
* Cancellation is lazy: a cancelled handle stays in the heap but is
  skipped when popped.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.observability.trace import NULL_TRACER
from repro.sim.rng import Rng

# Heap entries are plain ``(time, sequence, handle)`` tuples.  The
# sequence tie-breaker is strictly increasing, so comparison never
# reaches the handle — and tuples avoid the dataclass-comparison
# overhead that dominated the scheduler under high packet rates.


class EventHandle:
    """A scheduled callback; keep it to :meth:`cancel` the event."""

    __slots__ = ("callback", "args", "cancelled")

    def __init__(self, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulation:
    """Deterministic discrete-event simulation loop."""

    def __init__(self, seed: int = 0, tracer=None) -> None:
        self.now: float = 0.0
        self.rng = Rng(seed)
        #: Observability hook (docs/OBSERVABILITY.md).  Disabled by
        #: default: the shared NullTracer makes every probe a no-op.
        self.trace = tracer if tracer is not None else NULL_TRACER
        self.trace.bind(lambda: self.now)
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._sequence = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before now ({self.now})")
        handle = EventHandle(callback, args)
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, handle))
        self.trace.count("sim.events.scheduled")
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            time, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                self.trace.count("sim.events.cancelled")
                continue
            self.now = time
            self.trace.count("sim.events.dispatched")
            handle.callback(*handle.args)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run every event scheduled strictly before or at ``time``, then
        advance the clock to ``time``."""
        if time < self.now:
            raise SimulationError("run_until cannot move time backwards")
        while self._queue:
            event_time = self._queue[0][0]
            if event_time > time:
                break
            _, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                self.trace.count("sim.events.cancelled")
                continue
            self.now = event_time
            self.trace.count("sim.events.dispatched")
            handle.callback(*handle.args)
        self.now = time

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(f"simulation exceeded {max_events} events")

    def pending_events(self) -> int:
        return sum(1 for _, _, handle in self._queue if not handle.cancelled)
