"""The event loop: a priority queue of timestamped callbacks.

Design notes:

* Time is a float of seconds since simulation start.
* Events at equal times fire in scheduling order (a monotonically
  increasing tie-breaker), so runs are deterministic.
* Cancellation is lazy: a cancelled handle stays in the heap but is
  skipped when popped.  The kernel counts resident tombstones and
  compacts the heap once they outnumber the live entries, so
  cancel-heavy workloads (relayer timeout churn) keep the queue — and
  every subsequent push/pop — proportional to the *live* event count.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.observability.trace import NULL_TRACER
from repro.sim.rng import Rng

# Heap entries are plain ``(time, sequence, handle)`` tuples.  The
# sequence tie-breaker is strictly increasing, so comparison never
# reaches the handle — and tuples avoid the dataclass-comparison
# overhead that dominated the scheduler under high packet rates.


class EventHandle:
    """A scheduled callback; keep it to :meth:`cancel` the event."""

    __slots__ = ("callback", "args", "cancelled", "in_queue", "_sim")

    def __init__(self, callback: Callable[..., None], args: tuple[Any, ...],
                 sim: "Simulation" = None) -> None:
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: True while the handle's heap entry is still resident.
        self.in_queue = False
        self._sim = sim

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.in_queue and self._sim is not None:
            self._sim._note_cancelled()


class Simulation:
    """Deterministic discrete-event simulation loop."""

    def __init__(self, seed: int = 0, tracer=None) -> None:
        self.now: float = 0.0
        self.rng = Rng(seed)
        #: Observability hook (docs/OBSERVABILITY.md).  Disabled by
        #: default: the shared NullTracer makes every probe a no-op.
        self.trace = tracer if tracer is not None else NULL_TRACER
        self.trace.bind(lambda: self.now)
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._sequence = 0
        self._dispatched = 0
        #: Cancelled handles still resident in the heap (tombstones).
        self._cancelled = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before now ({self.now})")
        handle = EventHandle(callback, args, self)
        handle.in_queue = True
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, handle))
        self.trace.count("sim.events.scheduled")
        return handle

    # ------------------------------------------------------------------
    # Lazy-cancellation bookkeeping
    # ------------------------------------------------------------------

    #: Compaction is skipped below this many tombstones: rebuilding a
    #: tiny heap costs more than it saves.
    _COMPACT_MIN_TOMBSTONES = 64

    def _note_cancelled(self) -> None:
        """A resident heap entry was cancelled; compact if tombstones
        now dominate the heap."""
        self._cancelled += 1
        if (self._cancelled >= self._COMPACT_MIN_TOMBSTONES
                and self._cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors."""
        removed = 0
        live: list[tuple[float, int, EventHandle]] = []
        for entry in self._queue:
            if entry[2].cancelled:
                entry[2].in_queue = False
                removed += 1
            else:
                live.append(entry)
        heapq.heapify(live)
        self._queue = live
        self._cancelled = 0
        if removed:
            self.trace.count("sim.events.cancelled", removed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            time, _, handle = heapq.heappop(self._queue)
            handle.in_queue = False
            if handle.cancelled:
                self._cancelled -= 1
                self.trace.count("sim.events.cancelled")
                continue
            self.now = time
            self._dispatched += 1
            self.trace.count("sim.events.dispatched")
            handle.callback(*handle.args)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run every event scheduled strictly before or at ``time``, then
        advance the clock to ``time``."""
        if time < self.now:
            raise SimulationError("run_until cannot move time backwards")
        while self._queue:
            event_time = self._queue[0][0]
            if event_time > time:
                break
            _, _, handle = heapq.heappop(self._queue)
            handle.in_queue = False
            if handle.cancelled:
                self._cancelled -= 1
                self.trace.count("sim.events.cancelled")
                continue
            self.now = event_time
            self._dispatched += 1
            self.trace.count("sim.events.dispatched")
            handle.callback(*handle.args)
        self.now = time

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(f"simulation exceeded {max_events} events")

    def pending_events(self) -> int:
        """Live (non-cancelled) events in the queue — O(1)."""
        return len(self._queue) - self._cancelled

    def dispatched_events(self) -> int:
        """Events executed so far (checkpoint/replay audits align on
        this count)."""
        return self._dispatched
