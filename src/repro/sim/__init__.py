"""Discrete-event simulation kernel.

Host chain, counterparty chain, validators, relayers and fishermen all run
as actors on one deterministic event loop: callbacks scheduled at
simulated times, ties broken by insertion order, randomness drawn from a
single seeded generator.  Re-running any experiment with the same seed
reproduces it bit-for-bit (DESIGN.md §6).
"""

from repro.sim.kernel import EventHandle, Simulation
from repro.sim.rng import lognormal_from_quantiles, Rng

__all__ = ["Simulation", "EventHandle", "Rng", "lognormal_from_quantiles"]
