"""A tiny gossip network for off-chain messages.

Misbehaviour evidence (§III-C) lives off-chain until a Fisherman submits
it: a byzantine validator's conflicting block signature circulates on
the validator gossip layer, not on the host chain.  This publish/
subscribe fabric models that layer with per-subscriber delivery delays.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.kernel import Simulation


class GossipNetwork:
    """Topic-based pub/sub with simulated propagation delay."""

    def __init__(self, sim: Simulation, mean_delay: float = 0.5) -> None:
        self.sim = sim
        self.mean_delay = mean_delay
        self._rng = sim.rng.fork("gossip")
        self._subscribers: dict[str, list[Callable[[Any], None]]] = {}

    def subscribe(self, topic: str, callback: Callable[[Any], None]) -> None:
        self._subscribers.setdefault(topic, []).append(callback)

    def publish(self, topic: str, message: Any) -> None:
        for callback in self._subscribers.get(topic, ()):
            delay = self._rng.expovariate(1.0 / self.mean_delay)
            self.sim.schedule(delay, callback, message)
