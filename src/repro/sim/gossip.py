"""A tiny gossip network for off-chain messages.

Misbehaviour evidence (§III-C) lives off-chain until a Fisherman submits
it: a byzantine validator's conflicting block signature circulates on
the validator gossip layer, not on the host chain.  This publish/
subscribe fabric models that layer with per-subscriber delivery delays.

Fault injection (docs/CHAOS.md) hooks in at the delivery edge: an
optional ``chaos`` policy may drop, duplicate, delay or partition each
(publisher, subscriber) delivery independently.  Subscriber callbacks
are isolated — one raising subscriber never prevents delivery to the
rest — and subscriptions can be withdrawn with :meth:`unsubscribe`,
which crash/restart actor faults rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.kernel import Simulation


class Subscription:
    """A registered subscriber; keep it to :meth:`GossipNetwork.unsubscribe`.

    The optional ``label`` names the subscriber for partition faults
    (chaos policies match on it) and for the error trace.
    """

    __slots__ = ("topic", "callback", "label", "active")

    def __init__(self, topic: str, callback: Callable[[Any], None],
                 label: Optional[str] = None) -> None:
        self.topic = topic
        self.callback = callback
        self.label = label if label is not None else getattr(
            callback, "__qualname__", repr(callback))
        self.active = True


class GossipNetwork:
    """Topic-based pub/sub with simulated propagation delay."""

    def __init__(self, sim: Simulation, mean_delay: float = 0.5) -> None:
        self.sim = sim
        self.mean_delay = mean_delay
        self._rng = sim.rng.fork("gossip")
        self._subscribers: dict[str, list[Subscription]] = {}
        #: Optional fault policy (duck-typed; see repro.chaos.injector).
        #: Consulted once per (message, subscriber) delivery.
        self.chaos = None
        #: Deliveries that raised, by subscriber label (kept even when
        #: tracing is off so tests can assert on isolation).
        self.subscriber_errors: dict[str, int] = {}

    def subscribe(self, topic: str, callback: Callable[[Any], None],
                  label: Optional[str] = None) -> Subscription:
        subscription = Subscription(topic, callback, label)
        self._subscribers.setdefault(topic, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Withdraw a subscription.  Already-scheduled deliveries are
        suppressed too (the subscriber is gone, e.g. crashed)."""
        subscription.active = False
        entries = self._subscribers.get(subscription.topic)
        if entries is not None:
            try:
                entries.remove(subscription)
            except ValueError:
                pass

    def publish(self, topic: str, message: Any) -> None:
        entries = self._subscribers.get(topic)
        if not entries:
            return
        if self.chaos is None:
            # Fast path: no fault policy to consult per delivery.  The
            # delay draws are made in the same subscriber order as the
            # chaos path below, so enabling chaos never perturbs the
            # delivery times of unaffected deliveries.
            rate = 1.0 / self.mean_delay
            expovariate = self._rng.expovariate
            schedule = self.sim.schedule
            for subscription in entries:
                schedule(expovariate(rate), self._deliver, subscription, message)
            return
        for subscription in list(entries):
            # Draw the nominal delay unconditionally so a chaos policy
            # never perturbs the delivery times of unaffected runs.
            delay = self._rng.expovariate(1.0 / self.mean_delay)
            if self.chaos is not None:
                verdict = self.chaos.on_delivery(topic, subscription.label)
                if verdict.drop:
                    self.sim.trace.count("chaos.gossip.dropped")
                    continue
                delay += verdict.extra_delay
                if verdict.extra_delay:
                    self.sim.trace.count("chaos.gossip.delayed")
                if verdict.duplicates:
                    self.sim.trace.count(
                        "chaos.gossip.duplicated", verdict.duplicates)
                    for copy in range(verdict.duplicates):
                        self.sim.schedule(
                            delay + 0.05 * (copy + 1),
                            self._deliver, subscription, message)
            self.sim.schedule(delay, self._deliver, subscription, message)

    def _deliver(self, subscription: Subscription, message: Any) -> None:
        """Invoke one subscriber, isolating its failures.

        A raising subscriber is an off-chain observer bug; it must not
        tear down the simulated network (or the kernel run) for everyone
        else on the topic.
        """
        if not subscription.active:
            return
        try:
            subscription.callback(message)
        except Exception:
            self.subscriber_errors[subscription.label] = (
                self.subscriber_errors.get(subscription.label, 0) + 1)
            self.sim.trace.count("gossip.subscriber_errors")
