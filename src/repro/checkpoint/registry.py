"""Registry of schedulable actors: the checkpointability contract.

A snapshot can only re-bind what it can name.  Every callback sitting
in the event queue (or buried in an actor's work queue) must therefore
be *owned* by code the registry knows how to find again at restore
time:

* a **bound method** of a registered actor class (the normal case —
  ``relayer._poll_counterparty``, ``chain._produce_block``, …);
* a **function or closure defined in a registered module** — closures
  ship their own code, but their globals are re-bound against the
  module, so the module must be importable and registered;
* a **builtin method of a plain container** (``fired.append``) — these
  carry no code at all.

Anything else — a closure minted in an unregistered module (say, an ad
hoc test file that will not exist at restore time) — fails validation
*at snapshot time* with an error naming the callback, instead of
producing a checkpoint that cannot be restored.

All ``repro.*`` modules are registered by default, so every in-tree
actor is checkpointable out of the box.  Embedders add their own actor
classes with :func:`register_actor` (or whole namespaces with
:func:`register_namespace`).
"""

from __future__ import annotations

import types
from typing import Any, Callable, Iterable

from repro.checkpoint.codec import CheckpointError

#: Module-name prefixes whose functions/closures are checkpoint-safe.
_NAMESPACES: set[str] = {"repro"}

#: Explicitly registered actor classes (beyond the namespace rule).
_ACTOR_CLASSES: set[type] = set()


def register_namespace(prefix: str) -> None:
    """Mark every module under ``prefix`` as checkpoint-safe."""
    _NAMESPACES.add(prefix.rstrip("."))


def register_actor(cls: type) -> type:
    """Register an actor class whose bound methods may be scheduled.

    Usable as a decorator; returns ``cls`` unchanged.
    """
    _ACTOR_CLASSES.add(cls)
    return cls


def _module_registered(module_name: str) -> bool:
    if not module_name:
        return False
    if module_name == "builtins":
        return True
    head = module_name.split(".", 1)[0]
    return head in _NAMESPACES or module_name in _NAMESPACES


def _owner_of(callback: Callable[..., Any]):
    """(kind, detail) classification of a scheduled callback."""
    if isinstance(callback, types.MethodType):
        owner = type(callback.__self__)
        if owner in _ACTOR_CLASSES or _module_registered(owner.__module__):
            return "ok", None
        return "unregistered-actor", (
            f"bound method {callback.__func__.__qualname__} of unregistered "
            f"actor class {owner.__module__}.{owner.__qualname__}"
        )
    if isinstance(callback, types.BuiltinMethodType):
        return "ok", None  # e.g. list.append of a plain container
    if isinstance(callback, types.FunctionType):
        if _module_registered(callback.__module__ or ""):
            return "ok", None
        return "unregistered-module", (
            f"function {callback.__qualname__} defined in unregistered "
            f"module {callback.__module__!r}"
        )
    if callable(callback):
        owner = type(callback)
        if owner in _ACTOR_CLASSES or _module_registered(owner.__module__):
            return "ok", None
        return "unregistered-callable", (
            f"callable of unregistered type {owner.__module__}.{owner.__qualname__}"
        )
    return "not-callable", f"{callback!r} is not callable"


def validate_event_queue(sim) -> None:
    """Check every live scheduled callback against the registry.

    Raises :class:`CheckpointError` listing each violation; a clean pass
    means the queue's continuations can be re-bound at restore time.
    """
    problems = validation_errors(
        handle.callback for _, handle in sim.iter_pending()
    )
    if problems:
        details = "\n  - ".join(problems)
        raise CheckpointError(
            "event queue holds callbacks outside the checkpoint registry "
            "(schedule methods of registered actors, or register your "
            "module/class — docs/CHECKPOINT.md):\n  - " + details
        )


def validation_errors(callbacks: Iterable[Callable[..., Any]]) -> list[str]:
    """The registry violations among ``callbacks`` (deduplicated)."""
    problems: list[str] = []
    seen: set[str] = set()
    for callback in callbacks:
        status, detail = _owner_of(callback)
        if status != "ok" and detail not in seen:
            seen.add(detail)
            problems.append(detail)
    return problems
