"""Versioned world checkpoints: manifest + payload, audit on restore.

A checkpoint is two parts:

* a JSON **manifest** — schema version, interpreter tag, the deployment
  seed and a fingerprint of its config, the simulation clock and event
  counters, and the store **root hashes** of every chain at snapshot
  time;
* the **payload** — the full object graph (deployment plus any extras
  such as a workload engine), serialized by the closure-aware codec.

Restoring re-derives the roots and counters from the reconstructed
world and refuses to hand it back if anything disagrees with the
manifest: a checkpoint that fails its own audit is worthless as a
replay oracle.  File layout (``save``/``load``)::

    b"RPCK" | u8 schema | u32 manifest_len | manifest JSON | payload

``docs/CHECKPOINT.md`` documents format evolution rules.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Optional

from repro.checkpoint.codec import (
    CODEC_VERSION,
    PYTHON_TAG,
    CheckpointError,
    dumps_world,
    loads_world,
)
from repro.checkpoint.registry import validate_event_queue
from repro.ids import mint_states, rewind_mints

#: Bump on any manifest/layout change; loaders reject unknown versions.
SCHEMA_VERSION = 1

_MAGIC = b"RPCK"


def config_fingerprint(config: Any) -> str:
    """Stable digest of a deployment config (nested dataclasses).

    ``repr`` of the dataclass tree is deterministic for the plain
    value types configs hold; classes (e.g. ``scheme_factory``) are
    rendered by qualified name through their default repr.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


def world_roots(deployment) -> dict[str, str]:
    """The commitment roots that pin a world's state."""
    return {
        "guest_store": bytes(deployment.contract.store.root_hash).hex(),
        "counterparty_store": bytes(deployment.counterparty.ibc.store.root_hash).hex(),
    }


@dataclass(frozen=True)
class CheckpointManifest:
    """Everything needed to audit a payload before trusting it."""

    schema_version: int
    codec_version: int
    python_tag: str
    label: str
    seed: int
    config_hash: str
    sim_now: float
    events_dispatched: int
    events_scheduled: int
    pending_events: int
    store_roots: dict[str, str] = field(default_factory=dict)
    extras: tuple[str, ...] = ()

    def to_json(self) -> dict[str, Any]:
        record = asdict(self)
        record["extras"] = list(self.extras)
        return record

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "CheckpointManifest":
        record = dict(record)
        record["extras"] = tuple(record.get("extras", ()))
        return cls(**record)


@dataclass(frozen=True)
class Checkpoint:
    """One serialized world: audit-ready manifest plus payload bytes."""

    manifest: CheckpointManifest
    payload: bytes

    # -- binary container ------------------------------------------------

    def to_bytes(self) -> bytes:
        manifest_bytes = json.dumps(
            self.manifest.to_json(), sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        return (
            _MAGIC
            + bytes([SCHEMA_VERSION])
            + len(manifest_bytes).to_bytes(4, "big")
            + manifest_bytes
            + self.payload
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        if data[:4] != _MAGIC:
            raise CheckpointError("not a checkpoint file (bad magic)")
        if data[4] != SCHEMA_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint schema {data[4]} "
                f"(this build reads schema {SCHEMA_VERSION})"
            )
        manifest_len = int.from_bytes(data[5:9], "big")
        manifest = CheckpointManifest.from_json(
            json.loads(data[9:9 + manifest_len].decode("utf-8")),
        )
        return cls(manifest=manifest, payload=data[9 + manifest_len:])

    def save(self, path: str) -> None:
        """Atomic write (tmp + rename): a crash never leaves a torn file."""
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(self.to_bytes())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())


# ----------------------------------------------------------------------
# Snapshot / restore
# ----------------------------------------------------------------------


def snapshot_world(deployment, extras: Optional[dict[str, Any]] = None,
                   label: str = "") -> Checkpoint:
    """Serialize a deployment (and companions like a workload engine).

    Validates the event queue against the callback registry first, then
    captures the whole graph in one pickle so every shared reference —
    the one relayer, the one rng — stays shared on restore.
    """
    validate_event_queue(deployment.sim)
    extras = dict(extras or {})
    payload = dumps_world({
        "deployment": deployment,
        "extras": extras,
        # Process-global id mints (tx/bundle/buffer/event/span ids) are
        # part of the world's future: replay must mint identical ids.
        "mints": mint_states(),
    })
    sim = deployment.sim
    manifest = CheckpointManifest(
        schema_version=SCHEMA_VERSION,
        codec_version=CODEC_VERSION,
        python_tag=PYTHON_TAG,
        label=label,
        seed=deployment.config.seed,
        config_hash=config_fingerprint(deployment.config),
        sim_now=sim.now,
        events_dispatched=sim.dispatched_events(),
        events_scheduled=sim._sequence,
        pending_events=sim.pending_events(),
        store_roots=world_roots(deployment),
        extras=tuple(sorted(extras)),
    )
    return Checkpoint(manifest=manifest, payload=payload)


def restore_world(checkpoint: Checkpoint, audit: bool = True):
    """Reconstruct ``(deployment, extras)`` from a checkpoint.

    With ``audit`` (the default), the restored world is checked against
    the manifest — clock, event counters and store roots must all
    match — before it is returned.
    """
    manifest = checkpoint.manifest
    if manifest.schema_version != SCHEMA_VERSION:
        raise CheckpointError(
            f"unsupported manifest schema {manifest.schema_version}"
        )
    graph = loads_world(checkpoint.payload, python_tag=manifest.python_tag)
    deployment = graph["deployment"]
    extras = graph["extras"]
    # Rewind the process-global id mints to their snapshot positions so
    # the replay mints the same tx/span/bundle ids the original run
    # did.  This is why only one live world per process is supported —
    # see repro.ids and docs/CHECKPOINT.md.
    rewind_mints(graph.get("mints", {}))
    if audit:
        audit_restored(deployment, manifest)
    return deployment, extras


def audit_restored(deployment, manifest: CheckpointManifest) -> None:
    """Raise unless the restored world matches its manifest."""
    sim = deployment.sim
    observed = {
        "sim_now": sim.now,
        "events_dispatched": sim.dispatched_events(),
        "events_scheduled": sim._sequence,
        "pending_events": sim.pending_events(),
        "config_hash": config_fingerprint(deployment.config),
        "store_roots": world_roots(deployment),
    }
    expected = {
        "sim_now": manifest.sim_now,
        "events_dispatched": manifest.events_dispatched,
        "events_scheduled": manifest.events_scheduled,
        "pending_events": manifest.pending_events,
        "config_hash": manifest.config_hash,
        "store_roots": dict(manifest.store_roots),
    }
    mismatches = [
        f"{key}: manifest={expected[key]!r} restored={observed[key]!r}"
        for key in expected if expected[key] != observed[key]
    ]
    if mismatches:
        raise CheckpointError(
            "restored world failed its manifest audit:\n  - "
            + "\n  - ".join(mismatches)
        )
