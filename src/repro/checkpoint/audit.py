"""Replay-divergence audit: the checkpoint layer's differential oracle.

The strongest statement a checkpoint can make is *bit-identical
replay*: run a live workload, snapshot mid-flight, let the original
run straight through, then restore the snapshot and replay — every
store root, event counter and trace histogram must come out identical.
A divergence means some state escaped the snapshot (or some actor
consults process state outside the world), which is exactly the class
of bug that would silently poison sharded sweeps.

``python -m repro.experiments replay-audit`` runs this across seeds;
the cluster smoke job runs one audit on every push.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any

from repro.checkpoint.codec import CheckpointError
from repro.checkpoint.snapshot import Checkpoint, restore_world, snapshot_world, world_roots
from repro.experiments.throughput import ThroughputPointConfig, build_linked_deployment
from repro.workload import WorkloadEngine, WorkloadSpec


@dataclass(frozen=True)
class ReplayAuditConfig:
    """One audit run: a workload, a snapshot point, a finish line."""

    seed: int = 401
    offered_pps: float = 8.0
    duration: float = 240.0
    drain_seconds: float = 1_200.0
    channels: int = 2
    batch_max_packets: int = 8
    block_tx_limit: int = 8
    #: Snapshot once this many events have dispatched (the workload must
    #: still be mid-flight here for the audit to mean anything).
    snapshot_after_events: int = 4_000


def _fingerprint(deployment, engine: WorkloadEngine) -> dict[str, Any]:
    """Everything that must match between straight-through and replay.

    Span ids are minted from a process-global counter, but restore
    rewinds every registered mint (:mod:`repro.ids`) to its snapshot
    position — so ids are part of the contract and part of the digest.
    """
    sim = deployment.sim
    trace = deployment.trace_report()
    spans = sorted(
        repr((record.span_id, record.name, record.key, record.actor,
              record.start, record.end, sorted(record.attrs.items())))
        for record in trace.spans
    )
    histograms = {name: list(values) for name, values in sorted(trace.histograms.items())}
    return {
        "sim_now": sim.now,
        "events_dispatched": sim.dispatched_events(),
        "events_scheduled": sim._sequence,
        "pending_events": sim.pending_events(),
        "store_roots": world_roots(deployment),
        "host_slot": deployment.host.slot,
        "counterparty_height": deployment.counterparty.height,
        "counters": dict(sorted(trace.counters.items())),
        "histogram_digest": hashlib.sha256(
            repr(histograms).encode("utf-8")).hexdigest(),
        "span_digest": hashlib.sha256(
            "\n".join(spans).encode("utf-8")).hexdigest(),
        "workload": {
            "sent": engine.sent,
            "committed": engine.committed,
            "delivered": engine.delivered,
            "send_failures": engine.send_failures,
            "outstanding": engine.outstanding(),
            "latency_digest": hashlib.sha256(
                repr(engine.latencies).encode("utf-8")).hexdigest(),
        },
    }


def _diff(a: dict[str, Any], b: dict[str, Any], prefix: str = "") -> list[str]:
    keys = sorted(set(a) | set(b))
    problems = []
    for key in keys:
        left, right = a.get(key), b.get(key)
        if isinstance(left, dict) and isinstance(right, dict):
            problems.extend(_diff(left, right, f"{prefix}{key}."))
        elif left != right:
            problems.append(f"{prefix}{key}: {left!r} != {right!r}")
    return problems


def run_replay_audit(config: ReplayAuditConfig = ReplayAuditConfig()) -> dict[str, Any]:
    """Snapshot → straight-through vs. restore → replay; compare.

    Returns a JSON-ready record; ``record["match"]`` is the verdict and
    ``record["divergences"]`` names every field that differed.
    """
    point = ThroughputPointConfig(
        seed=config.seed,
        offered_pps=config.offered_pps,
        duration=config.duration,
        drain_seconds=config.drain_seconds,
        channels=config.channels,
        batch_max_packets=config.batch_max_packets,
        block_tx_limit=config.block_tx_limit,
    )
    deployment, channels = build_linked_deployment(point)
    engine = WorkloadEngine(deployment, channels, WorkloadSpec(
        mode=point.mode,
        offered_pps=point.offered_pps,
        duration=point.duration,
        drain_seconds=point.drain_seconds,
    ))
    engine.start()
    sim = deployment.sim
    end_time = engine._started_at + point.duration + point.drain_seconds

    while sim.dispatched_events() < config.snapshot_after_events:
        # Housekeeping (block production, cranker ticks) self-reschedules
        # forever, so the queue never empties — passing the finish line
        # is what "the workload drained first" actually looks like.
        if not sim.step() or sim.now > end_time:
            raise CheckpointError(
                f"workload drained after {sim.dispatched_events()} events, "
                f"before the requested snapshot point "
                f"{config.snapshot_after_events}"
            )
    snapshot_events = sim.dispatched_events()

    # Round-trip the checkpoint through its binary container so the
    # audit also covers the file format, not just the in-memory path.
    checkpoint = Checkpoint.from_bytes(
        snapshot_world(
            deployment, extras={"engine": engine},
            label=f"replay-audit-seed-{config.seed}",
        ).to_bytes()
    )

    # Straight-through: the original world runs to the finish line.
    sim.run_until(end_time)
    straight = _fingerprint(deployment, engine)

    # Replay: restore the snapshot (manifest-audited) and run the same
    # simulated interval on the reconstructed world.
    restored, extras = restore_world(checkpoint)
    restored.sim.run_until(end_time)
    replayed = _fingerprint(restored, extras["engine"])

    divergences = _diff(straight, replayed)
    events_replayed = straight["events_dispatched"] - snapshot_events
    return {
        "config": asdict(config),
        "snapshot_events": snapshot_events,
        "events_total": straight["events_dispatched"],
        "events_replayed": events_replayed,
        "checkpoint_bytes": len(checkpoint.payload),
        "manifest": checkpoint.manifest.to_json(),
        "match": not divergences,
        "divergences": divergences,
        "straight_fingerprint": straight,
    }


def run_replay_audits(seeds: tuple[int, ...] = (401, 402, 403),
                      base: ReplayAuditConfig = ReplayAuditConfig()) -> dict[str, Any]:
    """The acceptance-shaped audit: several seeds, one verdict."""
    from dataclasses import replace
    audits = [run_replay_audit(replace(base, seed=seed)) for seed in seeds]
    return {
        "experiment": "replay_audit",
        "seeds": list(seeds),
        "match": all(audit["match"] for audit in audits),
        "audits": audits,
    }
