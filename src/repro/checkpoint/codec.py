"""The world codec: serialize a live simulation object graph.

Almost everything in a deployment is plain Python data that the stdlib
pickle handles by itself (dataclasses, dicts, ``random.Random`` state,
trie nodes, bound methods of picklable actors).  What pickle refuses
are the *continuations*: the event queue and the actors' work queues
hold lambdas and nested closures (``after_update``, ``step2_try``, …)
whose captured frames carry the in-flight protocol state.

:class:`WorldPickler` closes that gap.  A closure is reduced to its
code object (via :mod:`marshal`), the module whose globals it runs in,
its defaults and its closure cells; cells recurse through the same
pickler, so a cell capturing the relayer serializes as a *reference* to
the one relayer instance in the graph — shared structure and cycles
through containers survive exactly as pickle normally guarantees.

Two restrictions follow from using :mod:`marshal` for code objects, and
both are recorded in the checkpoint manifest and enforced at load time:

* a checkpoint is only loadable under the same ``major.minor`` Python
  version that wrote it;
* functions are rebound against the *current* module source at load
  time only when they are module-level; closure code travels in the
  checkpoint itself.

``docs/CHECKPOINT.md`` documents the callback rules actors must follow
to stay checkpointable; :mod:`repro.checkpoint.registry` enforces them
at snapshot time with errors that name the offending callback.
"""

from __future__ import annotations

import importlib
import io
import marshal
import pickle
import sys
import threading
import types
from typing import Any, Callable, Optional

from repro.errors import ReproError

#: Bumped whenever the payload layout or the reduction scheme changes.
CODEC_VERSION = 1

#: ``major.minor`` of the interpreter — marshal'd code objects are not
#: portable across interpreter feature releases.
PYTHON_TAG = f"{sys.version_info.major}.{sys.version_info.minor}"


class CheckpointError(ReproError):
    """A world could not be serialized, or a checkpoint failed audit."""


# ----------------------------------------------------------------------
# Rebuild helpers (must stay module-level: they are pickled by name)
# ----------------------------------------------------------------------


def _module_globals(module_name: str) -> dict:
    module = sys.modules.get(module_name)
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            # A closure defined in a dead module (e.g. a deleted test
            # file) still runs off its own code and cells; give it an
            # empty globals dict with __builtins__ wired.
            return {"__builtins__": __builtins__, "__name__": module_name}
    return module.__dict__


def _make_function(code_bytes: bytes, module_name: str,
                   qualname: str) -> types.FunctionType:
    """Skeleton function: code + globals + *empty* cells.

    Captured values (and defaults) arrive later through
    :func:`_apply_function_state`, after the skeleton is in the
    unpickler's memo — that ordering is what lets a recursive closure
    (one whose cell contains the function itself, like the guest API's
    ``pump``) round-trip instead of recursing forever.
    """
    code = marshal.loads(code_bytes)
    closure = tuple(types.CellType() for _ in code.co_freevars) or None
    function = types.FunctionType(
        code, _module_globals(module_name), code.co_name, None, closure,
    )
    function.__qualname__ = qualname
    return function


def _apply_function_state(function: types.FunctionType, state: dict) -> None:
    function.__defaults__ = state["defaults"]
    if state["kwdefaults"]:
        function.__kwdefaults__ = dict(state["kwdefaults"])
    # Copy captured values into the skeleton's own cells.  Cell *values*
    # stay shared through the pickle memo (two closures over one dict
    # still see one dict); the cell objects themselves are fresh — see
    # docs/CHECKPOINT.md for the no-shared-``nonlocal`` rule this
    # implies for actors.
    for skeleton_cell, saved_cell in zip(function.__closure__ or (),
                                         state["cells"] or ()):
        try:
            skeleton_cell.cell_contents = saved_cell.cell_contents
        except ValueError:
            pass  # genuinely empty cell (never assigned) stays empty


def _make_empty_cell() -> types.CellType:
    return types.CellType()


def _fill_cell(cell: types.CellType, contents: tuple) -> None:
    # ``contents`` is () for an empty cell, (value,) otherwise —
    # wrapping distinguishes "empty" from "contains None".
    if contents:
        cell.cell_contents = contents[0]


def _rebuild_code(code_bytes: bytes) -> types.CodeType:
    return marshal.loads(code_bytes)


def _is_module_level(function: types.FunctionType) -> bool:
    """True when pickle's save-by-reference would round-trip ``function``."""
    qualname = getattr(function, "__qualname__", "")
    if "<locals>" in qualname or function.__name__ == "<lambda>":
        return False
    module = sys.modules.get(getattr(function, "__module__", None) or "")
    if module is None:
        return False
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is function


class WorldPickler(pickle.Pickler):
    """Pickler that additionally serializes closures, cells and code."""

    def reducer_override(self, obj):  # noqa: C901 - type dispatch
        # Functions and cells use the two-phase skeleton/state reduce:
        # the skeleton is memoized before its captured values are
        # saved, so cyclic capture graphs (``pump`` holding a cell that
        # holds ``pump``) terminate through the pickle memo.
        if isinstance(obj, types.FunctionType) and not _is_module_level(obj):
            return (
                _make_function,
                (
                    marshal.dumps(obj.__code__),
                    obj.__module__ or "builtins",
                    obj.__qualname__,
                ),
                {
                    "defaults": obj.__defaults__,
                    "kwdefaults": obj.__kwdefaults__,
                    "cells": obj.__closure__,
                },
                None,
                None,
                _apply_function_state,
            )
        if isinstance(obj, types.CellType):
            try:
                contents = (obj.cell_contents,)
            except ValueError:
                contents = ()
            return (_make_empty_cell, (), contents, None, None, _fill_cell)
        if isinstance(obj, types.CodeType):
            return (_rebuild_code, (marshal.dumps(obj),))
        return NotImplemented


# ----------------------------------------------------------------------
# Deep-stack execution
# ----------------------------------------------------------------------
#
# Continuation-passing actors (the relayer's ``after_update`` chain, the
# guest API's ``pump`` loop) link closures through their cells: under a
# congested light-client backlog the live graph contains chains of
# closures tens of thousands of links long.  Pickle serializes depth-
# first, so the *serialization* depth equals the chain length even
# though the graph's diameter is tiny.  Rather than force every actor
# into an artificial iterative style, the codec runs dump/load on a
# dedicated thread with a large C stack and a recursion limit to match.

_DEEP_STACK_BYTES = 512 * 1024 * 1024
_DEEP_RECURSION_LIMIT = 1_000_000


def _call_with_deep_stack(fn: Callable[[], Any]) -> Any:
    """Run ``fn`` on a big-stack thread, re-raising its exception here."""
    outcome: dict[str, Any] = {}

    def runner() -> None:
        previous_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(_DEEP_RECURSION_LIMIT)
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - transported to caller
            outcome["error"] = exc
        finally:
            sys.setrecursionlimit(previous_limit)

    previous_size = threading.stack_size(_DEEP_STACK_BYTES)
    try:
        thread = threading.Thread(target=runner, name="checkpoint-codec")
        thread.start()
    finally:
        threading.stack_size(previous_size)
    thread.join()
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


def dumps_world(root: Any) -> bytes:
    """Serialize ``root`` (any object graph) with closure support."""
    buffer = io.BytesIO()

    def dump() -> None:
        WorldPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(root)

    try:
        _call_with_deep_stack(dump)
    except (pickle.PicklingError, TypeError, ValueError, AttributeError) as exc:
        raise CheckpointError(
            f"world is not checkpointable: {exc} — see docs/CHECKPOINT.md "
            "for the callback rules actors must follow"
        ) from exc
    return buffer.getvalue()


def loads_world(payload: bytes, python_tag: Optional[str] = None) -> Any:
    """Reconstruct a graph written by :func:`dumps_world`.

    ``python_tag`` (from the manifest) guards the marshal'd code against
    interpreter drift.
    """
    if python_tag is not None and python_tag != PYTHON_TAG:
        raise CheckpointError(
            f"checkpoint was written under Python {python_tag}; this "
            f"interpreter is {PYTHON_TAG} (marshal'd closure code is not "
            "portable across feature releases)"
        )
    try:
        return _call_with_deep_stack(lambda: pickle.loads(payload))
    except Exception as exc:  # noqa: BLE001 - surface as a checkpoint error
        raise CheckpointError(f"corrupt or incompatible checkpoint payload: {exc}") from exc
