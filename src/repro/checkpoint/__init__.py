"""Deterministic world checkpointing (``docs/CHECKPOINT.md``).

Snapshot a live deployment — clock, event queue with its in-flight
continuations, rng streams, both chains' tries, relayer/cranker queues,
workload progress — into a versioned, manifest-audited blob; restore
it and replay with bit-identical results.  The replay-divergence audit
(:mod:`repro.checkpoint.audit`) is the differential oracle that keeps
the sharded cluster runner (:mod:`repro.cluster`) trustworthy.
"""

from repro.checkpoint.codec import (
    CODEC_VERSION,
    PYTHON_TAG,
    CheckpointError,
    dumps_world,
    loads_world,
)
from repro.checkpoint.registry import (
    register_actor,
    register_namespace,
    validate_event_queue,
    validation_errors,
)
from repro.checkpoint.snapshot import (
    SCHEMA_VERSION,
    Checkpoint,
    CheckpointManifest,
    audit_restored,
    config_fingerprint,
    restore_world,
    snapshot_world,
    world_roots,
)

__all__ = [
    "CODEC_VERSION",
    "PYTHON_TAG",
    "SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointManifest",
    "audit_restored",
    "config_fingerprint",
    "dumps_world",
    "loads_world",
    "register_actor",
    "register_namespace",
    "restore_world",
    "snapshot_world",
    "validate_event_queue",
    "validation_errors",
    "world_roots",
]
