"""State growth economics: sealing schedulers and snapshot state-sync.

The sealable trie (§III-A) bounds the guest's storage, but *when* to
seal is an economic choice: sealing early minimizes host rent, sealing
late amortizes the seal writes and keeps entries queryable longer.
This package makes the policy pluggable (:mod:`repro.state.scheduler`)
and adds the operational counterpart of bounded state — a validator
that joins mid-run from a sealed-trie snapshot instead of replaying
history (:mod:`repro.state.sync`).
"""

from repro.state.scheduler import (
    EagerScheduler,
    LazyScheduler,
    RentAwareScheduler,
    SealScheduler,
    scheduler_from_name,
)
from repro.state.sync import ReplayMirror, StateJournal, SyncedReplica

__all__ = [
    "EagerScheduler",
    "LazyScheduler",
    "RentAwareScheduler",
    "SealScheduler",
    "scheduler_from_name",
    "ReplayMirror",
    "StateJournal",
    "SyncedReplica",
]
