"""Pluggable sealing schedulers (§III-A meets §V-D economics).

The lagged-sealing rule (:class:`repro.ibc.host._SequenceTracker`)
decides which entries are *safe* to seal — sealing them can never block
a future insert or proof.  The scheduler decides which safe entries to
seal *now*.  Because sealing is root-neutral, the choice is invisible
to consensus: two validators running different schedulers produce
identical state roots, so the policy is a per-operator economic knob,
not a protocol parameter.

Three policies:

* :class:`EagerScheduler` — seal the moment an entry is safe.  Minimal
  live bytes, one seal write per entry (the pre-existing behaviour of
  ``seal_receipts=True``).
* :class:`LazyScheduler` — batch seals and apply them ``batch`` at a
  time, amortizing the trie-path rewrites; live bytes overshoot by at
  most one batch of entries.
* :class:`RentAwareScheduler` — seal only when the projected *host
  rent* for the store's live bytes exceeds an annual budget, then seal
  oldest-first until back under it.  Live bytes track the budget
  instead of the traffic.

The host drains a scheduler in a loop (see ``IbcHost._drain_seals``):
``drain`` returns a batch to seal, the host seals it, and the next
``drain`` call sees the updated store — so the rent-aware policy can
re-check its budget between batches.  A ``drain`` returning an empty
list ends the loop; every non-empty batch removes entries from the
pending queue, so the loop always terminates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.units import RENT_LAMPORTS_PER_BYTE_YEAR

#: A sealable entry: (store path prefix, sequence number).
SealTarget = Tuple[str, int]

#: Cap on entries returned per drain call, so a deeply-backlogged
#: scheduler still yields control (and fresh store stats) regularly.
_DRAIN_BATCH = 64


class SealScheduler:
    """Base policy: tracks the safe-to-seal queue and counters.

    Subclasses override :meth:`drain`.  State is plain picklable data,
    so schedulers survive world checkpoints unchanged.
    """

    def __init__(self) -> None:
        self._pending: Deque[SealTarget] = deque()
        self.offered = 0   # entries ever handed to the scheduler
        self.sealed = 0    # entries the scheduler released for sealing

    def offer(self, prefix: str, sequence: int) -> None:
        """An entry became safe to seal; the policy decides when."""
        self._pending.append((prefix, sequence))
        self.offered += 1

    def pending_count(self) -> int:
        return len(self._pending)

    def drain(self, store) -> List[SealTarget]:
        """Return the next batch of entries to seal now (may be empty)."""
        raise NotImplementedError

    def flush(self) -> List[SealTarget]:
        """Release everything pending, regardless of policy (shutdown /
        end-of-experiment accounting)."""
        due = list(self._pending)
        self._pending.clear()
        self.sealed += len(due)
        return due

    def _take(self, count: int) -> List[SealTarget]:
        due = [self._pending.popleft()
               for _ in range(min(count, len(self._pending)))]
        self.sealed += len(due)
        return due


class EagerScheduler(SealScheduler):
    """Seal as soon as an entry is safe (the paper's default)."""

    def drain(self, store) -> List[SealTarget]:
        return self._take(_DRAIN_BATCH)


class LazyScheduler(SealScheduler):
    """Accumulate safe entries and seal them ``batch`` at a time."""

    def __init__(self, batch: int = 64) -> None:
        super().__init__()
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.batch = batch

    def drain(self, store) -> List[SealTarget]:
        if len(self._pending) < self.batch:
            return []
        return self._take(self.batch)


class RentAwareScheduler(SealScheduler):
    """Seal when projected annual rent for live bytes exceeds a budget.

    The projection prices the store's current ``storage_bytes`` at the
    host's rent rate (:data:`repro.units.RENT_LAMPORTS_PER_BYTE_YEAR`).
    While over budget, the oldest safe entries are released; each batch
    shrinks the live set, and the next ``drain`` re-projects against
    the updated store.
    """

    def __init__(self, annual_budget_lamports: int) -> None:
        super().__init__()
        if annual_budget_lamports < 0:
            raise ValueError("annual budget must be >= 0")
        self.annual_budget_lamports = annual_budget_lamports

    def projected_rent(self, store) -> float:
        return store.storage_bytes() * RENT_LAMPORTS_PER_BYTE_YEAR

    def drain(self, store) -> List[SealTarget]:
        if self.projected_rent(store) <= self.annual_budget_lamports:
            return []
        return self._take(_DRAIN_BATCH)


def scheduler_from_name(name: str, **kwargs) -> SealScheduler:
    """Build a scheduler from its sweep/CLI name."""
    if name == "eager":
        return EagerScheduler()
    if name == "lazy":
        return LazyScheduler(batch=int(kwargs.get("batch", 64)))
    if name == "rent-aware":
        return RentAwareScheduler(
            annual_budget_lamports=int(kwargs["annual_budget_lamports"]),
        )
    raise ValueError(f"unknown sealing scheduler {name!r}")
