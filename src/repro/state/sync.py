"""Snapshot state-sync: join a running guest without replaying history.

IBC-network validators bootstrap from state snapshots rather than
genesis replay; the guest's sealed trie makes that cheap — a snapshot
is the canonical :func:`~repro.trie.serialize.dump_store` bytes, sealed
stubs included, and its one root hash is checkable against the
finalized light-client state.  The flow:

1. The running contract records every store mutation in a
   :class:`StateJournal` (attached as a trie mirror), with a watermark
   per generated block height.
2. A joiner takes the snapshot of a finalized height ``H``, loads it,
   and **verifies the loaded root against the light client's finalized
   state root for ``H``** — the snapshot is self-proving: the bytes are
   the preimage of the committed root.
3. It replays the journal's ops since ``H`` and attaches live; from
   then on every mutation is applied in lockstep, so its roots (and the
   proofs it serves) are bit-identical to a node that replayed the full
   history.

Sealing is part of the op stream, so a joiner reproduces the exact
storage shape too, not just the commitment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError
from repro.trie.serialize import dump_store, load_store
from repro.trie.store import ProvableStore


class StateSyncError(ReproError):
    """Snapshot verification or replay failed."""


@dataclass(frozen=True)
class TrieOp:
    """One store mutation, as the journal records it."""

    kind: str          # "set" | "delete" | "seal"
    key: bytes
    value: bytes = b""


class StateJournal:
    """Trie mirror that logs every mutation with height watermarks.

    The watermark for height ``H`` is the op-count at the instant block
    ``H`` was generated — i.e. replaying ``ops[:watermark]`` onto an
    empty store reproduces exactly the state committed by ``H``'s
    ``state_root``.
    """

    def __init__(self) -> None:
        self.ops: List[TrieOp] = []
        self._marks: dict[int, int] = {}

    # -- trie mirror interface -----------------------------------------
    def on_op(self, kind: str, key: bytes, value: bytes = b"") -> None:
        self.ops.append(TrieOp(kind, key, value))

    # -- height bookkeeping --------------------------------------------
    def mark_height(self, height: int) -> None:
        self._marks[height] = len(self.ops)

    def watermark(self, height: int) -> int:
        try:
            return self._marks[height]
        except KeyError:
            raise StateSyncError(
                f"journal has no watermark for height {height}"
            ) from None

    def ops_since(self, height: int) -> List[TrieOp]:
        return self.ops[self.watermark(height):]


class ReplayMirror:
    """Trie mirror that applies each mutation to a replica store."""

    def __init__(self, store: ProvableStore) -> None:
        self.store = store

    def on_op(self, kind: str, key: bytes, value: bytes = b"") -> None:
        trie = self.store.trie
        if kind == "set":
            trie.set(key, value)
        elif kind == "delete":
            trie.delete(key)
        elif kind == "seal":
            trie.seal(key)
        else:  # pragma: no cover - journal kinds are closed
            raise StateSyncError(f"unknown journal op kind {kind!r}")


class SyncedReplica:
    """A replica store kept in lockstep with a source trie.

    Build one with :meth:`full_replay` (baseline: follows from genesis)
    or :meth:`join_from_snapshot` (state-sync: verifies a snapshot of a
    finalized height, catches up from the journal, then follows live).
    """

    def __init__(self, store: ProvableStore, synced_from: Optional[int]) -> None:
        self.store = store
        #: Height whose snapshot seeded this replica (None = genesis).
        self.synced_from = synced_from
        self._mirror = ReplayMirror(store)

    @property
    def root_hash(self):
        return self.store.root_hash

    @classmethod
    def full_replay(cls, source_store: ProvableStore) -> "SyncedReplica":
        """Clone ``source_store`` and follow every later mutation live.

        This is the "always-online" baseline a state-synced joiner must
        match bit for bit: attach it before the run's traffic and it
        replays the full history as it happens.  The bootstrap clone
        goes through :func:`dump_store`/:func:`load_store`, so sealed
        stubs survive exactly.
        """
        replica = cls(load_store(dump_store(source_store)), synced_from=None)
        source_store.trie.attach_mirror(replica._mirror)
        return replica

    @classmethod
    def join_from_snapshot(cls, contract, client, height: int,
                           journal: StateJournal) -> "SyncedReplica":
        """State-sync a new replica from ``contract``'s snapshot at
        ``height``, verified against ``client``'s finalized root.

        ``client`` is a finalized-header source with
        ``consensus_root(height)`` (e.g.
        :class:`repro.lightclient.guest_client.GuestLightClient`);
        verification fails if the height is not finalized there or the
        snapshot bytes do not hash to its committed state root.
        """
        trusted_root = client.consensus_root(height)
        if trusted_root is None:
            raise StateSyncError(
                f"height {height} is not finalized in the light client"
            )
        snapshot = dump_store(contract.state_view(height))
        store = load_store(snapshot)
        if bytes(store.root_hash) != bytes(trusted_root):
            raise StateSyncError(
                f"snapshot root {store.root_hash.hex()} does not match the "
                f"finalized state root at height {height}"
            )
        replica = cls(store, synced_from=height)
        # Catch up to the source's present, then follow live.  The sim
        # is single-threaded, so no op can interleave between these.
        for op in journal.ops_since(height):
            replica._mirror.on_op(op.kind, op.key, op.value)
        contract.store.trie.attach_mirror(replica._mirror)
        return replica

    def detach(self, source_trie) -> None:
        source_trie.detach_mirror(self._mirror)
