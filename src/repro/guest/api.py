"""Client-side transaction builder for the Guest Contract.

Wraps every contract operation into properly sized host transactions:
single-transaction calls (send, generate, sign, stake), atomic bundles
for packet delivery (the 4–5 transactions of §V-A that land in one host
block), and the windowed multi-transaction flow for chunked light-client
updates (the 36.5-transaction updates of Fig. 4).

Validators, relayers, fishermen and the examples all drive the guest
through this API.
"""

from __future__ import annotations

from repro import ids
from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto.keys import Keypair, PublicKey, Signature
from repro.errors import HostUnavailableError
from repro.guest import instructions as ins
from repro.guest.contract import GuestContract
from repro.host.chain import HostChain
from repro.host.fees import BaseFee, FeeStrategy
from repro.host.transaction import Instruction, SigVerify, Transaction, TxReceipt
from repro.lightclient.chunked import plan_update_chunks
from repro.lightclient.tendermint import LightClientUpdate

_buffer_ids = ids.mint("guest.buffer")


@dataclass
class LcUpdateResult:
    """Outcome of one chunked light-client update (Fig. 4/5 data point)."""

    height: int
    transaction_count: int
    signature_count: int
    total_fee: int
    #: Host times of the first and last executed transaction (§V-A's
    #: latency definition for light-client updates).
    first_tx_time: float
    last_tx_time: float
    success: bool

    @property
    def latency(self) -> float:
        return self.last_tx_time - self.first_tx_time


@dataclass
class DeliveryResult:
    """Outcome of one bundled packet delivery / ack / timeout."""

    transaction_count: int
    total_fee: int
    slot: int
    success: bool
    error: Optional[str] = None
    #: How many packet operations the bundle carried (1 unless batched).
    packet_count: int = 1


@dataclass(frozen=True, slots=True)
class BatchOp:
    """One packet operation queued for a batched delivery bundle."""

    kind: str  # "recv" | "ack" | "timeout"
    packet: object
    proof: object
    proof_height: int
    ack: object = None

    def msg_bytes(self) -> bytes:
        msg = ins.BufferedPacketMsg(
            packet_bytes=self.packet.to_bytes(),
            proof_bytes=self.proof.to_bytes(),
            proof_height=self.proof_height,
            ack_bytes=self.ack.to_bytes() if self.ack is not None else b"",
        )
        return msg.to_bytes()

    def exec_op(self) -> int:
        return {"recv": ins.Op.RECV_EXEC, "ack": ins.Op.ACK_EXEC,
                "timeout": ins.Op.TIMEOUT_EXEC}[self.kind]


class GuestApi:
    """Builds and submits Guest Contract transactions for one payer."""

    #: Resubmission cadence while the host RPC refuses (chaos blackout).
    #: The multi-transaction flows below (chunked LC updates, batched
    #: confirms) park their cursor and retry at this period instead of
    #: losing their place mid-sequence.
    blackout_retry_seconds: float = 2.0

    def __init__(self, chain: HostChain, contract: GuestContract,
                 payer, default_fee: Optional[FeeStrategy] = None) -> None:
        self.chain = chain
        self.contract = contract
        self.payer = payer
        self.default_fee = default_fee or BaseFee()

    # ------------------------------------------------------------------
    # Single-transaction operations
    # ------------------------------------------------------------------

    def _single(self, data: bytes, fee: Optional[FeeStrategy] = None,
                sig_verifies: tuple[SigVerify, ...] = (),
                compute_budget: Optional[int] = None,
                on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        tx = Transaction(
            payer=self.payer,
            instructions=(Instruction(
                self.contract.program_id,
                (self.contract.state_account, self.contract.treasury),
                data,
            ),),
            fee_strategy=fee or self.default_fee,
            sig_verifies=sig_verifies,
            compute_budget=compute_budget,
        )
        self.chain.submit(tx, on_result=on_result)

    def send_packet(self, port: str, channel: str, payload: bytes,
                    timeout_timestamp: float = 0.0,
                    fee: Optional[FeeStrategy] = None,
                    compute_budget: Optional[int] = None,
                    on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        self._single(
            ins.send_packet(port, channel, payload, timeout_timestamp),
            fee=fee, compute_budget=compute_budget, on_result=on_result,
        )

    def send_packet_via_bundle(self, port: str, channel: str, payload: bytes,
                               tip_lamports: int,
                               timeout_timestamp: float = 0.0,
                               on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        """Send a packet through a block bundle (the Jito path of §V-A:
        the 3.02 USD cost cluster of Fig. 3)."""
        tx = Transaction(
            payer=self.payer,
            instructions=(Instruction(
                self.contract.program_id,
                (self.contract.state_account, self.contract.treasury),
                ins.send_packet(port, channel, payload, timeout_timestamp),
            ),),
            fee_strategy=BaseFee(),
        )

        def collect(receipts: list[TxReceipt]) -> None:
            if on_result is not None:
                on_result(receipts[0])

        self.chain.submit_bundle([tx], tip_lamports=tip_lamports, on_result=collect)

    def generate_block(self, fee: Optional[FeeStrategy] = None,
                       on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        self._single(ins.generate_block(), fee=fee, on_result=on_result)

    def sign_block(self, height: int, validator: Keypair, message: bytes,
                   fee: Optional[FeeStrategy] = None,
                   compute_budget: int = 200_000,
                   on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        """Submit a validator's signature (Alg. 2 upper half): the
        signature rides both as instruction data (stored in the block)
        and as a precompile entry (verified by the runtime)."""
        signature = validator.sign(message)
        self._single(
            ins.sign_block(height, validator.public_key, signature),
            fee=fee,
            sig_verifies=(SigVerify(validator.public_key, message, signature),),
            compute_budget=compute_budget,
            on_result=on_result,
        )

    def sibling_update(self, client_id: str, height: int,
                       on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        """Adopt a finalised sibling-guest height (idempotent; the
        cross-guest counterpart of a light-client update)."""
        self._single(ins.sibling_update(client_id, height), on_result=on_result)

    def stake(self, validator_key: PublicKey, lamports: int,
              on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        self._single(ins.stake(validator_key, lamports), on_result=on_result)

    def unstake(self, validator_key: PublicKey, lamports: int,
                on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        self._single(ins.unstake(validator_key, lamports), on_result=on_result)

    def withdraw_stake(self, validator_key: PublicKey,
                       on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        self._single(ins.withdraw_stake(validator_key), on_result=on_result)

    def claim_rewards(self, validator: Keypair,
                      on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        """Withdraw accrued signing rewards to this API's payer (§V-C)."""
        message = ins.claim_message(validator.public_key, bytes(self.payer))
        signature = validator.sign(message)
        self._single(
            ins.claim_rewards(validator.public_key),
            sig_verifies=(SigVerify(validator.public_key, message, signature),),
            on_result=on_result,
        )

    def confirm_ack(self, port: str, channel: str, sequence: int,
                    on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        self._single(ins.confirm_ack(port, channel, sequence), on_result=on_result)

    def confirm_acks(self, confirms: list[tuple[str, str, int]],
                     on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        """Seal several delivered acks with one multi-instruction
        transaction per ~two dozen confirms, instead of one transaction
        each — the ack-sealing counterpart of BATCH_EXEC coalescing."""
        if not confirms:
            return
        per_tx = 24
        for start in range(0, len(confirms), per_tx):
            group = confirms[start : start + per_tx]
            tx = Transaction(
                payer=self.payer,
                instructions=tuple(
                    Instruction(
                        self.contract.program_id,
                        (self.contract.state_account, self.contract.treasury),
                        ins.confirm_ack(port, channel, sequence),
                    )
                    for port, channel, sequence in group
                ),
                fee_strategy=self.default_fee,
            )
            try:
                self.chain.submit(tx, on_result=on_result)
            except HostUnavailableError:
                # Blackout mid-flush: park the unsent remainder and
                # resume from this exact group once the RPC answers.
                self.chain.sim.trace.count("chaos.confirms.deferred")
                self.chain.sim.schedule(
                    self.blackout_retry_seconds,
                    self.confirm_acks, list(confirms[start:]), on_result,
                )
                return

    def submit_evidence(self, offender: PublicKey, height: int,
                        fingerprint: bytes, signature: Signature,
                        message: bytes,
                        on_result: Optional[Callable[[TxReceipt], None]] = None) -> None:
        """Fisherman path (§III-C): ship the offending signature."""
        from repro.encoding import encode_bytes
        payload = bytes(offender) + _varint(height) + encode_bytes(fingerprint)
        self._single(
            ins.evidence(1, payload),
            sig_verifies=(SigVerify(offender, message, signature),),
            on_result=on_result,
        )

    def submit_accountability_proof(
            self, proof,
            tip_lamports: int = 10_000,
            on_done: Optional[Callable[[DeliveryResult], None]] = None) -> None:
        """Prosecute an equivocation on chain (docs/ACCOUNTABILITY.md).

        An :class:`~repro.accountability.AccountabilityProof` carries two
        full signature sets, far past the transaction cap, so it is
        staged through CHUNK transactions and executed atomically as one
        bundle — the same path oversized packets take.
        """
        self._buffered_exec(proof.to_bytes(), ins.accountability,
                            tip_lamports, on_done)

    def submit_handshake(self, msg,
                         on_done: Optional[Callable[[DeliveryResult], None]] = None) -> None:
        """Ship one IBC handshake datagram to the guest — inline when it
        fits one transaction, staged through chunks otherwise."""
        from repro.ibc.messages import encode_handshake
        from repro.lightclient.chunked import usable_chunk_bytes
        msg_bytes = encode_handshake(msg)
        if len(msg_bytes) + 16 <= usable_chunk_bytes(self.chain.config.max_transaction_bytes):
            def single_done(receipt: TxReceipt) -> None:
                if on_done is not None:
                    on_done(DeliveryResult(
                        transaction_count=1, total_fee=receipt.fee_paid,
                        slot=receipt.slot, success=receipt.success,
                        error=receipt.error,
                    ))
            self._single(ins.handshake(msg_bytes), on_result=single_done)
        else:
            self._buffered_exec(msg_bytes, ins.handshake_exec, 10_000, on_done)

    # ------------------------------------------------------------------
    # Chunked light-client update (Fig. 4/5)
    # ------------------------------------------------------------------

    def submit_lc_update(self, update: LightClientUpdate,
                         window: int = 4,
                         fee: Optional[FeeStrategy] = None,
                         on_done: Optional[Callable[[LcUpdateResult], None]] = None) -> None:
        """Ship one counterparty header to the guest's light client.

        Transactions are submitted ``window`` at a time (real relayers
        rate-limit to keep their fee bills predictable and their
        transactions ordered), with the finalize transaction strictly
        last.  The result records the §V-A latency: time between the
        first and last executed host transaction.
        """
        plan = plan_update_chunks(
            update, self.contract.known_valset_hashes(),
            tx_size_limit=self.chain.config.max_transaction_bytes,
            tracer=self.chain.sim.trace if self.chain.sim.trace.enabled else None,
        )
        buffer_id = next(_buffer_ids)
        fee = fee or self.default_fee

        transactions: list[Transaction] = []
        total_chunks = len(plan.data_chunks)
        for index, chunk in enumerate(plan.data_chunks):
            transactions.append(Transaction(
                payer=self.payer,
                instructions=(Instruction(
                    self.contract.program_id,
                    (self.contract.state_account,),
                    ins.chunk(buffer_id, index, total_chunks, chunk),
                ),),
                fee_strategy=fee,
            ))
        for batch in plan.signature_batches:
            entries = tuple(
                SigVerify(public_key, plan.sign_message, signature)
                for public_key, signature in batch
            )
            transactions.append(Transaction(
                payer=self.payer,
                instructions=(Instruction(
                    self.contract.program_id,
                    (self.contract.state_account,),
                    ins.lc_sig_batch(buffer_id),
                ),),
                fee_strategy=fee,
                sig_verifies=entries,
            ))
        finalize = Transaction(
            payer=self.payer,
            instructions=(Instruction(
                self.contract.program_id,
                (self.contract.state_account,),
                ins.lc_finalize(buffer_id),
            ),),
            fee_strategy=fee,
        )

        state = {
            "first": None, "last": 0.0, "fees": 0, "ok": True,
            "queue": list(transactions), "in_flight": 0, "finalized": False,
        }

        def finish(receipt: TxReceipt) -> None:
            _track(state, receipt)
            if on_done is not None:
                on_done(LcUpdateResult(
                    height=update.header.height,
                    transaction_count=plan.transaction_count,
                    signature_count=plan.signature_count,
                    total_fee=state["fees"],
                    first_tx_time=state["first"] if state["first"] is not None else receipt.time,
                    last_tx_time=state["last"],
                    success=state["ok"] and receipt.success,
                ))

        def pump(receipt: Optional[TxReceipt] = None) -> None:
            if receipt is not None:
                _track(state, receipt)
                state["in_flight"] -= 1
            while state["queue"] and state["in_flight"] < window:
                tx = state["queue"][0]
                try:
                    self.chain.submit(tx, on_result=pump)
                except HostUnavailableError:
                    # Blackout mid-stream: keep the cursor where it is
                    # and resume the chunk sequence once the RPC answers
                    # (the staged buffer on-chain is unaffected).
                    self.chain.sim.trace.count("chaos.lc_update.stalled")
                    self.chain.sim.schedule(self.blackout_retry_seconds, pump)
                    return
                state["queue"].pop(0)
                state["in_flight"] += 1
            if not state["queue"] and state["in_flight"] == 0 and not state["finalized"]:
                try:
                    self.chain.submit(finalize, on_result=finish)
                except HostUnavailableError:
                    self.chain.sim.trace.count("chaos.lc_update.stalled")
                    self.chain.sim.schedule(self.blackout_retry_seconds, pump)
                    return
                state["finalized"] = True

        pump()

    # ------------------------------------------------------------------
    # Bundled packet operations (§V-A's 4–5 transactions, one block)
    # ------------------------------------------------------------------

    def _buffered_exec(self, msg_bytes: bytes,
                       exec_ins_for: Callable[[int], bytes],
                       tip_lamports: int,
                       on_done: Optional[Callable[[DeliveryResult], None]],
                       prelude: tuple[bytes, ...] = ()) -> None:
        from repro.lightclient.chunked import usable_chunk_bytes
        buffer_id = next(_buffer_ids)
        exec_ins = exec_ins_for(buffer_id)
        chunk_size = usable_chunk_bytes(self.chain.config.max_transaction_bytes)
        chunks = [
            msg_bytes[offset : offset + chunk_size]
            for offset in range(0, len(msg_bytes), chunk_size)
        ] or [b""]
        # Bundle members execute in creation order, so prelude
        # instructions (e.g. an idempotent SIBLING_UPDATE) run strictly
        # before the exec — atomic update-then-prove in one host block.
        transactions = [
            Transaction(
                payer=self.payer,
                instructions=(Instruction(
                    self.contract.program_id,
                    (self.contract.state_account, self.contract.treasury),
                    data,
                ),),
                fee_strategy=BaseFee(),
            )
            for data in prelude
        ]
        transactions += [
            Transaction(
                payer=self.payer,
                instructions=(Instruction(
                    self.contract.program_id,
                    (self.contract.state_account,),
                    ins.chunk(buffer_id, index, len(chunks), chunk),
                ),),
                fee_strategy=BaseFee(),
            )
            for index, chunk in enumerate(chunks)
        ]
        transactions.append(Transaction(
            payer=self.payer,
            instructions=(Instruction(
                self.contract.program_id,
                (self.contract.state_account, self.contract.treasury),
                exec_ins,
            ),),
            fee_strategy=BaseFee(),
        ))

        def collect(receipts: list[TxReceipt]) -> None:
            if on_done is not None:
                failures = [r for r in receipts if not r.success]
                on_done(DeliveryResult(
                    transaction_count=len(receipts),
                    total_fee=sum(r.fee_paid for r in receipts),
                    slot=receipts[-1].slot,
                    success=not failures,
                    error=failures[0].error if failures else None,
                ))

        self.chain.submit_bundle(transactions, tip_lamports=tip_lamports,
                                 on_result=collect)

    def deliver_packet(self, packet, proof, proof_height: int,
                       tip_lamports: int = 10_000,
                       on_done: Optional[Callable[[DeliveryResult], None]] = None,
                       prelude: tuple[bytes, ...] = ()) -> None:
        """ReceivePacket: stage packet + proof, execute — one atomic
        bundle, hence one host block (§V-A)."""
        msg = ins.BufferedPacketMsg(
            packet_bytes=packet.to_bytes(),
            proof_bytes=proof.to_bytes(),
            proof_height=proof_height,
        )
        self._buffered_exec(msg.to_bytes(), ins.recv_exec, tip_lamports,
                            on_done, prelude=prelude)

    def acknowledge_packet(self, packet, ack, proof, proof_height: int,
                           tip_lamports: int = 10_000,
                           on_done: Optional[Callable[[DeliveryResult], None]] = None,
                           prelude: tuple[bytes, ...] = ()) -> None:
        msg = ins.BufferedPacketMsg(
            packet_bytes=packet.to_bytes(),
            proof_bytes=proof.to_bytes(),
            proof_height=proof_height,
            ack_bytes=ack.to_bytes(),
        )
        self._buffered_exec(msg.to_bytes(), ins.ack_exec, tip_lamports,
                            on_done, prelude=prelude)

    def timeout_packet(self, packet, proof, proof_height: int,
                       tip_lamports: int = 10_000,
                       on_done: Optional[Callable[[DeliveryResult], None]] = None,
                       prelude: tuple[bytes, ...] = ()) -> None:
        msg = ins.BufferedPacketMsg(
            packet_bytes=packet.to_bytes(),
            proof_bytes=proof.to_bytes(),
            proof_height=proof_height,
        )
        self._buffered_exec(msg.to_bytes(), ins.timeout_exec, tip_lamports,
                            on_done, prelude=prelude)

    # ------------------------------------------------------------------
    # Batched packet operations (many packets, one bundle)
    # ------------------------------------------------------------------

    def batch_inline_budget(self) -> int:
        """Instruction-data bytes available for inline batch entries."""
        from repro.lightclient.chunked import usable_chunk_bytes
        # Leave headroom for the opcode byte and the entry-count varint.
        return usable_chunk_bytes(self.chain.config.max_transaction_bytes) - 8


    def deliver_batch(self, ops: list[BatchOp], tip_lamports: int = 10_000,
                      on_done: Optional[Callable[[DeliveryResult], None]] = None) -> None:
        """Coalesce several packet operations into one atomic bundle.

        Small messages ride inline in the single BATCH_EXEC transaction;
        messages that would blow the 1232-byte cap are staged through
        CHUNK instructions — packed densely, several buffers' chunks per
        transaction — and referenced by buffer id.  Against per-packet
        delivery this drops the host transaction count from
        ``N * (chunks + 1)`` to roughly ``total_bytes / chunk_size + 1``
        and the bundle count from N to 1: the §V-A per-packet cost
        amortises across the batch.
        """
        if not ops:
            raise ValueError("empty delivery batch")
        budget = self.batch_inline_budget()
        limit = self.chain.config.max_transaction_bytes
        # Envelope + payer signature + the {payer, program, state} keys.
        base = 38 + 64 + 3 * 32
        # Conservative bound per chunk instruction on top of its piece:
        # instruction frame (5) plus the chunk header varints (<= 16).
        ins_budget = 21
        min_piece = 128

        entries: list[ins.BatchEntry] = []
        transactions: list[Transaction] = []
        current: list[Instruction] = []
        used = base

        def flush() -> None:
            nonlocal current, used
            if current:
                transactions.append(Transaction(
                    payer=self.payer, instructions=tuple(current),
                    fee_strategy=BaseFee(),
                ))
                current = []
            used = base

        def stage(msg_bytes: bytes) -> int:
            """Append CHUNK instructions for ``msg_bytes``, filling the
            open transaction before starting new ones.  Both the sizing
            pass and the emitting pass use the same conservative byte
            accounting, so their transaction boundaries agree."""
            nonlocal used
            buffer_id = next(_buffer_ids)
            takes: list[int] = []
            simulated, offset = used, 0
            while offset < len(msg_bytes) or not takes:
                space = limit - simulated - ins_budget
                if space < min_piece and simulated > base:
                    simulated = base
                    continue
                take = min(space, len(msg_bytes) - offset)
                takes.append(take)
                offset += take
                simulated += ins_budget + take
            offset = 0
            for index, take in enumerate(takes):
                if used + ins_budget + take > limit:
                    flush()
                current.append(Instruction(
                    self.contract.program_id,
                    (self.contract.state_account,),
                    ins.chunk(buffer_id, index, len(takes),
                              msg_bytes[offset : offset + take]),
                ))
                used += ins_budget + take
                offset += take
            return buffer_id

        inline_used = 0
        for op in ops:
            msg_bytes = op.msg_bytes()
            entry = ins.BatchEntry(kind=int(op.exec_op()), inline=msg_bytes)
            if inline_used + entry.encoded_bytes() > budget:
                entry = ins.BatchEntry(
                    kind=int(op.exec_op()), buffer_id=stage(msg_bytes),
                )
            entries.append(entry)
            inline_used += entry.encoded_bytes()
        flush()
        transactions.append(Transaction(
            payer=self.payer,
            instructions=(Instruction(
                self.contract.program_id,
                (self.contract.state_account, self.contract.treasury),
                ins.batch_exec(entries),
            ),),
            fee_strategy=BaseFee(),
        ))

        def collect(receipts: list[TxReceipt]) -> None:
            if on_done is not None:
                failures = [r for r in receipts if not r.success]
                on_done(DeliveryResult(
                    transaction_count=len(receipts),
                    total_fee=sum(r.fee_paid for r in receipts),
                    slot=receipts[-1].slot,
                    success=not failures,
                    error=failures[0].error if failures else None,
                    packet_count=len(ops),
                ))

        self.chain.submit_bundle(transactions, tip_lamports=tip_lamports,
                                 on_result=collect)


def _track(state: dict, receipt: TxReceipt) -> None:
    if state["first"] is None or receipt.time < state["first"]:
        state["first"] = receipt.time
    state["last"] = max(state["last"], receipt.time)
    state["fees"] += receipt.fee_paid
    if not receipt.success:
        state["ok"] = False


def _varint(value: int) -> bytes:
    from repro.encoding import encode_varint
    return encode_varint(value)
