"""The Proof-of-Stake staking pool (§III-B).

Candidates bond assets with the Guest Contract; at each epoch boundary
the contract selects the highest-staked candidates as the next epoch's
validators.  Exiting stake stays locked for the unbonding period (one
week in the deployment, §IV), and proven misbehaviour slashes a fraction
of the offender's bond (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from repro.crypto.keys import PublicKey
from repro.errors import StakeError
from repro.guest.config import GuestConfig
from repro.guest.epoch import Epoch


@dataclass
class _Bond:
    stake: int = 0
    #: Set when the candidate requested exit: (amount, release_time).
    unbonding: list[tuple[int, float]] = field(default_factory=list)


class StakingPool:
    """Bonds, unbonding queues, slashing and validator selection."""

    def __init__(self, config: GuestConfig) -> None:
        self._config = config
        self._bonds: dict[PublicKey, _Bond] = {}
        self.slashed_total: int = 0

    # ------------------------------------------------------------------
    # Bonding
    # ------------------------------------------------------------------

    def bond(self, candidate: PublicKey, amount: int) -> None:
        if amount <= 0:
            raise StakeError("bond amount must be positive")
        self._bonds.setdefault(candidate, _Bond()).stake += amount

    def stake_of(self, candidate: PublicKey) -> int:
        bond = self._bonds.get(candidate)
        return bond.stake if bond else 0

    def request_unbond(self, candidate: PublicKey, amount: int, now: float) -> float:
        """Start unbonding ``amount``; returns the release time."""
        bond = self._bonds.get(candidate)
        if bond is None or bond.stake < amount:
            raise StakeError(
                f"{candidate.short()} has {self.stake_of(candidate)} bonded, "
                f"cannot unbond {amount}"
            )
        if amount <= 0:
            raise StakeError("unbond amount must be positive")
        bond.stake -= amount
        release = now + self._config.unbonding_seconds
        bond.unbonding.append((amount, release))
        return release

    def withdrawable(self, candidate: PublicKey, now: float) -> int:
        bond = self._bonds.get(candidate)
        if bond is None:
            return 0
        return sum(amount for amount, release in bond.unbonding if release <= now)

    def withdraw(self, candidate: PublicKey, now: float) -> int:
        """Claim every matured unbonding entry; returns the total."""
        bond = self._bonds.get(candidate)
        if bond is None:
            return 0
        matured = [(a, r) for a, r in bond.unbonding if r <= now]
        bond.unbonding = [(a, r) for a, r in bond.unbonding if r > now]
        total = sum(a for a, _ in matured)
        if not bond.stake and not bond.unbonding:
            del self._bonds[candidate]
        return total

    # ------------------------------------------------------------------
    # Slashing (§III-C)
    # ------------------------------------------------------------------

    def slash(self, offender: PublicKey, fraction: Optional[Fraction] = None) -> int:
        """Burn a fraction of the offender's bonded *and* unbonding stake
        (unbonding stake is still at risk during the hold period — the
        reason §IV holds stake for a week after exit)."""
        fraction = fraction if fraction is not None else self._config.slash_fraction
        bond = self._bonds.get(offender)
        if bond is None:
            return 0
        slashed = (bond.stake * fraction.numerator) // fraction.denominator
        bond.stake -= slashed
        new_unbonding = []
        for amount, release in bond.unbonding:
            cut = (amount * fraction.numerator) // fraction.denominator
            slashed += cut
            new_unbonding.append((amount - cut, release))
        bond.unbonding = new_unbonding
        self.slashed_total += slashed
        return slashed

    def remove(self, offender: PublicKey) -> None:
        """Eject a candidate from future selection (stake keeps unbonding)."""
        bond = self._bonds.get(offender)
        if bond is None:
            return
        if bond.stake:
            release_never_needed = bond.stake
            bond.unbonding.append((release_never_needed, float("inf")))
            bond.stake = 0

    # ------------------------------------------------------------------
    # Selection (§III-B: "the contract selects the Validators with the
    # most stake")
    # ------------------------------------------------------------------

    def select_epoch(self, epoch_id: int) -> Epoch:
        eligible = [
            (candidate, bond.stake)
            for candidate, bond in self._bonds.items()
            if bond.stake >= self._config.min_stake_lamports
        ]
        # Highest stake first; ties broken by key bytes for determinism.
        eligible.sort(key=lambda item: (-item[1], bytes(item[0])))
        chosen = dict(eligible[: self._config.max_validators])
        if not chosen:
            raise StakeError("no eligible validator candidates")
        total = sum(chosen.values())
        return Epoch(
            epoch_id=epoch_id,
            validators=chosen,
            quorum_stake=self._config.quorum_stake(total),
        )

    def release_all(self, now: float) -> int:
        """§VI-A self-destruction: every bond matures immediately.

        Returns the total released.  Candidates then recover everything
        through ordinary withdrawals — the escape hatch for the
        last-validator bank-run problem.
        """
        released = 0
        for bond in self._bonds.values():
            if bond.stake:
                bond.unbonding.append((bond.stake, now))
                released += bond.stake
                bond.stake = 0
            matured = []
            for amount, release in bond.unbonding:
                if release > now:
                    released += amount
                    matured.append((amount, now))
                else:
                    matured.append((amount, release))
            bond.unbonding = matured
        return released

    def candidate_count(self) -> int:
        return len(self._bonds)

    def eligible_count(self) -> int:
        """Candidates that would survive :meth:`select_epoch` selection."""
        return sum(
            1 for bond in self._bonds.values()
            if bond.stake >= self._config.min_stake_lamports
        )

    def is_eligible(self, candidate: PublicKey) -> bool:
        return self.stake_of(candidate) >= self._config.min_stake_lamports

    def locked_total(self) -> int:
        """All lamports the pool holds: bonded plus every unbonding entry.

        Slashing accounting pivots on this number — a slash of ``s``
        lamports must reduce it by exactly ``s`` (stake conservation).
        """
        total = 0
        for bond in self._bonds.values():
            total += bond.stake
            total += sum(amount for amount, _ in bond.unbonding)
        return total
