"""The Guest Contract: Alg. 1 of the paper, as a host program.

The contract is the guest blockchain.  It owns the sealable trie (the
guest's provable state), produces guest blocks, collects validator
signatures until a stake quorum finalises each block, runs the embedded
IBC module, and hosts the chunked Tendermint light client of the
counterparty.  Everything arrives as host instructions under the host
runtime's constraints — transaction size, compute budget, per-signature
fees — which is where the measured costs of §V come from.

Instruction map (see :mod:`repro.guest.instructions`):

=================  =======================================================
``SEND_PACKET``    Alg. 1 ``SendPacket``: collect fees, commit the packet
``GENERATE_BLOCK`` Alg. 1 ``GenerateBlock``: head finalised ∧ (state
                   changed ∨ age ≥ Δ) → new block, ``NewBlock`` event
``SIGN_BLOCK``     Alg. 1 ``Sign``: runtime-verified validator signature;
                   on quorum → ``FinalisedBlock`` event
``CHUNK``          stage bytes of an oversized message into a buffer
``LC_SIG_BATCH``   credit runtime-verified commit signatures to a buffer
``LC_FINALIZE``    assemble + apply a counterparty light-client update
``RECV_EXEC``      Alg. 1 ``ReceivePacket`` over a staged packet + proof
``ACK_EXEC``       process a counterparty acknowledgement (staged proof)
``TIMEOUT_EXEC``   cancel an expired packet (staged non-membership proof)
``CONFIRM_ACK``    seal a no-longer-needed ack entry (§III-A)
``STAKE`` etc.     §III-B Proof-of-Stake staking pool
``EVIDENCE``       §III-C Fisherman misbehaviour reports → slashing
``ACCOUNTABILITY`` staged equivocation proof → slash the double-signing
                   quorum intersection (docs/ACCOUNTABILITY.md)
=================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.accountability import (
    AccountabilityProof,
    apply_accountability_slash,
    verify_proof,
)
from repro.crypto.hashing import Hash
from repro.crypto.keys import PublicKey, Signature
from repro.encoding import Reader
from repro.errors import (
    AccountabilityError,
    AlreadySignedError,
    EquivocationError,
    GuestError,
    HeadNotFinalisedError,
    ProgramError,
    StaleBlockError,
    UnknownBlockError,
)
from repro.guest.block import GuestBlock, GuestBlockHeader, sign_message
from repro.guest.config import GuestConfig
from repro.guest.epoch import Epoch
from repro.guest.instructions import BufferedPacketMsg, Op
from repro.guest.staking import StakingPool
from repro.host.accounts import Address
from repro.host.programs import InvokeContext, Program
from repro.ibc.apps.transfer import Bank, TransferApp
from repro.ibc.host import IbcHost
from repro.ibc.identifiers import ChannelId, PortId
from repro.ibc.packet import Acknowledgement, Packet
from repro.lightclient.tendermint import (
    CometHeader,
    TendermintLightClient,
    ValidatorSet,
)
from repro.trie.proof import MembershipProof, NonMembershipProof
from repro.trie.store import ProvableStore


@dataclass
class _Buffer:
    """A staging buffer for one oversized message."""

    owner: Address
    total_chunks: int
    chunks: dict[int, bytes] = field(default_factory=dict)
    #: Runtime-verified (public key, message) pairs credited so far.
    verified_signers: list[tuple[PublicKey, bytes]] = field(default_factory=list)
    #: The same entries with their raw signatures retained, so the
    #: counterparty client can build accountability proofs on conflict.
    verified_entries: list[tuple[PublicKey, bytes, Signature]] = field(
        default_factory=list)

    def is_complete(self) -> bool:
        return len(self.chunks) == self.total_chunks

    def assembled(self) -> bytes:
        if not self.is_complete():
            raise ProgramError(
                f"buffer has {len(self.chunks)} of {self.total_chunks} chunks"
            )
        return b"".join(self.chunks[i] for i in range(self.total_chunks))

    def byte_size(self) -> int:
        return sum(len(chunk) for chunk in self.chunks.values())


class GuestContract(Program):
    """The guest blockchain, deployed as a program on the host chain."""

    def __init__(self, config: GuestConfig, counterparty_chain_id: str,
                 program_id: Optional[Address] = None,
                 namespace: str = "guest",
                 seal_scheduler=None) -> None:
        self.config = config
        #: The guest's chain id *and* its host account namespace.  Every
        #: address the contract owns derives from it, so N guests on one
        #: host never share an account (per-guest fee/state isolation).
        self.namespace = namespace
        self._program_id = program_id or Address.derive(f"{namespace}-contract")
        self.state_account = Address.derive(f"{namespace}-state")
        self.treasury = Address.derive(f"{namespace}-treasury")

        self.store = ProvableStore()
        # Sealing policy is per-operator economics (root-neutral); the
        # default eager policy matches the paper's "seal immediately".
        self.ibc = IbcHost(namespace, store=self.store, seal_receipts=True,
                           seal_scheduler=seal_scheduler)
        self.bank = Bank()
        self.transfer_port = PortId("transfer")
        self.transfer = TransferApp(self.bank, self.transfer_port)
        self.ibc.bind_port(self.transfer_port, self.transfer)

        self.staking = StakingPool(config)
        self.blocks: list[GuestBlock] = []
        self.epochs: dict[int, Epoch] = {}
        self.epochs_by_hash: dict[Hash, Epoch] = {}
        self.current_epoch: Optional[Epoch] = None
        self._epoch_start_slot = 0
        #: Packets committed since the last block, waiting for inclusion.
        self._pending_packets: list[Packet] = []
        self._packets_by_height: dict[int, tuple[Packet, ...]] = {}
        #: Frozen store views per finalised height, for serving proofs.
        self._state_views: dict[int, ProvableStore] = {}
        self._buffers: dict[tuple[Address, int], _Buffer] = {}
        self.counterparty_client = TendermintLightClient(
            counterparty_chain_id,
            ValidatorSet(members=()),
        )
        self.counterparty_client_id = self.ibc.create_client(self.counterparty_client)
        self.ibc.self_client_validator = self._validate_claim_about_guest
        self.fees_collected = 0
        #: Packet fees awaiting distribution at the next finalisation.
        self._undistributed_fees = 0
        #: Proof ids already prosecuted (double-prosecution protection).
        self.prosecuted_proofs: set[bytes] = set()
        #: One record per accepted ACCOUNTABILITY instruction, in order
        #: (the chaos soak folds these into ``BENCH_chaos.json``).
        self.accountability_slashes: list[dict] = []
        #: Lamports burned by accountability slashes (slashed minus the
        #: submitter rewards) — kept for stake-conservation accounting.
        self.burned_total = 0
        #: Accrued (unclaimed) signing rewards per validator (§V-C).
        self.reward_balances: dict[PublicKey, int] = {}
        self.initialized = False
        self.halted = False
        self._last_lc_update_time: Optional[float] = None
        #: Host compute units this contract consumed, across every
        #: instruction (the topology sweep partitions this per guest).
        self.compute_consumed = 0
        #: Sibling-guest light clients, by client id (cross-guest links).
        self.sibling_clients: dict = {}
        #: The forwarding middleware, once installed (multi-hop routing).
        self.forward = None
        #: Optional state-sync journal (see :meth:`attach_state_journal`).
        self.state_journal = None
        self._current_ctx: Optional[InvokeContext] = None

    @property
    def chain_id(self) -> str:
        return self.ibc.chain_id

    # ------------------------------------------------------------------
    # Program interface
    # ------------------------------------------------------------------

    @property
    def program_id(self) -> Address:
        return self._program_id

    def execute(self, ctx: InvokeContext, data: bytes) -> None:
        before = ctx.meter.consumed
        self._current_ctx = ctx
        try:
            self._execute(ctx, data)
        finally:
            self._current_ctx = None
            self.compute_consumed += ctx.meter.consumed - before

    def _execute(self, ctx: InvokeContext, data: bytes) -> None:
        if not data:
            raise ProgramError("empty instruction")
        opcode, payload = data[0], data[1:]
        if self.halted and opcode not in (Op.WITHDRAW_STAKE, Op.UNSTAKE):
            raise GuestError(
                "guest has self-destructed; only stake recovery remains"
            )
        reader = Reader(payload)
        if opcode == Op.SEND_PACKET:
            self._op_send_packet(ctx, reader)
        elif opcode == Op.GENERATE_BLOCK:
            self._op_generate_block(ctx)
        elif opcode == Op.SIGN_BLOCK:
            self._op_sign_block(ctx, reader)
        elif opcode == Op.STAKE:
            self._op_stake(ctx, reader)
        elif opcode == Op.UNSTAKE:
            self._op_unstake(ctx, reader)
        elif opcode == Op.WITHDRAW_STAKE:
            self._op_withdraw(ctx, reader)
        elif opcode == Op.CHUNK:
            self._op_chunk(ctx, reader)
        elif opcode == Op.LC_SIG_BATCH:
            self._op_lc_sig_batch(ctx, reader)
        elif opcode == Op.LC_FINALIZE:
            self._op_lc_finalize(ctx, reader)
        elif opcode == Op.RECV_EXEC:
            self._op_recv_exec(ctx, reader)
        elif opcode == Op.ACK_EXEC:
            self._op_ack_exec(ctx, reader)
        elif opcode == Op.TIMEOUT_EXEC:
            self._op_timeout_exec(ctx, reader)
        elif opcode == Op.CONFIRM_ACK:
            self._op_confirm_ack(ctx, reader)
        elif opcode == Op.EVIDENCE:
            self._op_evidence(ctx, reader)
        elif opcode == Op.ACCOUNTABILITY:
            self._op_accountability(ctx, reader)
        elif opcode == Op.HANDSHAKE:
            self._op_handshake(ctx, reader.read_bytes())
        elif opcode == Op.HANDSHAKE_EXEC:
            buffer = self._consume_buffer(ctx.payer, reader.read_varint())
            self._op_handshake(ctx, buffer.assembled())
        elif opcode == Op.BATCH_EXEC:
            self._op_batch_exec(ctx, reader)
        elif opcode == Op.SIBLING_UPDATE:
            self._op_sibling_update(ctx, reader)
        elif opcode == Op.SELF_DESTRUCT:
            self._op_self_destruct(ctx)
        elif opcode == Op.CLAIM_REWARDS:
            self._op_claim_rewards(ctx, reader)
        else:
            raise ProgramError(f"unknown opcode {opcode}")
        self._check_state_budget()

    # ------------------------------------------------------------------
    # Genesis (deploy-time, performed once by the deployer)
    # ------------------------------------------------------------------

    def initialize(self, ctx_slot: int, ctx_time: float) -> None:
        """Create the genesis block from the initial candidate set.

        Deployment-time action: the deployer has already funded the 10 MiB
        state account (§V-D) and the initial validators have bonded
        through STAKE instructions.
        """
        if self.initialized:
            raise GuestError("guest already initialized")
        epoch = self.staking.select_epoch(epoch_id=0)
        self._adopt_epoch(epoch)
        self.current_epoch = epoch
        self._epoch_start_slot = ctx_slot
        header = GuestBlockHeader(
            height=0,
            prev_hash=Hash.zero(),
            timestamp=ctx_time,
            host_slot=ctx_slot,
            state_root=self.store.root_hash,
            epoch_id=0,
            epoch_hash=epoch.canonical_hash(),
        )
        genesis = GuestBlock(header=header, finalised=True,
                             generated_at=ctx_time, finalised_at=ctx_time)
        self.blocks.append(genesis)
        self._packets_by_height[0] = ()
        self._state_views[0] = self.store.snapshot()
        if self.state_journal is not None:
            self.state_journal.mark_height(0)
        self.initialized = True

    def _adopt_epoch(self, epoch: Epoch) -> None:
        self.epochs[epoch.epoch_id] = epoch
        self.epochs_by_hash[epoch.canonical_hash()] = epoch

    # ------------------------------------------------------------------
    # Alg. 1: SendPacket
    # ------------------------------------------------------------------

    def _op_send_packet(self, ctx: InvokeContext, reader: Reader) -> None:
        self._require_initialized()
        port = PortId(reader.read_bytes().decode())
        channel = ChannelId(reader.read_bytes().decode())
        payload = reader.read_bytes()
        timeout = reader.read_varint() / 1000.0
        reader.expect_end()

        fee = self.config.send_fee_lamports + self.config.send_fee_per_byte * len(payload)
        ctx.transfer(ctx.payer, self.treasury, fee)  # collect_fees (Alg. 1 l.7)
        self.fees_collected += fee
        self._undistributed_fees += fee

        ctx.meter.charge_hash(len(payload))
        ctx.meter.charge_trie_nodes(16)
        packet = self.ibc.send_packet(port, channel, payload, timeout)
        self._pending_packets.append(packet)
        trace = ctx.chain.sim.trace
        trace.count("guest.packets.sent")
        # Phase 1 of the Fig. 2 decomposition: committed -> included in a
        # generated guest block (closed by GENERATE_BLOCK).
        trace.begin("packet.block_wait", key=packet.sequence, actor="guest")
        ctx.emit("PacketCommitted", guest=self.chain_id,
                 height_hint=self.head.height + 1,
                 sequence=packet.sequence, channel=str(channel))

    # ------------------------------------------------------------------
    # Alg. 1: GenerateBlock
    # ------------------------------------------------------------------

    @property
    def head(self) -> GuestBlock:
        if not self.blocks:
            raise GuestError("guest has no blocks (not initialized)")
        return self.blocks[-1]

    def _op_generate_block(self, ctx: InvokeContext) -> None:
        self._require_initialized()
        head = self.head
        if not head.finalised:
            raise HeadNotFinalisedError(
                f"head block {head.height} awaits quorum"
            )
        age = ctx.unix_time - head.header.timestamp
        state_changed = self.store.root_hash != head.header.state_root
        if not state_changed and age < self.config.delta_seconds:
            raise StaleBlockError(
                f"state unchanged and head is only {age:.0f} s old "
                f"(Δ = {self.config.delta_seconds:.0f} s)"
            )

        assert self.current_epoch is not None
        epoch = self.current_epoch
        rotate = (
            ctx.slot - self._epoch_start_slot >= self.config.epoch_length_host_blocks
        )
        next_epoch: Optional[Epoch] = None
        if rotate:
            try:
                next_epoch = self.staking.select_epoch(epoch.epoch_id + 1)
            except GuestError:
                next_epoch = None  # no eligible candidates: stay put
        header = GuestBlockHeader(
            height=head.height + 1,
            prev_hash=head.header.block_hash(),
            timestamp=ctx.unix_time,
            host_slot=ctx.slot,
            state_root=self.store.root_hash,
            epoch_id=epoch.epoch_id,
            epoch_hash=epoch.canonical_hash(),
            packet_hashes=tuple(p.commitment_hash() for p in self._pending_packets),
            last_in_epoch=next_epoch is not None,
            next_epoch_hash=next_epoch.canonical_hash() if next_epoch else None,
        )
        block = GuestBlock(header=header, generated_at=ctx.unix_time)
        self.blocks.append(block)
        self._packets_by_height[header.height] = tuple(self._pending_packets)
        trace = ctx.chain.sim.trace
        trace.count("guest.blocks.generated")
        trace.gauge("guest.block.packets", len(self._pending_packets))
        trace.gauge("guest.store.nodes", self.store.node_count())
        trace.gauge("guest.store.bytes", self.store.storage_bytes())
        # Block production -> quorum, per block and per carried packet
        # (phase 2 of the Fig. 2 decomposition; closed on finalisation).
        trace.begin("guest.block", key=header.height, actor="guest")
        for packet in self._pending_packets:
            trace.finish("packet.block_wait", key=packet.sequence,
                         height=header.height)
            trace.begin("packet.quorum_wait", key=packet.sequence, actor="guest")
        self._pending_packets = []
        self._state_views[header.height] = self.store.snapshot()
        if self.state_journal is not None:
            self.state_journal.mark_height(header.height)
        if next_epoch is not None:
            self._adopt_epoch(next_epoch)
            self.current_epoch = next_epoch
            self._epoch_start_slot = ctx.slot
        ctx.meter.charge_hash(256)
        ctx.emit("NewBlock", guest=self.chain_id,
                 height=header.height, header=header)

    # ------------------------------------------------------------------
    # Alg. 1: Sign
    # ------------------------------------------------------------------

    def _op_sign_block(self, ctx: InvokeContext, reader: Reader) -> None:
        self._require_initialized()
        height = reader.read_varint()
        public_key = PublicKey(reader.read(32))
        signature = Signature(reader.read(64))
        reader.expect_end()

        block = self.block_at(height)                      # Alg. 1 l.20–21
        epoch = self.epochs[block.header.epoch_id]
        if not epoch.is_validator(public_key):             # l.22
            raise GuestError(f"{public_key.short()} not in epoch {epoch.epoch_id}")
        if public_key in block.signers:                    # l.23
            raise AlreadySignedError(
                f"{public_key.short()} already signed block {height}"
            )
        message = block.header.sign_message()
        if not ctx.is_signature_verified(public_key, message):  # l.24
            raise GuestError("signature not verified by the runtime")

        trace = ctx.chain.sim.trace
        if block.finalised:
            trace.count("guest.signatures.after_quorum")
        block.add_signature(public_key, signature)         # l.25
        trace.count("guest.signatures")
        if not block.finalised and epoch.has_quorum(block.signer_set()):  # l.26–28
            block.finalised = True                          # l.29
            block.finalised_at = ctx.unix_time
            self._distribute_rewards(block, epoch)
            packets = self._packets_by_height.get(height, ())
            trace.count("guest.blocks.finalised")
            trace.finish("guest.block", key=height,
                         signatures=len(block.signers))
            for packet in packets:
                trace.finish("packet.quorum_wait", key=packet.sequence,
                             height=height)
            ctx.emit(                                      # l.30
                "FinalisedBlock",
                guest=self.chain_id,
                height=height,
                header=block.header,
                packets=packets,
                signatures=dict(block.signers),
                new_epoch=(
                    self.epochs_by_hash.get(block.header.next_epoch_hash)
                    if block.header.next_epoch_hash is not None else None
                ),
            )

    def _distribute_rewards(self, block: GuestBlock, epoch: Epoch) -> None:
        """Split the accrued packet fees among the finalising signers,
        pro rata by stake (the §V-C incentive the deployment lacked).

        Late signatures (after quorum) earn nothing — which is why
        rational validators skip already-finalised blocks."""
        share = self.config.signer_reward_share
        pool = (self._undistributed_fees * share.numerator) // share.denominator
        if pool <= 0:
            return
        signers = block.signer_set()
        signed_stake = epoch.signed_stake(signers)
        if signed_stake <= 0:
            return
        distributed = 0
        for signer in signers:
            amount = pool * epoch.stake(signer) // signed_stake
            if amount:
                self.reward_balances[signer] = (
                    self.reward_balances.get(signer, 0) + amount
                )
                distributed += amount
        self._undistributed_fees -= distributed

    def _op_claim_rewards(self, ctx: InvokeContext, reader: Reader) -> None:
        from repro.guest.instructions import claim_message
        public_key = PublicKey(reader.read(32))
        reader.expect_end()
        message = claim_message(public_key, bytes(ctx.payer))
        if not ctx.is_signature_verified(public_key, message):
            raise GuestError("reward claim not authorised by the validator key")
        amount = self.reward_balances.pop(public_key, 0)
        if amount <= 0:
            raise GuestError("no rewards accrued")
        ctx.accounts_db.transfer(self.treasury, ctx.payer, amount)
        ctx.emit("RewardsClaimed", guest=self.chain_id,
                 validator=public_key, amount=amount)

    def block_at(self, height: int) -> GuestBlock:
        if not 0 <= height < len(self.blocks):
            raise UnknownBlockError(f"no guest block at height {height}")
        return self.blocks[height]

    # ------------------------------------------------------------------
    # Staking (§III-B)
    # ------------------------------------------------------------------

    def _op_stake(self, ctx: InvokeContext, reader: Reader) -> None:
        public_key = PublicKey(reader.read(32))
        lamports = reader.read_varint()
        reader.expect_end()
        ctx.transfer(ctx.payer, self.treasury, lamports)
        self.staking.bond(public_key, lamports)

    def _op_unstake(self, ctx: InvokeContext, reader: Reader) -> None:
        public_key = PublicKey(reader.read(32))
        lamports = reader.read_varint()
        reader.expect_end()
        release = self.staking.request_unbond(public_key, lamports, ctx.unix_time)
        ctx.emit("UnbondScheduled", guest=self.chain_id,
                 validator=public_key, release_time=release)

    def _op_withdraw(self, ctx: InvokeContext, reader: Reader) -> None:
        public_key = PublicKey(reader.read(32))
        reader.expect_end()
        amount = self.staking.withdraw(public_key, ctx.unix_time)
        if amount == 0:
            raise GuestError("nothing withdrawable yet (unbonding hold)")
        ctx.accounts_db.transfer(self.treasury, ctx.payer, amount)

    # ------------------------------------------------------------------
    # Chunked uploads (the §IV workaround machinery)
    # ------------------------------------------------------------------

    def _op_chunk(self, ctx: InvokeContext, reader: Reader) -> None:
        buffer_id = reader.read_varint()
        index = reader.read_varint()
        total = reader.read_varint()
        data = reader.read_bytes()
        reader.expect_end()
        if total == 0 or index >= total:
            raise ProgramError(f"bad chunk index {index}/{total}")
        key = (ctx.payer, buffer_id)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = _Buffer(owner=ctx.payer, total_chunks=total)
            self._buffers[key] = buffer
        if buffer.total_chunks != total:
            raise ProgramError("chunk total mismatch across transactions")
        buffer.chunks[index] = data
        ctx.meter.charge_write(len(data))

    def _op_lc_sig_batch(self, ctx: InvokeContext, reader: Reader) -> None:
        buffer_id = reader.read_varint()
        reader.expect_end()
        buffer = self._buffer(ctx.payer, buffer_id)
        if not ctx.verified_signatures:
            raise ProgramError("no runtime-verified signatures on this transaction")
        buffer.verified_signers.extend(ctx.verified_signatures)
        buffer.verified_entries.extend(ctx.verified_signature_entries)

    def _buffer(self, owner: Address, buffer_id: int) -> _Buffer:
        buffer = self._buffers.get((owner, buffer_id))
        if buffer is None:
            raise ProgramError(f"unknown buffer {buffer_id}")
        return buffer

    def _consume_buffer(self, owner: Address, buffer_id: int) -> _Buffer:
        buffer = self._buffer(owner, buffer_id)
        del self._buffers[(owner, buffer_id)]
        return buffer

    # ------------------------------------------------------------------
    # Counterparty light-client update (LC_FINALIZE)
    # ------------------------------------------------------------------

    def _op_lc_finalize(self, ctx: InvokeContext, reader: Reader) -> None:
        buffer_id = reader.read_varint()
        reader.expect_end()
        limit = self.config.lc_min_update_interval
        if limit is not None and self._last_lc_update_time is not None:
            elapsed = ctx.unix_time - self._last_lc_update_time
            if elapsed < limit:
                raise GuestError(
                    f"light-client rate limit: {elapsed:.0f} s since the "
                    f"last update, minimum is {limit:.0f} s (the §VI-C "
                    "damage-limitation measure)"
                )
        buffer = self._consume_buffer(ctx.payer, buffer_id)
        staged = buffer.assembled()
        ctx.meter.charge_hash(len(staged))

        cursor = Reader(staged)
        header_len = int.from_bytes(cursor.read(4), "big")
        header = CometHeader.read_from(Reader(cursor.read(header_len)))
        valset_len = int.from_bytes(cursor.read(4), "big")
        valset: Optional[ValidatorSet] = None
        if valset_len:
            valset = ValidatorSet.read_from(Reader(cursor.read(valset_len)))
        cursor.expect_end()

        client = self.counterparty_client
        if valset is None:
            valset = client._known_valsets.get(header.validators_hash)
            if valset is None:
                raise ProgramError("validator set neither staged nor known")

        message = header.sign_bytes()
        signers = {
            public_key
            for public_key, signed in buffer.verified_signers
            if signed == message
        }
        signatures = {
            public_key: signature
            for public_key, signed, signature in buffer.verified_entries
            if signed == message
        }
        trace = ctx.chain.sim.trace
        try:
            client.apply_verified(header, signers, valset,
                                  signatures=signatures)
        except EquivocationError as exc:
            # Accountable mode: the client froze *and* built an
            # attributable proof.  Land the evidence on chain instead of
            # failing the transaction, so watchers can prosecute the
            # double-signers on the counterparty.
            trace.count("guest.lc.equivocations")
            proof = exc.proof
            ctx.emit("CounterpartyEquivocation", guest=self.chain_id,
                     height=header.height,
                     proof=b"" if proof is None else proof.to_bytes())
            return
        self._last_lc_update_time = ctx.unix_time
        trace.count("guest.lc.updates")
        trace.observe("guest.lc.verified_signers", len(signers))
        ctx.emit("CounterpartyClientUpdated", guest=self.chain_id,
                 height=header.height)

    def known_valset_hashes(self) -> frozenset[bytes]:
        """Hashes of the validator sets the light client already stores
        (the relayer queries this to skip redundant uploads)."""
        return frozenset(bytes(h) for h in self.counterparty_client._known_valsets)

    # ------------------------------------------------------------------
    # Alg. 1: ReceivePacket (+ ack/timeout processing)
    # ------------------------------------------------------------------

    def _op_recv_exec(self, ctx: InvokeContext, reader: Reader) -> None:
        self._require_initialized()
        buffer_id = reader.read_varint()
        reader.expect_end()
        buffer = self._consume_buffer(ctx.payer, buffer_id)
        self._exec_recv_msg(ctx, BufferedPacketMsg.from_bytes(buffer.assembled()))

    def _op_ack_exec(self, ctx: InvokeContext, reader: Reader) -> None:
        self._require_initialized()
        buffer_id = reader.read_varint()
        reader.expect_end()
        buffer = self._consume_buffer(ctx.payer, buffer_id)
        self._exec_ack_msg(ctx, BufferedPacketMsg.from_bytes(buffer.assembled()))

    def _op_timeout_exec(self, ctx: InvokeContext, reader: Reader) -> None:
        self._require_initialized()
        buffer_id = reader.read_varint()
        reader.expect_end()
        buffer = self._consume_buffer(ctx.payer, buffer_id)
        self._exec_timeout_msg(ctx, BufferedPacketMsg.from_bytes(buffer.assembled()))

    def _exec_recv_msg(self, ctx: InvokeContext, msg: BufferedPacketMsg) -> None:
        """Alg. 1's ReceivePacket body over one decoded message."""
        packet = Packet.from_bytes(msg.packet_bytes)
        proof = MembershipProof.from_bytes(msg.proof_bytes)
        ctx.meter.charge_hash(len(msg.proof_bytes))
        ctx.meter.charge_trie_nodes(2 * len(proof.steps) + 8)
        ack = self.ibc.recv_packet(packet, proof, msg.proof_height,
                                   local_time=ctx.unix_time)
        ctx.emit("PacketReceived", guest=self.chain_id,
                 sequence=packet.sequence,
                 channel=str(packet.destination_channel),
                 ack_success=ack.success, packet=packet,
                 ack_bytes=ack.to_bytes())

    def _exec_ack_msg(self, ctx: InvokeContext, msg: BufferedPacketMsg) -> None:
        packet = Packet.from_bytes(msg.packet_bytes)
        ack = Acknowledgement.from_bytes(msg.ack_bytes)
        proof = MembershipProof.from_bytes(msg.proof_bytes)
        ctx.meter.charge_hash(len(msg.proof_bytes))
        self.ibc.acknowledge_packet(packet, ack, proof, msg.proof_height)
        ctx.emit("PacketAcknowledged", guest=self.chain_id,
                 sequence=packet.sequence,
                 channel=str(packet.source_channel))

    def _exec_timeout_msg(self, ctx: InvokeContext, msg: BufferedPacketMsg) -> None:
        packet = Packet.from_bytes(msg.packet_bytes)
        proof = NonMembershipProof.from_bytes(msg.proof_bytes)
        ctx.meter.charge_hash(len(msg.proof_bytes))
        self.ibc.timeout_packet(packet, proof, msg.proof_height)
        ctx.emit("PacketTimedOut", guest=self.chain_id,
                 sequence=packet.sequence,
                 channel=str(packet.source_channel))

    def _op_batch_exec(self, ctx: InvokeContext, reader: Reader) -> None:
        """Process a relayer-coalesced batch of packet operations.

        The whole payload is decoded (and every referenced staging buffer
        consumed) *before* any entry executes, so a malformed batch can
        never abort halfway through.  Entries then run in order with
        per-entry error isolation: every IBC handler raises before it
        mutates the store, so a failed entry (bad proof, duplicate
        delivery, expired packet) leaves the state untouched and its
        neighbours unaffected.  One bad packet must not hold N-1 good
        ones hostage — and a duplicate re-queued by a competing relayer
        must not poison the batch.
        """
        from repro.errors import ReproError
        from repro.guest.instructions import BATCH_MODE_BUFFERED, BATCH_MODE_INLINE
        self._require_initialized()
        count = reader.read_varint()
        if count == 0:
            raise ProgramError("empty batch")
        staged: list[tuple[int, BufferedPacketMsg]] = []
        for _ in range(count):
            kind = reader.read(1)[0]
            mode = reader.read(1)[0]
            if mode == BATCH_MODE_INLINE:
                raw = reader.read_bytes()
            elif mode == BATCH_MODE_BUFFERED:
                buffer = self._consume_buffer(ctx.payer, reader.read_varint())
                raw = buffer.assembled()
            else:
                raise ProgramError(f"unknown batch entry mode {mode}")
            staged.append((kind, BufferedPacketMsg.from_bytes(raw)))
        reader.expect_end()

        handlers = {
            int(Op.RECV_EXEC): self._exec_recv_msg,
            int(Op.ACK_EXEC): self._exec_ack_msg,
            int(Op.TIMEOUT_EXEC): self._exec_timeout_msg,
        }
        trace = ctx.chain.sim.trace
        failures: list[tuple[int, int, str]] = []
        for index, (kind, msg) in enumerate(staged):
            handler = handlers.get(kind)
            if handler is None:
                failures.append((index, kind, f"opcode {kind} not batchable"))
                continue
            try:
                handler(ctx, msg)
            except (ReproError, ValueError) as exc:
                failures.append((index, kind, str(exc)))
        trace.count("guest.batch.instructions")
        trace.count("guest.batch.entries", count)
        trace.count("guest.batch.entries_failed", len(failures))
        trace.observe("guest.batch.size", count)
        ctx.emit("BatchProcessed", guest=self.chain_id, total=count,
                 ok=count - len(failures), failures=tuple(failures))

    def _op_confirm_ack(self, ctx: InvokeContext, reader: Reader) -> None:
        port = PortId(reader.read_bytes().decode())
        channel = ChannelId(reader.read_bytes().decode())
        sequence = reader.read_varint()
        reader.expect_end()
        self.ibc.confirm_ack(port, channel, sequence)
        ctx.chain.sim.trace.count("guest.acks.sealed")

    # ------------------------------------------------------------------
    # Self-destruction (§VI-A)
    # ------------------------------------------------------------------

    def _op_self_destruct(self, ctx: InvokeContext) -> None:
        """Release every bond once the chain has been dead long enough.

        §VI-A's mitigation for the last-validator bank run: if no guest
        block was generated for the configured period, the chain is
        considered abandoned and validators recover their stake without
        needing a live quorum.  Permissionless, like GenerateBlock.
        """
        self._require_initialized()
        threshold = self.config.self_destruct_after_seconds
        if threshold is None:
            raise GuestError("self-destruction is not enabled on this deployment")
        idle = ctx.unix_time - self.head.header.timestamp
        if idle < threshold:
            raise GuestError(
                f"guest head is only {idle:.0f} s old; self-destruction "
                f"requires {threshold:.0f} s of inactivity"
            )
        released = self.staking.release_all(ctx.unix_time)
        self.halted = True
        ctx.emit("SelfDestructed", guest=self.chain_id,
                 released=released, idle_seconds=idle)

    # ------------------------------------------------------------------
    # IBC handshakes
    # ------------------------------------------------------------------

    def _op_handshake(self, ctx: InvokeContext, msg_bytes: bytes) -> None:
        from repro.ibc.messages import apply_handshake, decode_handshake
        msg = decode_handshake(msg_bytes)
        ctx.meter.charge_hash(len(msg_bytes))
        created = apply_handshake(self.ibc, msg)
        ctx.emit("HandshakeStep", guest=self.chain_id,
                 kind=type(msg).__name__, created=created)

    # ------------------------------------------------------------------
    # Sibling guests (the multi-guest fabric; docs/FABRIC.md)
    # ------------------------------------------------------------------

    def register_sibling(self, peer: "GuestContract"):
        """Create a light client of another guest on the *same* host.

        Deploy-time wiring, like :meth:`initialize`: on a real host this
        is an instruction that records the peer's program id.  Trust is
        host-verified (ICS-09-style localhost semantics): both guests
        execute under the same host runtime, so the peer's finalisation
        is directly readable state rather than something to re-verify
        from signatures.  Returns the new client id.
        """
        from repro.fabric.sibling import SiblingGuestClient
        if peer is self:
            raise GuestError("a guest cannot register itself as a sibling")
        client = SiblingGuestClient(peer)
        client_id = self.ibc.create_client(client)
        self.sibling_clients[client_id] = client
        return client_id

    def _op_sibling_update(self, ctx: InvokeContext, reader: Reader) -> None:
        """Adopt a finalised sibling-guest height into its local client.

        Idempotent on purpose: relayers prepend this to delivery bundles
        (atomic update-then-prove), and a bundle must not fail because a
        competing relayer adopted the height first.
        """
        self._require_initialized()
        from repro.ibc.identifiers import ClientId
        client_id = ClientId(reader.read_bytes().decode())
        height = reader.read_varint()
        reader.expect_end()
        client = self.sibling_clients.get(client_id)
        if client is None:
            raise ProgramError(f"{client_id} is not a sibling-guest client")
        ctx.meter.charge_hash(64)
        ctx.meter.charge_trie_nodes(4)
        fresh = client.adopt(height)
        if fresh:
            ctx.chain.sim.trace.count("guest.sibling.updates")
        ctx.emit("SiblingClientUpdated", guest=self.chain_id,
                 client=str(client_id), height=height, fresh=fresh)

    def install_forwarding(self, hop_timeout_seconds: float = 600.0):
        """Swap the transfer app for a packet-forwarding middleware.

        Multi-hop routes (A → guest₁ → guest₂ → B) need each intermediate
        guest to re-send an incoming transfer on its next-hop channel;
        the middleware wraps the plain :class:`TransferApp` and does
        exactly that (docs/FABRIC.md).  Idempotent.
        """
        from repro.fabric.forward import ForwardMiddleware
        if self.forward is not None:
            return self.forward
        middleware = ForwardMiddleware(
            self.transfer, send=self._forward_send,
            clock=lambda: (self._current_ctx.unix_time
                           if self._current_ctx is not None else 0.0),
            hop_timeout_seconds=hop_timeout_seconds,
        )
        self.ibc.apps[self.transfer_port] = middleware
        self.forward = middleware
        return middleware

    def _forward_send(self, port: str, channel: str, payload: bytes,
                      timeout: float) -> Packet:
        """Commit an onward (or unwind) packet from inside a recv/ack/
        timeout instruction — the middleware's send hook.

        No SEND_PACKET fee is collected: the hop was already paid for by
        the original sender's fee on the first hop, and the forwarding
        module owns no lamports to pay with.  Compute is still metered.
        """
        ctx = self._current_ctx
        packet = self.ibc.send_packet(
            PortId(port), ChannelId(channel), payload, timeout)
        self._pending_packets.append(packet)
        if ctx is not None:
            ctx.meter.charge_hash(len(payload))
            ctx.meter.charge_trie_nodes(16)
            trace = ctx.chain.sim.trace
            trace.count("guest.packets.forwarded")
            trace.begin("packet.block_wait", key=packet.sequence,
                        actor="guest")
            ctx.emit("PacketCommitted", guest=self.chain_id,
                     height_hint=self.head.height + 1,
                     sequence=packet.sequence, channel=str(channel),
                     forwarded=True)
        return packet

    # ------------------------------------------------------------------
    # Fisherman evidence (§III-C)
    # ------------------------------------------------------------------

    def _op_evidence(self, ctx: InvokeContext, reader: Reader) -> None:
        """Validate misbehaviour evidence and slash the offender.

        The evidence is a signature by a validator over a block-sign
        message ``(height, fingerprint)`` that conflicts with the chain:
        either the height is above the head, or the fingerprint differs
        from the real block at that height.
        """
        self._require_initialized()
        kind = reader.read_varint()
        payload = Reader(reader.read_bytes())
        reader.expect_end()
        public_key = PublicKey(payload.read(32))
        height = payload.read_varint()
        fingerprint = payload.read_bytes()
        payload.expect_end()

        message = sign_message(height, fingerprint)
        if not ctx.is_signature_verified(public_key, message):
            raise ProgramError("evidence signature not verified by the runtime")
        if self.staking.stake_of(public_key) == 0:
            raise GuestError(f"{public_key.short()} has no stake to slash")

        if height >= len(self.blocks):
            offence = "signed a block above the head"
        else:
            real = self.blocks[height].header.fingerprint()
            if fingerprint == real:
                raise GuestError("signature matches the real block; no offence")
            offence = "signed a conflicting block"

        slashed = self.staking.slash(public_key)
        self.staking.remove(public_key)
        # Reward the fisherman with half of the slashed stake.
        reward = slashed // 2
        ctx.accounts_db.transfer(self.treasury, ctx.payer, reward)
        ctx.emit("ValidatorSlashed", guest=self.chain_id, validator=public_key,
                 slashed=slashed, reward=reward, offence=offence, kind=kind)

    # ------------------------------------------------------------------
    # Accountable safety (docs/ACCOUNTABILITY.md)
    # ------------------------------------------------------------------

    def _op_accountability(self, ctx: InvokeContext, reader: Reader) -> None:
        """Prosecute an equivocation: slash the double-signing quorum.

        The staged buffer holds an :class:`AccountabilityProof` — two
        conflicting finalisations of one guest height with both raw
        signature sets.  The proof is self-contained: verification only
        needs the epoch it names (both sides may be forgeries; whoever
        signed them both still equivocated).  Offenders lose
        ``accountability_slash_fraction`` of their stake and are ejected
        from candidacy, subject to the ``min_live_validators`` floor.
        """
        self._require_initialized()
        buffer_id = reader.read_varint()
        reader.expect_end()
        buffer = self._consume_buffer(ctx.payer, buffer_id)
        raw = buffer.assembled()
        ctx.meter.charge_hash(len(raw))
        proof = AccountabilityProof.from_bytes(raw)
        if proof.chain_id != self.chain_id:
            raise GuestError(
                f"proof is for chain {proof.chain_id!r}, not {self.chain_id!r}")
        proof_id = bytes(proof.proof_id())
        if proof_id in self.prosecuted_proofs:
            raise GuestError("equivocation already prosecuted")
        epoch = self.epochs_by_hash.get(Hash(proof.valset_hash))
        if epoch is None:
            raise GuestError("proof references an unknown validator epoch")
        # Protocol binding: each side's sign-bytes must be the guest
        # block-sign message over the claimed height and commitment, or
        # the height/commitment fields could lie about what was signed.
        for fin in (proof.first, proof.second):
            if fin.sign_bytes != sign_message(proof.height, fin.commitment):
                raise AccountabilityError(
                    "finalisation sign-bytes do not bind the claimed height")
        offenders = verify_proof(
            proof,
            powers=epoch.validators,
            total_power=epoch.total_stake,
            quorum_power=epoch.quorum_stake,
            batch_verify=ctx.verify_signature_set,
        )
        outcome = apply_accountability_slash(
            self.staking, offenders,
            fraction=self.config.accountability_slash_fraction,
            min_live=self.config.min_live_validators,
        )
        fraction = self.config.accountability_reward_fraction
        reward = (outcome.total_slashed * fraction.numerator
                  ) // fraction.denominator
        if reward:
            ctx.accounts_db.transfer(self.treasury, ctx.payer, reward)
        burned = outcome.total_slashed - reward
        self.burned_total += burned
        self.prosecuted_proofs.add(proof_id)
        offender_stake = sum(epoch.stake(pk) for pk in offenders)
        self.accountability_slashes.append({
            "height": proof.height,
            "proof_id": proof_id.hex(),
            "epoch_id": epoch.epoch_id,
            "offenders": [pk.short() for pk in outcome.offenders],
            "ejected": [pk.short() for pk in outcome.ejected],
            "spared": [pk.short() for pk in outcome.spared],
            "slashed": outcome.total_slashed,
            "burned": burned,
            "reward": reward,
            "offender_stake": offender_stake,
            "total_stake": epoch.total_stake,
        })
        trace = ctx.chain.sim.trace
        trace.count("guest.accountability.slashes")
        trace.observe("guest.accountability.offenders", len(offenders))
        ctx.emit("EquivocationSlashed", guest=self.chain_id,
                 height=proof.height, proof_id=proof_id,
                 validators=outcome.ejected, spared=outcome.spared,
                 slashed=outcome.total_slashed, burned=burned, reward=reward,
                 offender_stake=offender_stake,
                 total_stake=epoch.total_stake)

    # ------------------------------------------------------------------
    # Helpers, accounting, proof serving
    # ------------------------------------------------------------------

    def _validate_claim_about_guest(self, claimed_bytes: bytes) -> None:
        """ICS-03 validate_self_client — the check the paper's footnote 2
        notes NEAR-IBC left unimplemented.  Rejects connections whose
        counterparty runs a bogus light client of this guest chain."""
        from repro.ibc.self_client import SelfClientState, validate_self_client
        claimed = SelfClientState.from_bytes(claimed_bytes)
        validate_self_client(
            claimed,
            our_chain_id=self.ibc.chain_id,
            our_height=self.head.height if self.blocks else 0,
            known_set_hashes=frozenset(bytes(h) for h in self.epochs_by_hash),
        )

    def _require_initialized(self) -> None:
        if not self.initialized:
            raise GuestError("guest not initialized")

    def _check_state_budget(self) -> None:
        used = self.store.storage_bytes() + sum(
            buffer.byte_size() for buffer in self._buffers.values()
        )
        if used > self.config.state_account_bytes:
            raise ProgramError(
                f"guest state would use {used} bytes; the account holds "
                f"{self.config.state_account_bytes}"
            )

    def state_usage_bytes(self) -> int:
        return self.store.storage_bytes()

    def state_view(self, height: int) -> ProvableStore:
        """Frozen store whose root is the block header's ``state_root``
        (what a relayer proves packet commitments against)."""
        view = self._state_views.get(height)
        if view is None:
            raise UnknownBlockError(f"no state view for height {height}")
        return view

    def attach_state_journal(self, journal) -> None:
        """Record every store mutation into ``journal`` (a
        :class:`repro.state.sync.StateJournal`), watermarked per block,
        so new validators can state-sync from a snapshot instead of
        replaying history.  Attach before ``initialize`` to have a
        watermark for every height."""
        if self.state_journal is not None:
            raise GuestError("a state journal is already attached")
        self.state_journal = journal
        self.store.trie.attach_mirror(journal)

    def packets_in_block(self, height: int) -> tuple[Packet, ...]:
        return self._packets_by_height.get(height, ())
