"""BFT time: block timestamps from a stake-weighted median (§VI-D).

The guest blockchain normally inherits the host's timestamps.  §VI-D
notes that a host *without* trustworthy timestamps could still feed IBC
timeouts by deriving block time from the validators themselves: "A
timestamp can be introduced by using the median of the signer's
timestamps" (the Tendermint BFT-time rule [38]).

This module implements that rule for the guest's stake-weighted setting:

* each signer attests its local clock alongside its block signature;
* the block's *attested time* is the *stake-weighted median* of those
  attestations — the smallest attested time such that signers at or
  below it hold at least half of the participating stake;
* monotonicity is enforced against the parent block's time.

Security property (tested in ``tests/test_bft_time.py``): as long as
signers holding **more than half of the participating stake** are honest
and roughly synchronised, the attested time lies within the honest
clock range — a coalition below that threshold can bias the median only
*into* the honest interval, never beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import PublicKey
from repro.errors import GuestError
from repro.guest.epoch import Epoch


@dataclass(frozen=True)
class TimeAttestation:
    """One signer's clock reading for one block."""

    validator: PublicKey
    timestamp: float


def weighted_median_time(attestations: list[TimeAttestation], epoch: Epoch) -> float:
    """The stake-weighted median of the signers' clock attestations.

    Attestations from keys outside the epoch are ignored (they carry no
    stake).  With an even stake split the *lower* median is returned —
    a deterministic choice both chains can recompute.
    """
    weighted = [
        (attestation.timestamp, epoch.stake(attestation.validator))
        for attestation in attestations
        if epoch.is_validator(attestation.validator)
    ]
    weighted = [(ts, stake) for ts, stake in weighted if stake > 0]
    if not weighted:
        raise GuestError("no staked attestations to derive a timestamp from")
    weighted.sort()
    total = sum(stake for _, stake in weighted)
    threshold = (total + 1) // 2  # at least half the participating stake
    accumulated = 0
    for timestamp, stake in weighted:
        accumulated += stake
        if accumulated >= threshold:
            return timestamp
    return weighted[-1][0]  # pragma: no cover - unreachable


def attested_block_time(attestations: list[TimeAttestation], epoch: Epoch,
                        parent_time: float, min_step: float = 0.001) -> float:
    """The BFT-time rule: weighted median, forced monotone.

    A block's time must strictly exceed its parent's; if the median does
    not (clock skew, replayed attestations), it is clamped to
    ``parent_time + min_step``, as Tendermint does.
    """
    median = weighted_median_time(attestations, epoch)
    if median <= parent_time:
        return parent_time + min_step
    return median


def honest_time_bounds(attestations: list[TimeAttestation], epoch: Epoch,
                       honest: set[PublicKey]) -> tuple[float, float]:
    """The [min, max] clock range of the honest signers (analysis aid)."""
    times = [
        attestation.timestamp for attestation in attestations
        if attestation.validator in honest and epoch.is_validator(attestation.validator)
    ]
    if not times:
        raise GuestError("no honest attestations")
    return min(times), max(times)
