"""The guest blockchain (§III): a virtual chain emulated by a host program.

The Guest Contract (:mod:`repro.guest.contract`) is the paper's Alg. 1: it
maintains the guest chain's provable state in a sealable trie, produces
guest blocks, collects validator signatures until a stake quorum finalises
each block, and bridges IBC packets between the host and the counterparty.

Support modules: block/epoch value types, the Proof-of-Stake staking pool
(§III-B), and a client-side transaction builder
(:mod:`repro.guest.api`) that host users invoke the contract through.
"""

from repro.guest.block import GuestBlock, GuestBlockHeader
from repro.guest.config import GuestConfig
from repro.guest.contract import GuestContract
from repro.guest.epoch import Epoch
from repro.guest.staking import StakingPool
from repro.guest.api import GuestApi

__all__ = [
    "Epoch",
    "GuestApi",
    "GuestBlock",
    "GuestBlockHeader",
    "GuestConfig",
    "GuestContract",
    "StakingPool",
]
