"""Guest blocks: headers, fingerprints and signature collection.

A guest block commits to the sealable trie's root (the provable state),
its parent, the host time it was generated at, and the validator epoch
that must finalise it.  Validators sign the header's *fingerprint* —
the canonical hash that the counterparty's guest light client also
verifies signatures against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.hashing import Hash, hash_concat, merkle_root
from repro.crypto.keys import PublicKey, Signature
from repro.errors import GuestError


@dataclass(frozen=True)
class GuestBlockHeader:
    """The signed portion of a guest block."""

    height: int
    prev_hash: Hash
    #: Host time at generation (guest blocks inherit host timestamps —
    #: the introspection feature the guest layer adds, §III).
    timestamp: float
    host_slot: int
    state_root: Hash
    epoch_id: int
    epoch_hash: Hash
    #: Commitment hashes of the packets newly included in this block;
    #: relayers use it to know what to forward (Alg. 2).
    packet_hashes: tuple[Hash, ...] = ()
    #: Set on the final block of an epoch; tells relayers to push a
    #: validator-set update to the counterparty (Alg. 2 line 5).
    last_in_epoch: bool = False
    #: Present when this block activates a new epoch: its canonical hash.
    next_epoch_hash: Optional[Hash] = None

    def fingerprint(self) -> bytes:
        """Canonical bytes validators sign and light clients verify."""
        parts: list[bytes | Hash] = [
            b"guest-block",
            self.height.to_bytes(8, "big"),
            self.prev_hash,
            round(self.timestamp * 1000).to_bytes(8, "big"),
            self.host_slot.to_bytes(8, "big"),
            self.state_root,
            self.epoch_id.to_bytes(8, "big"),
            self.epoch_hash,
            merkle_root(self.packet_hashes),
            b"\x01" if self.last_in_epoch else b"\x00",
            self.next_epoch_hash if self.next_epoch_hash is not None else Hash.zero(),
        ]
        return bytes(hash_concat(*parts))

    def block_hash(self) -> Hash:
        return Hash(self.fingerprint())

    def sign_message(self) -> bytes:
        """The structured message validators sign for this block."""
        return sign_message(self.height, self.fingerprint())


def sign_message(height: int, fingerprint: bytes) -> bytes:
    """Message a validator signs to attest a block: domain tag, height,
    fingerprint.

    The height travels *outside* the hash so that misbehaviour evidence
    (§III-C) is checkable on-chain: given a signed message, the Guest
    Contract can reconstruct which height the signer claimed without
    being able to invert the fingerprint.
    """
    return b"guest-sign" + height.to_bytes(8, "big") + fingerprint


@dataclass
class GuestBlock:
    """A guest block accumulating validator signatures until finalised."""

    header: GuestBlockHeader
    signers: dict[PublicKey, Signature] = field(default_factory=dict)
    finalised: bool = False
    #: Simulation times, recorded for the evaluation metrics.
    generated_at: float = 0.0
    finalised_at: Optional[float] = None

    @property
    def height(self) -> int:
        return self.header.height

    def add_signature(self, public_key: PublicKey, signature: Signature) -> None:
        if public_key in self.signers:
            raise GuestError(f"{public_key.short()} already signed block {self.height}")
        self.signers[public_key] = signature

    def signer_set(self) -> set[PublicKey]:
        return set(self.signers)

    def __repr__(self) -> str:
        state = "finalised" if self.finalised else f"{len(self.signers)} sigs"
        return f"GuestBlock(h={self.height}, {state})"
