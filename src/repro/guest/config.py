"""Deployment parameters of the guest blockchain.

Defaults mirror the mainnet configuration reported in §IV: Δ = 1 hour
(minimum time between empty blocks), epochs of 100 000 host blocks
(≈ 12 hours at 400 ms slots... the paper says "roughly 12 hours"; at
0.4 s × 100 000 = ~11.1 h), stake held for one week after exit, and at
most 24 validators (the deployment's validator count, §V).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.units import (
    DELTA_SECONDS,
    MIN_EPOCH_HOST_BLOCKS,
    STAKE_UNBONDING_SECONDS,
    sol_to_lamports,
)


@dataclass(frozen=True)
class GuestConfig:
    """Tunables of one guest-blockchain deployment."""

    #: Δ — maximum head age before an (empty) block may be generated,
    #: needed so counterparties can observe guest time for IBC timeouts.
    delta_seconds: float = DELTA_SECONDS
    #: Minimum epoch length, counted in host blocks (§IV).
    epoch_length_host_blocks: int = MIN_EPOCH_HOST_BLOCKS
    #: How long a quitting validator's stake stays locked (§IV: one week).
    unbonding_seconds: float = STAKE_UNBONDING_SECONDS
    #: Validator-set size cap (the deployment had 24 validators, §V).
    max_validators: int = 24
    #: Minimum stake to become a validator candidate.
    min_stake_lamports: int = sol_to_lamports(1.0)
    #: Stake fraction whose signatures finalise a block.
    quorum_fraction: Fraction = Fraction(2, 3)
    #: Fee charged by SendPacket, per packet (flat part)...
    send_fee_lamports: int = 10_000
    #: ...plus per payload byte.
    send_fee_per_byte: int = 10
    #: Fraction of stake slashed on proven misbehaviour.
    slash_fraction: Fraction = Fraction(1, 2)
    #: §V-C future work, implemented: share of the packet fees collected
    #: since the previous finalised block that is distributed (pro rata
    #: by stake) to the validators whose signatures finalised it.
    signer_reward_share: Fraction = Fraction(9, 10)
    #: Size of the guest state account allocated on the host (10 MiB:
    #: "the largest possible account size on Solana", §V-D).
    state_account_bytes: int = 10 * 1024 * 1024
    #: §VI-A mitigation: if no guest block has been generated for this
    #: long, anyone may trigger self-destruction, releasing all bonded
    #: stake immediately (None disables the clause).
    self_destruct_after_seconds: float | None = None
    #: §VI-C mitigation: minimum spacing between accepted counterparty
    #: light-client updates, bounding how fast an attacker who broke the
    #: counterparty could advance the client (None disables).
    lc_min_update_interval: float | None = None
    #: Stake fraction burned from each validator in an accountability
    #: proof's double-signing intersection (docs/ACCOUNTABILITY.md).
    #: Equivocation is the protocol's cardinal sin, so the default burns
    #: everything — bonded and unbonding alike.
    accountability_slash_fraction: Fraction = Fraction(1, 1)
    #: Share of the burned stake paid to whoever submitted the proof.
    accountability_reward_fraction: Fraction = Fraction(1, 10)
    #: Liveness floor: an accountability slash never ejects a candidate
    #: when doing so would leave fewer than this many eligible for the
    #: next epoch (the offender is spared and recorded instead).
    min_live_validators: int = 1

    def quorum_stake(self, total_stake: int) -> int:
        """Smallest signed stake that finalises a block: strictly more
        than ``quorum_fraction`` of ``total_stake``."""
        threshold = (total_stake * self.quorum_fraction.numerator) // self.quorum_fraction.denominator
        return threshold + 1
