"""Instruction encoding for the Guest Contract.

Every interaction with the Guest Contract travels as a host instruction:
one opcode byte followed by the operation's canonically encoded payload.
Builders and parsers live together here so the wire format has a single
source of truth; :mod:`repro.guest.api` wraps the builders into whole
host transactions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.crypto.keys import PublicKey, Signature
from repro.encoding import Reader, encode_bytes, encode_varint


class Op(enum.IntEnum):
    """Guest Contract opcodes."""

    SEND_PACKET = 1
    GENERATE_BLOCK = 2
    SIGN_BLOCK = 3
    STAKE = 4
    UNSTAKE = 5
    WITHDRAW_STAKE = 6
    CHUNK = 7
    LC_SIG_BATCH = 8
    LC_FINALIZE = 9
    RECV_EXEC = 10
    ACK_EXEC = 11
    TIMEOUT_EXEC = 12
    CONFIRM_ACK = 13
    EVIDENCE = 14
    HANDSHAKE = 15
    HANDSHAKE_EXEC = 16
    SELF_DESTRUCT = 17
    CLAIM_REWARDS = 18
    BATCH_EXEC = 19
    SIBLING_UPDATE = 20
    ACCOUNTABILITY = 21


# ---------------------------------------------------------------------------
# Builders (client side)
# ---------------------------------------------------------------------------

def send_packet(port: str, channel: str, payload: bytes, timeout_timestamp: float) -> bytes:
    out = bytearray([Op.SEND_PACKET])
    out += encode_bytes(port.encode())
    out += encode_bytes(channel.encode())
    out += encode_bytes(payload)
    out += encode_varint(round(timeout_timestamp * 1000))
    return bytes(out)


def generate_block() -> bytes:
    return bytes([Op.GENERATE_BLOCK])


def sibling_update(client_id: str, height: int) -> bytes:
    """Adopt a finalised height of a sibling guest into its local light
    client (idempotent; prepended to cross-guest delivery bundles)."""
    out = bytearray([Op.SIBLING_UPDATE])
    out += encode_bytes(client_id.encode())
    out += encode_varint(height)
    return bytes(out)


def sign_block(height: int, public_key: PublicKey, signature: Signature) -> bytes:
    out = bytearray([Op.SIGN_BLOCK])
    out += encode_varint(height)
    out += bytes(public_key)
    out += bytes(signature)
    return bytes(out)


def stake(public_key: PublicKey, lamports: int) -> bytes:
    out = bytearray([Op.STAKE])
    out += bytes(public_key)
    out += encode_varint(lamports)
    return bytes(out)


def unstake(public_key: PublicKey, lamports: int) -> bytes:
    out = bytearray([Op.UNSTAKE])
    out += bytes(public_key)
    out += encode_varint(lamports)
    return bytes(out)


def withdraw_stake(public_key: PublicKey) -> bytes:
    return bytes([Op.WITHDRAW_STAKE]) + bytes(public_key)


def chunk(buffer_id: int, index: int, total: int, data: bytes) -> bytes:
    out = bytearray([Op.CHUNK])
    out += encode_varint(buffer_id)
    out += encode_varint(index)
    out += encode_varint(total)
    out += encode_bytes(data)
    return bytes(out)


def lc_sig_batch(buffer_id: int) -> bytes:
    """The signatures themselves ride as precompile entries on the same
    transaction; the instruction only names the buffer to credit."""
    return bytes([Op.LC_SIG_BATCH]) + encode_varint(buffer_id)


def lc_finalize(buffer_id: int) -> bytes:
    return bytes([Op.LC_FINALIZE]) + encode_varint(buffer_id)


def recv_exec(buffer_id: int) -> bytes:
    return bytes([Op.RECV_EXEC]) + encode_varint(buffer_id)


def ack_exec(buffer_id: int) -> bytes:
    return bytes([Op.ACK_EXEC]) + encode_varint(buffer_id)


def timeout_exec(buffer_id: int) -> bytes:
    return bytes([Op.TIMEOUT_EXEC]) + encode_varint(buffer_id)


def confirm_ack(port: str, channel: str, sequence: int) -> bytes:
    out = bytearray([Op.CONFIRM_ACK])
    out += encode_bytes(port.encode())
    out += encode_bytes(channel.encode())
    out += encode_varint(sequence)
    return bytes(out)


def evidence(kind: int, payload: bytes) -> bytes:
    return bytes([Op.EVIDENCE]) + encode_varint(kind) + encode_bytes(payload)


def accountability(buffer_id: int) -> bytes:
    """Prosecute an equivocation proof staged through CHUNK transactions."""
    return bytes([Op.ACCOUNTABILITY]) + encode_varint(buffer_id)


def handshake(msg_bytes: bytes) -> bytes:
    """An IBC handshake message small enough to ride inline."""
    return bytes([Op.HANDSHAKE]) + encode_bytes(msg_bytes)


def handshake_exec(buffer_id: int) -> bytes:
    """Execute a handshake message staged through CHUNK transactions."""
    return bytes([Op.HANDSHAKE_EXEC]) + encode_varint(buffer_id)


def self_destruct() -> bytes:
    """§VI-A: release all stake after prolonged chain inactivity."""
    return bytes([Op.SELF_DESTRUCT])


def claim_rewards(public_key: PublicKey) -> bytes:
    """Withdraw a validator's accrued signing rewards; the transaction
    must carry a runtime-verified signature over the claim message."""
    return bytes([Op.CLAIM_REWARDS]) + bytes(public_key)


def claim_message(public_key: PublicKey, payer_address: bytes) -> bytes:
    """What a validator signs to authorise paying its rewards to
    ``payer_address`` (prevents reward theft by third parties)."""
    return b"claim-rewards" + bytes(public_key) + payer_address


# ---------------------------------------------------------------------------
# Batched packet execution (relayer-side coalescing)
# ---------------------------------------------------------------------------

#: Entry modes inside a BATCH_EXEC payload.
BATCH_MODE_INLINE = 0
BATCH_MODE_BUFFERED = 1

#: The exec opcodes a batch entry may carry.
BATCHABLE_KINDS = (Op.RECV_EXEC, Op.ACK_EXEC, Op.TIMEOUT_EXEC)


@dataclass(frozen=True)
class BatchEntry:
    """One packet operation inside a BATCH_EXEC instruction.

    Small messages ride *inline* (the encoded :class:`BufferedPacketMsg`
    is embedded in the batch instruction itself); oversized ones are
    staged through CHUNK transactions first and referenced by buffer id.
    """

    kind: int  # Op.RECV_EXEC / Op.ACK_EXEC / Op.TIMEOUT_EXEC
    inline: Optional[bytes] = None
    buffer_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in BATCHABLE_KINDS:
            raise ValueError(f"opcode {self.kind} cannot ride in a batch")
        if (self.inline is None) == (self.buffer_id is None):
            raise ValueError("a batch entry is either inline or buffered")

    def encoded_bytes(self) -> int:
        """Wire size of this entry inside the batch instruction."""
        if self.inline is not None:
            return 2 + len(encode_bytes(self.inline))
        return 2 + len(encode_varint(self.buffer_id))


def batch_exec(entries: Sequence[BatchEntry]) -> bytes:
    """Coalesce several packet operations into one instruction.

    The Guest Contract processes the entries in order within a single
    host transaction; each entry succeeds or fails individually (the
    proof checks run *before* any store mutation, so one bad entry never
    poisons its neighbours)."""
    if not entries:
        raise ValueError("empty batch")
    out = bytearray([Op.BATCH_EXEC])
    out += encode_varint(len(entries))
    for entry in entries:
        out.append(entry.kind)
        if entry.inline is not None:
            out.append(BATCH_MODE_INLINE)
            out += encode_bytes(entry.inline)
        else:
            out.append(BATCH_MODE_BUFFERED)
            out += encode_varint(entry.buffer_id)
    return bytes(out)


# ---------------------------------------------------------------------------
# Shared payload container for buffered packet operations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BufferedPacketMsg:
    """The staged bytes a RECV/ACK/TIMEOUT exec instruction consumes:
    packet + proof + proof height (+ ack bytes for ACK_EXEC)."""

    packet_bytes: bytes
    proof_bytes: bytes
    proof_height: int
    ack_bytes: bytes = b""

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += encode_bytes(self.packet_bytes)
        out += encode_bytes(self.proof_bytes)
        out += encode_varint(self.proof_height)
        out += encode_bytes(self.ack_bytes)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BufferedPacketMsg":
        reader = Reader(data)
        msg = cls(
            packet_bytes=reader.read_bytes(),
            proof_bytes=reader.read_bytes(),
            proof_height=reader.read_varint(),
            ack_bytes=reader.read_bytes(),
        )
        reader.expect_end()
        return msg
