"""Validator epochs (§III-B).

An epoch fixes the validator set and their stakes for a span of guest
blocks.  Blocks carry their epoch id; a block is finalised when the
signatures it has collected cover the epoch's quorum stake.  The epoch's
canonical hash is committed into block headers so counterparty light
clients can detect validator-set changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import Hash, hash_concat
from repro.crypto.keys import PublicKey
from repro.errors import GuestError


@dataclass(frozen=True)
class Epoch:
    """An immutable validator set with stakes and the quorum threshold."""

    epoch_id: int
    #: Validator public key -> staked lamports.
    validators: dict[PublicKey, int] = field(default_factory=dict)
    quorum_stake: int = 0

    def __post_init__(self) -> None:
        if any(stake <= 0 for stake in self.validators.values()):
            raise GuestError("validator stakes must be positive")
        if self.validators and not 0 < self.quorum_stake <= self.total_stake:
            raise GuestError(
                f"quorum {self.quorum_stake} outside (0, {self.total_stake}]"
            )

    @property
    def total_stake(self) -> int:
        return sum(self.validators.values())

    def stake(self, validator: PublicKey) -> int:
        return self.validators.get(validator, 0)

    def is_validator(self, public_key: PublicKey) -> bool:
        return public_key in self.validators

    def signed_stake(self, signers: set[PublicKey]) -> int:
        return sum(self.validators.get(signer, 0) for signer in signers)

    def has_quorum(self, signers: set[PublicKey]) -> bool:
        return self.signed_stake(signers) >= self.quorum_stake

    def canonical_hash(self) -> Hash:
        """Deterministic commitment to (id, members, stakes, quorum)."""
        parts: list[bytes] = [b"epoch", self.epoch_id.to_bytes(8, "big")]
        for public_key in sorted(self.validators, key=bytes):
            parts.append(bytes(public_key))
            parts.append(self.validators[public_key].to_bytes(8, "big"))
        parts.append(self.quorum_stake.to_bytes(8, "big"))
        return hash_concat(*parts)

    def __len__(self) -> int:
        return len(self.validators)
