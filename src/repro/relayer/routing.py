"""Cross-guest relaying: two guest contracts, one host (docs/FABRIC.md).

A :class:`SiblingRelayer` bridges two guest contracts deployed on the
*same* host chain.  Structurally it is the symmetric cousin of
:class:`repro.relayer.relayer.Relayer`: both ends are guest programs, so
there is no chunked Tendermint update — each end tracks the other with a
:class:`~repro.fabric.sibling.SiblingGuestClient`, advanced by one
idempotent SIBLING_UPDATE instruction.  Packet deliveries prepend that
instruction to the §V-A bundle (atomic update-then-prove: the client
adopts the proof height in the same host block the proof is checked).

Flows, per direction (X = origin guest, Y = destination guest):

* **packets**: a finalised X block carrying link packets → deliver each
  to Y with a membership proof against X's finalised state root;
* **acks**: Y's ``PacketReceived`` stages the ack; the next finalised Y
  block that covers it proves the ack back to X, then seals it on Y
  (``CONFIRM_ACK``, the §III-A bounded-storage discipline);
* **timeouts**: a periodic scan finds expired outstanding sends and
  cancels them with a non-membership proof of Y's receipt at a
  finalised Y height past the deadline;
* **handshakes**: :meth:`open_link` drives the ICS-03 + ICS-04 dances
  with both ends on the guest side (INIT/ACK on A, TRY/CONFIRM on B),
  awaiting an explicit sibling update before every proof-carrying step.

The relayer is chaos-compatible (docs/CHAOS.md): :meth:`crash` drops all
volatile state and :meth:`restart` rebuilds it from on-chain history —
outstanding commitments without receipts are redelivered, written acks
with outstanding commitments are re-proven — with the usual incarnation
guard so a dead process's callbacks never corrupt the survivor.

The module also houses the :class:`RouteTable`: named multi-hop routes
over the fabric, resolved into a first-hop channel plus a
``fwd:``-encoded receiver for :class:`repro.fabric.forward`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import HostUnavailableError, KeyNotFoundError, ReproError, SealedNodeError
from repro.fabric.forward import forward_receiver
from repro.guest import instructions as ins
from repro.guest.api import DeliveryResult, GuestApi
from repro.guest.contract import GuestContract
from repro.host.chain import HostChain
from repro.host.events import HostEvent
from repro.ibc import commitment as paths
from repro.ibc import messages as msgs
from repro.ibc.channel import ChannelOrder
from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId
from repro.ibc.packet import Acknowledgement, Packet
from repro.relayer.resilience import CircuitBreaker, RetryPolicy
from repro.sim.kernel import Simulation
from repro.sim.rng import Rng


@dataclass
class SiblingRelayerConfig:
    """Tunables for one cross-guest link."""

    #: Timeout-scan period, seconds.
    poll_seconds: float = 5.0
    #: Tip per delivery bundle (same default as the cp-link relayer).
    bundle_tip_lamports: int = 0
    #: Bounded retry for failed deliveries (docs/CHAOS.md).
    retry_max_attempts: int = 8
    retry_base_seconds: float = 2.0
    retry_cap_seconds: float = 30.0
    breaker_failure_threshold: int = 3
    breaker_reset_seconds: float = 5.0
    breaker_reset_cap_seconds: float = 60.0


@dataclass
class LinkEnd:
    """One guest-side end of a cross-guest link."""

    contract: GuestContract
    api: GuestApi
    #: This end's client *of the peer* (a SiblingGuestClient id).
    client_of_peer: ClientId
    port: PortId = PortId("transfer")
    connection: Optional[ConnectionId] = None
    channel: Optional[ChannelId] = None

    @property
    def chain_id(self) -> str:
        return self.contract.chain_id

    def client(self):
        return self.contract.sibling_clients[str(self.client_of_peer)]


@dataclass
class SiblingMetrics:
    packets_delivered: int = 0
    acks_returned: int = 0
    timeouts_cancelled: int = 0
    retries: int = 0
    redeliveries: int = 0
    crashes: int = 0


class SiblingRelayer:
    """One relayer instance serving both directions of a guest↔guest link."""

    def __init__(self, sim: Simulation, host: HostChain,
                 a: LinkEnd, b: LinkEnd,
                 config: Optional[SiblingRelayerConfig] = None) -> None:
        self.sim = sim
        self.host = host
        self.a = a
        self.b = b
        self.config = config or SiblingRelayerConfig()
        self.metrics = SiblingMetrics()
        self._ends = {a.chain_id: a, b.chain_id: b}
        self._peers = {a.chain_id: b, b.chain_id: a}

        self.paused = False
        self._incarnation = 0
        #: ChaosInjector duck compatibility (it inspects these).
        self._bundle_queue: deque = deque()
        self.breaker = CircuitBreaker(
            sim, name="sibling.breaker",
            failure_threshold=self.config.breaker_failure_threshold,
            reset_seconds=self.config.breaker_reset_seconds,
            reset_cap_seconds=self.config.breaker_reset_cap_seconds,
        )
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_seconds=self.config.retry_base_seconds,
            cap_seconds=self.config.retry_cap_seconds,
        )
        self._retry_rng = Rng(sim.rng.derived_seed(
            f"sibling-relayer:{a.chain_id}:{b.chain_id}"))

        #: chain_id -> {(src channel str, seq): (packet, commit height)} —
        #: sends awaiting an ack or a timeout, per origin end.
        self._outstanding: dict[str, dict[tuple[str, int], tuple[Packet, int]]] = {
            a.chain_id: {}, b.chain_id: {},
        }
        #: chain_id (receiver) -> {(dst channel str, seq): (packet, ack)}.
        self._pending_acks: dict[str, dict[tuple[str, int], tuple[Packet, Acknowledgement]]] = {
            a.chain_id: {}, b.chain_id: {},
        }
        #: chain_id -> one-shot HandshakeStep waiter.
        self._handshake_waiters: dict[str, Callable[[Optional[str], int], None]] = {}
        #: chain_id -> [(min host slot, action(height))].
        self._finalised_waiters: dict[str, list[tuple[int, Callable[[int], None]]]] = {
            a.chain_id: [], b.chain_id: [],
        }
        self._missed_finalised: list[HostEvent] = []

        host.subscribe("FinalisedBlock", self._on_finalised_block)
        host.subscribe("PacketReceived", self._on_packet_received)
        host.subscribe("HandshakeStep", self._on_handshake_step)
        sim.schedule(self.config.poll_seconds, self._scan_timeouts)

    # ==================================================================
    # Event dispatch
    # ==================================================================

    def _end_for(self, event: HostEvent) -> Optional[LinkEnd]:
        return self._ends.get(event.payload.get("guest", ""))

    def _on_finalised_block(self, event: HostEvent) -> None:
        end = self._end_for(event)
        if end is None:
            return
        if self.paused:
            self._missed_finalised.append(event)
            return
        height = event.payload["height"]
        header = event.payload["header"]
        slot = header.host_slot

        waiters = [w for w in self._finalised_waiters[end.chain_id] if w[0] <= slot]
        self._finalised_waiters[end.chain_id] = [
            w for w in self._finalised_waiters[end.chain_id] if w[0] > slot
        ]
        for min_slot, action in waiters:
            self._run_waiter(end, min_slot, action, height)

        if end.channel is not None:
            ours = [
                p for p in event.payload["packets"]
                if (p.source_port, p.source_channel) == (end.port, end.channel)
            ]
            for packet in ours:
                key = (str(packet.source_channel), packet.sequence)
                self._outstanding[end.chain_id][key] = (packet, height)
                self._deliver(end, packet, height)
        self._flush_acks(end, height)

    def _on_packet_received(self, event: HostEvent) -> None:
        end = self._end_for(event)
        if end is None or self.paused:
            return
        packet = event.payload.get("packet")
        ack_bytes = event.payload.get("ack_bytes")
        if packet is None or ack_bytes is None or end.channel is None:
            return
        if (packet.destination_port, packet.destination_channel) != (end.port, end.channel):
            return
        key = (str(packet.destination_channel), packet.sequence)
        self._pending_acks[end.chain_id][key] = (
            packet, Acknowledgement.from_bytes(ack_bytes))

    def _on_handshake_step(self, event: HostEvent) -> None:
        chain_id = event.payload.get("guest", "")
        if chain_id not in self._ends:
            return
        waiter = self._handshake_waiters.pop(chain_id, None)
        if waiter is not None:
            waiter(event.payload.get("created"), event.slot)

    # ==================================================================
    # Packet delivery (X finalised -> prove to Y)
    # ==================================================================

    def _adopt_prelude(self, dst: LinkEnd, height: int) -> tuple[bytes, ...]:
        """SIBLING_UPDATE instruction(s) the delivery bundle needs so the
        destination's client covers ``height`` — empty if it already
        does (the instruction is idempotent either way)."""
        if dst.client().consensus_root(height) is not None:
            return ()
        return (ins.sibling_update(str(dst.client_of_peer), height),)

    def _deliver(self, src: LinkEnd, packet: Packet, height: int,
                 attempt: int = 1) -> None:
        dst = self._peers[src.chain_id]
        try:
            proof = src.contract.state_view(height).prove_seq(
                paths.commitment_prefix(packet.source_port, packet.source_channel),
                packet.sequence,
            )
        except ReproError:
            return  # view pruned or commitment gone (settled meanwhile)
        incarnation = self._incarnation
        self.sim.trace.begin("fabric.hop", key=(src.chain_id, packet.sequence),
                             actor="sibling-relayer")

        def done(result: DeliveryResult) -> None:
            if incarnation != self._incarnation:
                return  # a crashed incarnation's bundle; drop
            if result.success:
                self.sim.trace.finish(
                    "fabric.hop", key=(src.chain_id, packet.sequence))
                self.sim.trace.count("fabric.packets.delivered")
                self.metrics.packets_delivered += 1
                return
            self._retry_deliver(src, packet, height, attempt)

        dst.api.deliver_packet(
            packet, proof, height,
            tip_lamports=self.config.bundle_tip_lamports,
            on_done=done, prelude=self._adopt_prelude(dst, height),
        )

    def _retry_deliver(self, src: LinkEnd, packet: Packet, height: int,
                       attempt: int) -> None:
        dst = self._peers[src.chain_id]
        try:
            delivered = dst.contract.ibc.store.contains_seq(
                paths.receipt_prefix(packet.destination_port,
                                     packet.destination_channel),
                packet.sequence,
            )
        except SealedNodeError:
            delivered = True
        if delivered:
            # A rival (or a pre-crash self) landed it: exactly-once held.
            self.sim.trace.count("fabric.redeliveries")
            self.metrics.redeliveries += 1
            return
        if not self.retry_policy.allows(attempt):
            self.sim.trace.count("fabric.retries.exhausted")
            return
        self.metrics.retries += 1
        self.sim.trace.count("fabric.retries")
        delay = self.retry_policy.delay(attempt, self._retry_rng)
        incarnation = self._incarnation

        def fire() -> None:
            if incarnation != self._incarnation or self.paused:
                return
            self._deliver(src, packet, height, attempt + 1)

        self.sim.schedule(delay, fire)

    # ==================================================================
    # Ack return (Y finalised -> prove ack to X, seal on Y)
    # ==================================================================

    def _flush_acks(self, receiver: LinkEnd, height: int) -> None:
        origin = self._peers[receiver.chain_id]
        staged = self._pending_acks[receiver.chain_id]
        for key, (packet, ack) in list(staged.items()):
            try:
                proof = receiver.contract.state_view(height).prove_seq(
                    paths.ack_prefix(packet.destination_port,
                                     packet.destination_channel),
                    packet.sequence,
                )
            except ReproError:
                continue  # ack not inside this block's state root yet
            del staged[key]
            self._return_ack(origin, receiver, packet, ack, proof, height)

    def _return_ack(self, origin: LinkEnd, receiver: LinkEnd, packet: Packet,
                    ack: Acknowledgement, proof, height: int,
                    attempt: int = 1) -> None:
        incarnation = self._incarnation
        out_key = (str(packet.source_channel), packet.sequence)

        def done(result: DeliveryResult) -> None:
            if incarnation != self._incarnation:
                return
            applied = result.success
            if not applied:
                # Idempotency: the origin clears its commitment when it
                # accepts the ack; a missing commitment means it landed.
                try:
                    applied = not origin.contract.ibc.store.contains_seq(
                        paths.commitment_prefix(packet.source_port,
                                                packet.source_channel),
                        packet.sequence,
                    )
                except SealedNodeError:
                    applied = True
            if applied:
                self._outstanding[origin.chain_id].pop(out_key, None)
                self.sim.trace.count("fabric.acks.returned")
                self.metrics.acks_returned += 1
                # The origin processed the ack: seal it on the receiver
                # (bounded storage, §III-A).
                self._confirm_seal(receiver, packet)
                return
            if not self.retry_policy.allows(attempt):
                self.sim.trace.count("fabric.retries.exhausted")
                return
            self.metrics.retries += 1
            delay = self.retry_policy.delay(attempt, self._retry_rng)

            def fire() -> None:
                if incarnation != self._incarnation or self.paused:
                    return
                self._return_ack(origin, receiver, packet, ack, proof,
                                 height, attempt + 1)

            self.sim.schedule(delay, fire)

        origin.api.acknowledge_packet(
            packet, ack, proof, height,
            tip_lamports=self.config.bundle_tip_lamports,
            on_done=done, prelude=self._adopt_prelude(origin, height),
        )

    def _confirm_seal(self, receiver: LinkEnd, packet: Packet) -> None:
        try:
            receiver.api.confirm_ack(
                str(packet.destination_port),
                str(packet.destination_channel),
                packet.sequence,
            )
        except HostUnavailableError:
            self.sim.trace.count("fabric.confirms.deferred")

    # ==================================================================
    # Timeout cancellation
    # ==================================================================

    def _scan_timeouts(self) -> None:
        self.sim.schedule(self.config.poll_seconds, self._scan_timeouts)
        if self.paused:
            return
        for chain_id, outstanding in self._outstanding.items():
            origin = self._ends[chain_id]
            dst = self._peers[chain_id]
            for key, (packet, _height) in list(outstanding.items()):
                if not packet.timeout_timestamp:
                    continue
                if self._try_timeout(origin, dst, packet):
                    del outstanding[key]

    def _expired_height(self, dst: LinkEnd, deadline: float) -> Optional[int]:
        """Lowest finalised destination height past ``deadline``."""
        for block in dst.contract.blocks:
            if block.finalised and block.header.timestamp > deadline:
                return block.height
        return None

    def _try_timeout(self, origin: LinkEnd, dst: LinkEnd, packet: Packet) -> bool:
        """Cancel one expired send; True removes it from the outstanding
        set (cancelled, or already settled by the other path)."""
        try:
            received = dst.contract.ibc.store.contains_seq(
                paths.receipt_prefix(packet.destination_port,
                                     packet.destination_channel),
                packet.sequence,
            )
        except SealedNodeError:
            received = True
        if received:
            return False  # the ack path settles it
        try:
            outstanding = origin.contract.ibc.store.contains_seq(
                paths.commitment_prefix(packet.source_port,
                                        packet.source_channel),
                packet.sequence,
            )
        except SealedNodeError:
            outstanding = False
        if not outstanding:
            return True  # already acked or timed out on-chain
        height = self._expired_height(dst, packet.timeout_timestamp)
        if height is None:
            return False  # destination clock not past the deadline yet
        try:
            proof = dst.contract.state_view(height).prove_seq_absence(
                paths.receipt_prefix(packet.destination_port,
                                     packet.destination_channel),
                packet.sequence,
            )
        except ReproError:
            return False  # view unavailable; retry next scan
        incarnation = self._incarnation

        def done(result: DeliveryResult) -> None:
            if incarnation != self._incarnation:
                return
            if result.success:
                self.sim.trace.count("fabric.timeouts.cancelled")
                self.metrics.timeouts_cancelled += 1
            # Failure: the next scan re-evaluates from on-chain state.

        origin.api.timeout_packet(
            packet, proof, height,
            tip_lamports=self.config.bundle_tip_lamports,
            on_done=done, prelude=self._adopt_prelude(origin, height),
        )
        return True

    # ==================================================================
    # Chaos compatibility (docs/CHAOS.md)
    # ==================================================================

    def crash(self) -> None:
        """Kill the relayer process: all volatile state is lost."""
        self.paused = True
        self._incarnation += 1
        self.metrics.crashes += 1
        self.sim.trace.count("fabric.relayer.crashes")
        for staged in self._pending_acks.values():
            staged.clear()
        for outstanding in self._outstanding.values():
            outstanding.clear()
        self._handshake_waiters.clear()
        for waiters in self._finalised_waiters.values():
            waiters.clear()
        self._bundle_queue.clear()

    def restart(self) -> None:
        """Rebuild from on-chain history, then resume.

        For each direction: every finalised link packet whose commitment
        is still outstanding on the origin either never reached the
        destination (redeliver it) or reached it but lost its ack return
        with the crash (re-stage the written ack).  Over-recovery is
        idempotency-checked on both paths, so replaying history is safe.
        """
        self.sim.trace.count("fabric.relayer.restarts")
        for src_id, src in self._ends.items():
            if src.channel is None:
                continue
            dst = self._peers[src_id]
            recovered = 0
            for block in src.contract.blocks:
                if not block.finalised:
                    continue
                for packet in src.contract.packets_in_block(block.height):
                    if (packet.source_port, packet.source_channel) != (
                            src.port, src.channel):
                        continue
                    try:
                        outstanding = src.contract.ibc.store.contains_seq(
                            paths.commitment_prefix(packet.source_port,
                                                    packet.source_channel),
                            packet.sequence,
                        )
                    except SealedNodeError:
                        outstanding = False
                    if not outstanding:
                        continue
                    key = (str(packet.source_channel), packet.sequence)
                    self._outstanding[src_id][key] = (packet, block.height)
                    try:
                        received = dst.contract.ibc.store.contains_seq(
                            paths.receipt_prefix(packet.destination_port,
                                                 packet.destination_channel),
                            packet.sequence,
                        )
                    except SealedNodeError:
                        received = True
                    if received:
                        entry = dst.contract.ibc.written_acks.get(
                            (str(packet.destination_channel), packet.sequence))
                        if entry is not None:
                            ack_key = (str(packet.destination_channel),
                                       packet.sequence)
                            self._pending_acks[dst.chain_id][ack_key] = entry
                    else:
                        self._deliver(src, packet, block.height)
                    recovered += 1
            if recovered:
                self.sim.trace.count("fabric.recovered", recovered)
        self.resume()

    def resume(self) -> None:
        self.paused = False
        missed, self._missed_finalised = self._missed_finalised, []
        for event in missed:
            self._on_finalised_block(event)

    # ==================================================================
    # Handshakes (ICS-03 + ICS-04, both ends guest-side)
    # ==================================================================

    def _guest_handshake(self, end: LinkEnd, msg,
                         then: Callable[[Optional[str], int], None]) -> None:
        self._handshake_waiters[end.chain_id] = then
        try:
            end.api.submit_handshake(msg)
        except HostUnavailableError:
            self.sim.trace.count("fabric.handshakes.deferred")
            self.sim.schedule(
                self.retry_policy.delay(1, self._retry_rng),
                end.api.submit_handshake, msg,
            )

    def _await_final(self, end: LinkEnd, min_slot: int,
                     then: Callable[[int], None]) -> None:
        """Run ``then(height)`` once a finalised block of ``end`` covers
        every mutation up to host slot ``min_slot``."""
        candidates = [
            block for block in end.contract.blocks
            if block.finalised and block.header.host_slot >= min_slot
        ]
        if candidates:
            block = min(candidates, key=lambda b: b.height)
            self._run_waiter(end, min_slot, then, block.height)
            return
        self._finalised_waiters[end.chain_id].append((min_slot, then))

    def _run_waiter(self, end: LinkEnd, min_slot: int,
                    action: Callable[[int], None], height: int) -> None:
        # Same-slot race (see Relayer._run_waiter): the block may predate
        # the mutation within its slot; requeue for a strictly later one.
        try:
            action(height)
        except KeyNotFoundError:
            self._finalised_waiters[end.chain_id].append((min_slot + 1, action))

    def _adopt_then(self, end: LinkEnd, height: int,
                    then: Callable[[], None]) -> None:
        """Make ``end``'s sibling client cover ``height``, then continue.
        Handshake datagrams carry no prelude (unlike packet bundles), so
        the adoption rides as its own awaited transaction."""
        if end.client().consensus_root(height) is not None:
            then()
            return

        def on_result(receipt) -> None:
            if receipt.success:
                then()
            else:  # transient (e.g. peer block not finalised yet): retry
                self.sim.schedule(
                    self.retry_policy.base_seconds,
                    self._adopt_then, end, height, then,
                )

        end.api.sibling_update(str(end.client_of_peer), height, on_result=on_result)

    def open_link(self, on_open: Callable[[ChannelId, ChannelId], None],
                  order: ChannelOrder = ChannelOrder.UNORDERED) -> None:
        """Drive the full connection + channel handshake, A-initiated.
        ``on_open`` receives (A channel, B channel)."""
        a, b = self.a, self.b

        def prime() -> None:
            # Both clients must track at least one finalised peer height
            # before the handshake: proofs verify against adopted roots
            # and validate_self_client reads each client's state summary.
            ha = a.contract.head.height if a.contract.blocks else 0
            hb = b.contract.head.height if b.contract.blocks else 0
            self._adopt_then(
                a, self._latest_final(b, hb),
                lambda: self._adopt_then(
                    b, self._latest_final(a, ha), conn_step1),
            )

        def conn_step1() -> None:
            self._guest_handshake(
                a,
                msgs.MsgConnOpenInit(
                    client_id=a.client_of_peer,
                    counterparty_client_id=b.client_of_peer,
                ),
                lambda created, slot: conn_step2(ConnectionId(created), slot),
            )

        def conn_step2(conn_a: ConnectionId, slot: int) -> None:
            a.connection = conn_a

            def after_final(height: int) -> None:
                proof = a.contract.state_view(height).prove(
                    paths.connection_path(conn_a))

                def submit() -> None:
                    self._guest_handshake(
                        b,
                        msgs.MsgConnOpenTry(
                            client_id=b.client_of_peer,
                            counterparty_client_id=a.client_of_peer,
                            counterparty_connection_id=conn_a,
                            proof=proof, proof_height=height,
                            # What A's client of B claims about B — B
                            # validates this on-chain (ICS-03
                            # validate_self_client).
                            client_state=a.client().state_summary().to_bytes(),
                        ),
                        lambda created, s: conn_step3(ConnectionId(created), s),
                    )

                self._adopt_then(b, height, submit)

            self._await_final(a, slot, after_final)

        def conn_step3(conn_b: ConnectionId, slot: int) -> None:
            b.connection = conn_b

            def after_final(height: int) -> None:
                proof = b.contract.state_view(height).prove(
                    paths.connection_path(conn_b))

                def submit() -> None:
                    self._guest_handshake(
                        a,
                        msgs.MsgConnOpenAck(
                            connection_id=a.connection,
                            counterparty_connection_id=conn_b,
                            proof=proof, proof_height=height,
                            client_state=b.client().state_summary().to_bytes(),
                        ),
                        lambda _created, s: conn_step4(s),
                    )

                self._adopt_then(a, height, submit)

            self._await_final(b, slot, after_final)

        def conn_step4(slot: int) -> None:
            def after_final(height: int) -> None:
                proof = a.contract.state_view(height).prove(
                    paths.connection_path(a.connection))

                def submit() -> None:
                    self._guest_handshake(
                        b,
                        msgs.MsgConnOpenConfirm(
                            connection_id=b.connection,
                            proof=proof, proof_height=height,
                        ),
                        lambda _created, s: chan_step1(),
                    )

                self._adopt_then(b, height, submit)

            self._await_final(a, slot, after_final)

        def chan_step1() -> None:
            self._guest_handshake(
                a,
                msgs.MsgChanOpenInit(
                    port_id=a.port, connection_id=a.connection,
                    counterparty_port_id=b.port, order=order,
                ),
                lambda created, slot: chan_step2(ChannelId(created), slot),
            )

        def chan_step2(chan_a: ChannelId, slot: int) -> None:
            def after_final(height: int) -> None:
                proof = a.contract.state_view(height).prove(
                    paths.channel_path(a.port, chan_a))

                def submit() -> None:
                    self._guest_handshake(
                        b,
                        msgs.MsgChanOpenTry(
                            port_id=b.port, connection_id=b.connection,
                            counterparty_port_id=a.port,
                            counterparty_channel_id=chan_a, order=order,
                            proof=proof, proof_height=height,
                        ),
                        lambda created, s: chan_step3(chan_a, ChannelId(created), s),
                    )

                self._adopt_then(b, height, submit)

            self._await_final(a, slot, after_final)

        def chan_step3(chan_a: ChannelId, chan_b: ChannelId, slot: int) -> None:
            def after_final(height: int) -> None:
                proof = b.contract.state_view(height).prove(
                    paths.channel_path(b.port, chan_b))

                def submit() -> None:
                    self._guest_handshake(
                        a,
                        msgs.MsgChanOpenAck(
                            port_id=a.port, channel_id=chan_a,
                            counterparty_channel_id=chan_b,
                            proof=proof, proof_height=height,
                        ),
                        lambda _created, s: chan_step4(chan_a, chan_b, s),
                    )

                self._adopt_then(a, height, submit)

            self._await_final(b, slot, after_final)

        def chan_step4(chan_a: ChannelId, chan_b: ChannelId, slot: int) -> None:
            def after_final(height: int) -> None:
                proof = a.contract.state_view(height).prove(
                    paths.channel_path(a.port, chan_a))

                def submit() -> None:
                    def finish(_created, _slot) -> None:
                        a.channel = chan_a
                        b.channel = chan_b
                        on_open(chan_a, chan_b)

                    self._guest_handshake(
                        b,
                        msgs.MsgChanOpenConfirm(
                            port_id=b.port, channel_id=chan_b,
                            proof=proof, proof_height=height,
                        ),
                        finish,
                    )

                self._adopt_then(b, height, submit)

            self._await_final(a, slot, after_final)

        prime()

    @staticmethod
    def _latest_final(end: LinkEnd, upto: int) -> int:
        """Highest finalised height of ``end`` (genesis is finalised, so
        one always exists once the contract is initialized)."""
        for block in reversed(end.contract.blocks):
            if block.finalised and block.height <= upto:
                return block.height
        return 0


# ======================================================================
# Route table: named multi-hop paths over the fabric
# ======================================================================

@dataclass(frozen=True)
class Hop:
    """One egress in a route: the channel chain ``chain`` sends on."""

    chain: str
    port: str
    channel: str


class RouteTable:
    """Named routes, each a list of per-chain egress hops in path order.

    The first hop belongs to the *origin* chain and is dialled directly;
    the remaining hops are encoded into the ICS-20 receiver as nested
    ``fwd:`` segments (see :mod:`repro.fabric.forward`), which each
    intermediate guest's forwarding middleware peels and executes.
    """

    def __init__(self) -> None:
        self._routes: dict[str, list[Hop]] = {}

    def add(self, name: str, hops: list[Hop]) -> None:
        if not hops:
            raise ValueError(f"route {name!r} needs at least one hop")
        self._routes[name] = list(hops)

    def route(self, name: str) -> list[Hop]:
        if name not in self._routes:
            raise KeyError(f"unknown route {name!r}")
        return list(self._routes[name])

    def names(self) -> list[str]:
        return sorted(self._routes)

    def first_hop(self, name: str) -> Hop:
        return self.route(name)[0]

    def hop_count(self, name: str) -> int:
        return len(self.route(name))

    def receiver_for(self, name: str, final_receiver: str) -> str:
        """The receiver string the origin sends with: all hops after the
        first, folded into nested ``fwd:`` segments."""
        rest = [(hop.port, hop.channel) for hop in self.route(name)[1:]]
        return forward_receiver(rest, final_receiver)
