"""The IBC relayer (Alg. 2, lower half) plus handshake coordination.

The relayer is permissionless and untrusted: everything it submits is
proof-checked on-chain, so a faulty relayer can only *delay* packets,
never forge them (§III-C).  It moves four flows:

* **guest → counterparty packets**: on every ``FinalisedBlock`` with
  packets, push the guest header + signatures to the counterparty's
  guest light client, then submit each packet with a membership proof
  against the finalised state root (Alg. 2 lines 4–10);
* **counterparty → guest packets**: poll the counterparty's sends, run a
  *chunked* light-client update on the guest (the Fig. 4/5 flow), then
  deliver each packet as an atomic 4–5-transaction bundle (§V-A);
* **acknowledgements**, both directions, with the same proof machinery;
  confirmed acks are sealed on the guest (§III-A);
* **handshakes**: :meth:`open_connection` / :meth:`open_channel` drive
  the four-step ICS-03/04 handshakes end to end.

All guest-side light-client work funnels through one at-a-time chunked
updates; queued work items declare the minimum counterparty height they
need and run as soon as an update covers it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import (
    HostUnavailableError, KeyNotFoundError, ReproError, SealedNodeError,
)
from repro.guest.api import BatchOp, DeliveryResult, GuestApi, LcUpdateResult
from repro.guest.contract import GuestContract
from repro.host.chain import HostChain
from repro.host.events import HostEvent
from repro.host.fees import AdaptiveFee, BaseFee, FeeStrategy
from repro.ibc import messages as msgs
from repro.ibc import commitment as paths
from repro.ibc.channel import ChannelOrder
from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId
from repro.ibc.packet import Acknowledgement, Packet
from repro.lightclient.guest_client import GuestClientUpdate, GuestLightClient
from repro.relayer.resilience import CircuitBreaker, RetryPolicy
from repro.relayer.strategy import SpendLedger
from repro.sim.kernel import Simulation
from repro.sim.rng import Rng
from repro.counterparty.chain import CounterpartyChain


@dataclass
class RelayerConfig:
    """Relayer tunables."""

    #: Transactions kept in flight during a chunked LC update; real
    #: relayers rate-limit for ordering and fee predictability.  This
    #: window is the main knob behind the Fig. 4 latency distribution.
    lc_update_window: int = 3
    #: Tip paid per delivery bundle.  The deployment's relayer used "the
    #: default Solana fee model" (§V-B) — its ReceivePacket transactions
    #: landed together without paying a tip — so the default is zero.
    bundle_tip_lamports: int = 0
    #: Counterparty send-queue polling period, seconds.
    poll_seconds: float = 3.0
    #: Maximum packet operations coalesced into one delivery bundle.
    #: 1 (the default) keeps the classic one-bundle-per-packet flow of
    #: §V-A; higher values enable BATCH_EXEC coalescing — pending
    #: RecvPacket/ack work accumulates and flushes as a single bundle.
    batch_max_packets: int = 1
    #: How long a partially filled batch may wait before it is flushed.
    batch_flush_seconds: float = 1.0
    #: Cap on the transactions one coalesced bundle may need.  Bundles
    #: schedule atomically, so a bundle larger than the host's block
    #: transaction limit could never land; a flush whose staged bytes
    #: would exceed this splits into several bundles.
    batch_max_bundle_txs: int = 8
    #: Optional backpressure: delivery bundles the relayer keeps in the
    #: host mempool at once (``None`` = unbounded, the classic flow).
    #: Excess bundles wait in the relayer's own queue instead of
    #: deepening the mempool backlog.
    max_inflight_bundles: Optional[int] = None
    #: Price LC-update transactions with the §VI-B congestion-probing
    #: :class:`~repro.host.fees.AdaptiveFee` instead of the flat base
    #: fee.  Height updates gate every queued delivery, so letting them
    #: crawl through a congestion spike at base-fee priority stalls the
    #: whole pipeline for tens of seconds.
    adaptive_lc_fees: bool = False
    #: Minimum seconds between LC updates.  One update costs the same
    #: dozens of transactions whether it advances the client by one
    #: counterparty height or a hundred, so under sustained load a
    #: hold-down makes each update cover more packets and shrinks the
    #: per-packet share of the §V-A update tax.
    lc_update_min_seconds: float = 0.0
    #: Bounded retry for failed packet operations (docs/CHAOS.md): a
    #: failed delivery/ack resubmits with exponential backoff and
    #: deterministic jitter, after an idempotency check against the
    #: guest's on-chain record (no double delivery, ever).
    retry_max_attempts: int = 8
    retry_base_seconds: float = 2.0
    retry_cap_seconds: float = 30.0
    #: Circuit breaker over the host RPC edge: after this many
    #: consecutive blackout refusals the relayer stops hammering the
    #: endpoint and probes on a doubling interval instead.
    breaker_failure_threshold: int = 3
    breaker_reset_seconds: float = 5.0
    breaker_reset_cap_seconds: float = 60.0
    #: Watchdog period (seconds, 0 disables): re-kicks LC updates and
    #: bundle pumps that an error path or crash left wedged.
    watchdog_seconds: float = 45.0


@dataclass
class RelayerMetrics:
    """What the §V-B experiments read off the relayer."""

    lc_updates: list[LcUpdateResult] = field(default_factory=list)
    deliveries: list[DeliveryResult] = field(default_factory=list)
    acks_returned: list[DeliveryResult] = field(default_factory=list)
    packets_relayed_to_counterparty: int = 0
    packets_relayed_to_guest: int = 0
    #: Recovery accounting (docs/CHAOS.md / BENCH_chaos.json).
    retries: int = 0
    redeliveries: int = 0
    crashes: int = 0


class Relayer:
    """One relayer bridging the guest and the counterparty."""

    def __init__(self, sim: Simulation, host: HostChain,
                 counterparty: CounterpartyChain, contract: GuestContract,
                 api: GuestApi, guest_client: GuestLightClient,
                 guest_client_id_on_cp: ClientId,
                 config: Optional[RelayerConfig] = None) -> None:
        self.sim = sim
        self.host = host
        self.counterparty = counterparty
        self.contract = contract
        self.api = api
        self.guest_client = guest_client
        self.guest_client_id_on_cp = guest_client_id_on_cp
        self.config = config or RelayerConfig()
        self.metrics = RelayerMetrics()
        #: §V-B bookkeeping: every lamport this relayer burns, by flow.
        self.ledger = SpendLedger()

        # Filled in by the handshakes (or wired directly by tests).
        self.guest_connection_id: Optional[ConnectionId] = None
        self.cp_connection_id: Optional[ConnectionId] = None
        #: Every channel this relayer opened, both ends.  One link can
        #: multiplex several channels (§III-A); the fabric filters (a
        #: foreign guest's packets on a shared host) test membership
        #: here, never just the latest channel.
        self.guest_channels: set[tuple[PortId, ChannelId]] = set()
        self.cp_channels: set[tuple[PortId, ChannelId]] = set()
        self.guest_channel: Optional[tuple[PortId, ChannelId]] = None
        self.cp_channel: Optional[tuple[PortId, ChannelId]] = None

        #: Failure-injection switch: a paused relayer observes nothing
        #: and submits nothing; packets queue up and flow on resume.
        self.paused = False
        self._lc_busy = False
        self._lc_queue: list[tuple[int, Callable[[int], None]]] = []
        self._lc_last_finish = float("-inf")
        self._lc_holddown_handle = None
        self._cp_sends_seen = 0
        self._finalised_waiters: list[tuple[int, Callable[[int], None]]] = []
        self._last_relayed_guest_height = 0
        #: (dst_channel, sequence) -> staged guest->cp ack return info.
        self._pending_guest_acks: dict[tuple[str, int], tuple[Packet, Acknowledgement]] = {}
        self._handshake_waiter: Optional[Callable[[Optional[str], int], None]] = None
        self._missed_finalised: list[HostEvent] = []
        #: Pending (op, span) pairs awaiting a batched flush.
        self._pending_batch: list = []
        self._batch_flush_handle = None
        #: Delivery bundles not yet handed to the host (backpressure).
        self._bundle_queue: deque[Callable[[], None]] = deque()
        self._bundles_in_flight = 0
        #: Ack confirmations awaiting a coalesced CONFIRM_ACK flush.
        self._pending_confirms: list[tuple[str, str, int]] = []
        self._confirm_flush_handle = None

        # -- recovery machinery (docs/CHAOS.md) ------------------------
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_seconds=self.config.retry_base_seconds,
            cap_seconds=self.config.retry_cap_seconds,
        )
        self.breaker = CircuitBreaker(
            sim, name="relay.breaker",
            failure_threshold=self.config.breaker_failure_threshold,
            reset_seconds=self.config.breaker_reset_seconds,
            reset_cap_seconds=self.config.breaker_reset_cap_seconds,
        )
        #: Jitter stream minted via ``derived_seed`` so retries never
        #: perturb the draws the rest of the simulation would make.
        self._retry_rng = Rng(sim.rng.derived_seed("relayer-retry"))
        #: Bumped by :meth:`crash`; callbacks capture the value at
        #: submission and drop themselves if it moved (a dead process's
        #: callbacks never run).
        self._incarnation = 0
        self._pump_retry_handle = None
        #: Completion frontier over the counterparty's send queue: the
        #: poll cursor can always rewind to ``_cp_frontier`` (the oldest
        #: send not yet confirmed applied on the guest) after a crash
        #: without losing or double-counting packets.
        self._cp_frontier = 0
        self._cp_done: set[int] = set()
        self._cp_index_by_key: dict[tuple[str, int], int] = {}
        if self.config.watchdog_seconds > 0:
            sim.schedule(self.config.watchdog_seconds, self._watchdog)

        host.subscribe("FinalisedBlock", self._on_finalised_block)
        host.subscribe("PacketReceived", self._on_guest_packet_received)
        host.subscribe("HandshakeStep", self._on_guest_handshake_step)
        sim.schedule(self.config.poll_seconds, self._poll_counterparty)

    # ==================================================================
    # Guest -> counterparty direction (Alg. 2)
    # ==================================================================

    def _on_finalised_block(self, event: HostEvent) -> None:
        if not self._is_our_guest_event(event):
            return  # another guest on the same host (multi-guest fabric)
        if self.paused:
            # Missed while down; the catch-up sweep below re-relays.
            self._missed_finalised.append(event)
            return
        height = event.payload["height"]
        header = event.payload["header"]
        packets = tuple(
            p for p in event.payload["packets"] if self._on_our_guest_channel(p)
        )
        signatures = event.payload["signatures"]
        new_epoch = event.payload.get("new_epoch")

        slot = header.host_slot
        waiters = [w for w in self._finalised_waiters if w[0] <= slot]
        self._finalised_waiters = [w for w in self._finalised_waiters if w[0] > slot]
        has_ack_work = bool(self._pending_guest_acks)

        if not packets and not header.last_in_epoch and not waiters and not has_ack_work:
            return  # Alg. 2 line 5: nothing to relay

        del new_epoch  # the event's next-epoch hint; we ship the header's own set
        update = GuestClientUpdate(
            header=header, signatures=signatures,
            # Always carry the header's own epoch: the counterparty's
            # client may have skipped epochs (it validates by hash and
            # the 1/3-overlap rule, so this is never trusted blindly).
            new_epoch=self.contract.epochs.get(header.epoch_id),
        )

        def after_update(result, cp_height: int) -> None:
            if isinstance(result, ReproError):
                # Stale/duplicate/old-epoch update: keep the waiters so a
                # later finalised block can satisfy them (liveness).
                self._finalised_waiters.extend(waiters)
                return
            self._last_relayed_guest_height = height
            for packet in packets:
                self._deliver_to_counterparty(packet, height)
            self._return_guest_acks(height)
            for min_slot, action in waiters:
                self._run_waiter(min_slot, action, height)

        self.counterparty.submit(
            lambda: self.guest_client.update(update), on_result=after_update,
        )

    def _deliver_to_counterparty(self, packet: Packet, proof_height: int) -> None:
        """Alg. 2 lines 7–10: prove the commitment, deliver the packet."""
        view = self.contract.state_view(proof_height)
        proof = view.prove_seq(
            paths.commitment_prefix(packet.source_port, packet.source_channel),
            packet.sequence,
        )
        # Finalised on the guest -> committed on the counterparty (the
        # tail of the packet's trace tree).
        self.sim.trace.begin("packet.relay", key=packet.sequence, actor="relayer")

        def after_recv(result, cp_height: int) -> None:
            if isinstance(result, ReproError):
                self.sim.trace.count("relay.duplicate_deliveries")
                return  # e.g. double delivery by a competing relayer
            self.sim.trace.finish("packet.relay", key=packet.sequence,
                                  cp_height=cp_height)
            self.sim.trace.count("relay.packets.to_counterparty")
            self.metrics.packets_relayed_to_counterparty += 1
            # The counterparty wrote its ack at cp_height; bring it home.
            self._queue_guest_work(
                cp_height,
                lambda h, p=packet, a=result: self._ack_on_guest(p, a, h),
            )

        self.counterparty.submit(
            lambda: self.counterparty.ibc.recv_packet(
                packet, proof, proof_height, local_time=self.sim.now,
            ),
            on_result=after_recv,
        )

    def _ack_on_guest(self, packet: Packet, ack: Acknowledgement, lc_height: int) -> None:
        """Prove the counterparty's ack to the guest (4–5 tx bundle)."""
        store = self.counterparty.store_at(lc_height)
        proof = store.prove_seq(
            paths.ack_prefix(packet.destination_port, packet.destination_channel),
            packet.sequence,
        )
        self._dispatch_guest_op(
            BatchOp(kind="ack", packet=packet, proof=proof,
                    proof_height=lc_height, ack=ack),
            span=None,
        )

    # ==================================================================
    # Counterparty -> guest direction
    # ==================================================================

    def resume(self) -> None:
        """Come back from a failure-injected outage: replay the
        finalised-block events missed while down, then re-kick the LC
        pipeline in case queued work was waiting on us.  Safe to call
        while a hold-down retry timer is pending — the kick is guarded,
        so no duplicate timer is armed and no queued packet is lost."""
        self.paused = False
        missed, self._missed_finalised = self._missed_finalised, []
        for event in missed:
            self._on_finalised_block(event)
        self._kick_lc_update()

    def crash(self) -> None:
        """Chaos fault: kill the relayer process, losing volatile state.

        Everything not yet handed to a chain is gone: staged batches,
        queued bundles, queued LC work, staged ack returns, pending
        timers.  Requests already accepted by an RPC may still land, but
        their callbacks belong to the dead incarnation and are dropped.
        The poll cursor rewinds to the completion frontier so every
        counterparty packet whose delivery was uncommitted is re-fetched
        after :meth:`restart`; the idempotency check in the retry path
        keeps delivery exactly-once despite the replay.
        """
        self.paused = True
        self._incarnation += 1
        self.metrics.crashes += 1
        self.sim.trace.count("relay.crashes")
        self._pending_batch = []
        if self._batch_flush_handle is not None:
            self._batch_flush_handle.cancel()
            self._batch_flush_handle = None
        self._bundle_queue.clear()
        self._bundles_in_flight = 0
        if self._pump_retry_handle is not None:
            self._pump_retry_handle.cancel()
            self._pump_retry_handle = None
        self._pending_confirms = []
        if self._confirm_flush_handle is not None:
            self._confirm_flush_handle.cancel()
            self._confirm_flush_handle = None
        self._lc_queue = []
        self._lc_busy = False
        if self._lc_holddown_handle is not None:
            self._lc_holddown_handle.cancel()
            self._lc_holddown_handle = None
        self._pending_guest_acks.clear()
        self._cp_index_by_key.clear()
        self._cp_sends_seen = self._cp_frontier

    def restart(self) -> None:
        """Recover from a :meth:`crash`: rebuild the staged ack-return
        set from retained host history, resume event handling (replaying
        finalised blocks missed while down) and let the rewound poll
        cursor re-fetch every in-doubt counterparty packet."""
        self.sim.trace.count("relay.restarts")
        self._recover_pending_acks()
        self._recover_outstanding_acks()
        self.resume()

    def _recover_pending_acks(self) -> None:
        """Rescan retained host blocks for ``PacketReceived`` events
        whose ack return was lost with the crash.  Acks that were in
        fact already returned are rejected by the counterparty when
        resubmitted (and the rejection ignored), so over-recovery is
        harmless — only the omission would be a liveness bug."""
        recovered = 0
        for block in self.host.blocks:
            for event in block.events:
                if event.name != "PacketReceived":
                    continue
                if not self._is_our_guest_event(event):
                    continue
                packet = event.payload.get("packet")
                ack_bytes = event.payload.get("ack_bytes")
                if packet is None or ack_bytes is None:
                    continue
                if self.guest_channels and (
                        packet.destination_port, packet.destination_channel
                ) not in self.guest_channels:
                    continue
                key = (event.payload["channel"], event.payload["sequence"])
                if key in self._pending_guest_acks:
                    continue
                self._pending_guest_acks[key] = (
                    packet, Acknowledgement.from_bytes(ack_bytes))
                recovered += 1
        if recovered:
            self.sim.trace.count("relay.acks.recovered", recovered)

    def _recover_outstanding_acks(self) -> None:
        """Rescan the counterparty's written-ack log for guest->cp
        packets the crash orphaned mid-ack-return: the counterparty
        received the packet and wrote its ack, but the op hauling that
        ack home lived only in the volatile LC/batch queues.  Any packet
        whose commitment is still outstanding on the guest gets its ack
        re-queued; for acks that did land, the commitment is gone and
        the scan skips them, so over-recovery costs nothing."""
        recovered = 0
        for packet, ack in self.counterparty.ibc.written_acks.values():
            if not self._on_our_guest_channel(packet):
                continue
            try:
                outstanding = self.contract.ibc.store.contains_seq(
                    paths.commitment_prefix(packet.source_port,
                                            packet.source_channel),
                    packet.sequence,
                )
            except SealedNodeError:
                outstanding = False
            if not outstanding:
                continue
            self._queue_guest_work(
                self.counterparty.height,
                lambda h, p=packet, a=ack: self._ack_on_guest(p, a, h),
            )
            recovered += 1
        if recovered:
            self.sim.trace.count("relay.acks.recovered_cp", recovered)

    def _poll_counterparty(self) -> None:
        if self.paused:
            self.sim.schedule(self.config.poll_seconds, self._poll_counterparty)
            return
        fresh = self.counterparty.sent_packets_since(self._cp_sends_seen)
        base = self._cp_sends_seen
        self._cp_sends_seen += len(fresh)
        for offset, (packet, committed_height) in enumerate(fresh):
            index = base + offset
            if index in self._cp_done:
                continue  # applied before a crash rewound the cursor
            if self.cp_channels and (
                    packet.source_port, packet.source_channel
            ) not in self.cp_channels:
                # Another link's packet (multi-guest fabric): not ours to
                # deliver, but the completion frontier must pass it or a
                # crash-rewind would stall on a foreign index forever.
                self._cp_done.add(index)
                self._advance_cp_frontier()
                continue
            key = (str(packet.source_channel), packet.sequence)
            self._cp_index_by_key[key] = index
            self._queue_guest_work(
                committed_height,
                lambda h, p=packet: self._deliver_to_guest(p, h),
            )
        self.sim.schedule(self.config.poll_seconds, self._poll_counterparty)

    def _mark_cp_done(self, op: BatchOp) -> None:
        """Record that a counterparty->guest packet is applied on-chain
        and advance the completion frontier past every contiguous done
        index (the crash-rewind point for the poll cursor)."""
        if op.kind != "recv":
            return
        key = (str(op.packet.source_channel), op.packet.sequence)
        index = self._cp_index_by_key.pop(key, None)
        if index is None:
            return
        self._cp_done.add(index)
        self._advance_cp_frontier()

    def _advance_cp_frontier(self) -> None:
        while self._cp_frontier in self._cp_done:
            self._cp_done.discard(self._cp_frontier)
            self._cp_frontier += 1

    @property
    def guest_channel(self) -> Optional[tuple[PortId, ChannelId]]:
        """The most recently opened guest channel end (legacy surface);
        reads and direct test wiring both keep ``guest_channels`` in
        sync so the fabric filters see every channel."""
        return self._guest_channel

    @guest_channel.setter
    def guest_channel(self, value: Optional[tuple[PortId, ChannelId]]) -> None:
        self._guest_channel = value
        if value is not None:
            self.guest_channels.add(value)

    @property
    def cp_channel(self) -> Optional[tuple[PortId, ChannelId]]:
        return self._cp_channel

    @cp_channel.setter
    def cp_channel(self, value: Optional[tuple[PortId, ChannelId]]) -> None:
        self._cp_channel = value
        if value is not None:
            self.cp_channels.add(value)

    def _is_our_guest_event(self, event: HostEvent) -> bool:
        """Host events carry a ``guest`` chain-id tag so N guests can
        share one host without their relayers cross-firing."""
        return event.payload.get("guest", self.contract.chain_id) \
            == self.contract.chain_id

    def _on_our_guest_channel(self, packet) -> bool:
        """Is this guest-outbound packet on one of this relayer's
        channels?  Before any channel opens (handshake phase) every
        packet is carried, preserving the single-link behaviour."""
        if not self.guest_channels:
            return True
        return (packet.source_port, packet.source_channel) \
            in self.guest_channels

    def _op_already_applied(self, op: BatchOp) -> bool:
        """Idempotency check before a resubmission: did an earlier
        attempt — ours pre-crash, or a rival relayer's — already land
        this operation on the guest?  Receipts may be sealed (§III-A);
        a sealed receipt means processed-and-pruned, i.e. applied."""
        store = self.contract.ibc.store
        packet = op.packet
        try:
            if op.kind == "recv":
                return store.contains_seq(
                    paths.receipt_prefix(packet.destination_port,
                                         packet.destination_channel),
                    packet.sequence,
                )
            if op.kind == "ack":
                # The guest clears the packet commitment when it accepts
                # the ack; a missing commitment means the ack landed.
                return not store.contains_seq(
                    paths.commitment_prefix(packet.source_port,
                                            packet.source_channel),
                    packet.sequence,
                )
        except SealedNodeError:
            return True
        return False

    def _deliver_to_guest(self, packet: Packet, lc_height: int) -> None:
        store = self.counterparty.store_at(lc_height)
        proof = store.prove_seq(
            paths.commitment_prefix(packet.source_port, packet.source_channel),
            packet.sequence,
        )
        delivery_span = self.sim.trace.span(
            "packet.deliver_to_guest", key=packet.sequence, actor="relayer",
        )
        self._dispatch_guest_op(
            BatchOp(kind="recv", packet=packet, proof=proof, proof_height=lc_height),
            span=delivery_span,
        )

    # -- batched guest-side submission ---------------------------------

    def _dispatch_guest_op(self, op: BatchOp, span) -> None:
        """Route one guest-side packet operation: straight to its own
        bundle in the classic flow, or into the pending batch."""
        if self.config.batch_max_packets <= 1:
            self._submit_single(op, span)
            return
        self._pending_batch.append((op, span))
        if len(self._pending_batch) >= self.config.batch_max_packets:
            self._flush_batch()
        elif self._batch_flush_handle is None:
            self._batch_flush_handle = self.sim.schedule(
                self.config.batch_flush_seconds, self._flush_batch,
            )

    def _enqueue_bundle(self, launch: Callable[[], None]) -> None:
        """Hold submissions so at most ``max_inflight_bundles`` delivery
        bundles sit in the host mempool; see :class:`RelayerConfig`."""
        self._bundle_queue.append(launch)
        self._pump_bundles()

    def _pump_bundles(self) -> None:
        cap = self.config.max_inflight_bundles
        while self._bundle_queue and (cap is None or self._bundles_in_flight < cap):
            if not self.breaker.allow():
                # RPC edge is tripped: hold the queue until the probe
                # window opens instead of hammering a dead endpoint.
                self._schedule_pump_retry()
                return
            launch = self._bundle_queue.popleft()
            self._bundles_in_flight += 1
            try:
                launch()
            except HostUnavailableError:
                # Blackout refusal: nothing was broadcast.  Requeue at
                # the front, feed the breaker, and probe again later.
                self._bundles_in_flight -= 1
                self._bundle_queue.appendleft(launch)
                self.breaker.record_failure()
                self.sim.trace.count("relay.bundles.blackout_deferred")
                self._schedule_pump_retry()
                return
            self.breaker.record_success()

    def _schedule_pump_retry(self) -> None:
        if self._pump_retry_handle is not None:
            return
        delay = max(self.breaker.retry_after(),
                    self.retry_policy.base_seconds)
        self._pump_retry_handle = self.sim.schedule(delay, self._pump_retry)

    def _pump_retry(self) -> None:
        self._pump_retry_handle = None
        self._pump_bundles()

    def _bundle_done(self) -> None:
        self._bundles_in_flight -= 1
        self._pump_bundles()

    def _submit_single(self, op: BatchOp, span, attempt: int = 1) -> None:
        incarnation = self._incarnation

        def done(result: DeliveryResult) -> None:
            if incarnation != self._incarnation:
                return  # submitted by a crashed incarnation; drop
            self._bundle_done()
            self._record_op_result(op, result)
            if result.success:
                if span is not None:
                    span.end(transactions=result.transaction_count)
                self._mark_cp_done(op)
                return
            self._retry_op(op, span, attempt)

        def launch() -> None:
            tip = self.config.bundle_tip_lamports
            if op.kind == "recv":
                self.api.deliver_packet(op.packet, op.proof, op.proof_height,
                                        tip_lamports=tip, on_done=done)
            else:
                self.api.acknowledge_packet(op.packet, op.ack, op.proof,
                                            op.proof_height, tip_lamports=tip,
                                            on_done=done)

        self._enqueue_bundle(launch)

    def _retry_op(self, op: BatchOp, span, attempt: int) -> None:
        """Bounded, idempotent retry of one failed packet operation."""
        if self._op_already_applied(op):
            # A previous attempt (or a rival relayer) landed it: do not
            # resubmit.  Exactly-once delivery held on-chain; we only
            # record the redundancy.
            self.sim.trace.count("relay.redeliveries")
            self.metrics.redeliveries += 1
            if span is not None:
                span.end(outcome="already-applied")
            self._mark_cp_done(op)
            return
        if not self.retry_policy.allows(attempt):
            self.sim.trace.count("relay.retries.exhausted")
            if span is not None:
                span.end(outcome="abandoned")
            return
        delay = self.retry_policy.delay(attempt, self._retry_rng)
        self.sim.trace.count("relay.retries")
        self.metrics.retries += 1
        self.sim.schedule(delay, self._retry_fire, op, span, attempt + 1,
                          self._incarnation)

    def _retry_fire(self, op: BatchOp, span, attempt: int, incarnation: int) -> None:
        if incarnation != self._incarnation or self.paused:
            return  # crashed or paused meanwhile; replay handles it
        self._submit_single(op, span, attempt)

    def _record_op_result(self, op: BatchOp, result: DeliveryResult) -> None:
        if op.kind == "recv":
            self.metrics.deliveries.append(result)
            self.ledger.record("delivery", result.total_fee, result.transaction_count)
            self.sim.trace.observe("relay.delivery.fee", result.total_fee)
            self.sim.trace.observe("relay.delivery.txs", result.transaction_count)
            if result.success:
                self.sim.trace.count("relay.packets.to_guest")
                self.metrics.packets_relayed_to_guest += 1
        else:
            self.metrics.acks_returned.append(result)
            self.ledger.record("ack-return", result.total_fee, result.transaction_count)

    def _flush_batch(self) -> None:
        if self._batch_flush_handle is not None:
            self._batch_flush_handle.cancel()
            self._batch_flush_handle = None
        if not self._pending_batch:
            return
        items, self._pending_batch = self._pending_batch, []
        for group in self._bundle_sized_groups(items):
            self._submit_batch(group)

    def _bundle_sized_groups(self, items: list) -> list[list]:
        """Split a flush so each bundle stays schedulable.

        Bundles land atomically, so one whose transaction count exceeds
        the host's per-block limit would sit in the mempool forever.
        Group by projected chunk bytes, leaving the last slot for the
        BATCH_EXEC transaction itself.
        """
        from repro.lightclient.chunked import usable_chunk_bytes
        chunk_size = usable_chunk_bytes(self.host.config.max_transaction_bytes)
        # Conservative per-entry overhead on top of the raw message.
        budget = max(1, self.config.batch_max_bundle_txs - 1) * (chunk_size - 64)
        groups: list[list] = []
        current: list = []
        used = 0
        for op, span in items:
            size = len(op.msg_bytes()) + 32
            if current and used + size > budget:
                groups.append(current)
                current, used = [], 0
            current.append((op, span))
            used += size
        if current:
            groups.append(current)
        return groups

    def _submit_batch(self, items: list) -> None:
        ops = [op for op, _ in items]
        incarnation = self._incarnation

        def done(result: DeliveryResult) -> None:
            if incarnation != self._incarnation:
                return  # submitted by a crashed incarnation; drop
            self._bundle_done()
            if not result.success:
                # The whole bundle failed (rejected as oversized, starved
                # of block space, or dropped in transit): requeue each op
                # on the bounded per-packet retry path — explicit backoff,
                # idempotency-checked, counted — so no packet is lost and
                # none is double-delivered.
                self.sim.trace.count("relay.batch.fallback")
                self.ledger.record("batch-failed", result.total_fee,
                                   result.transaction_count)
                for op, span in items:
                    self.sim.trace.count("relay.batch.requeued")
                    self._retry_op(op, span, attempt=1)
                return
            recv_count = sum(1 for op in ops if op.kind == "recv")
            ack_count = len(ops) - recv_count
            for op, span in items:
                if span is not None:
                    span.end(transactions=result.transaction_count)
                self._mark_cp_done(op)
            # Attribute the bundle's fee pro rata across the two flows
            # (the §V-B ledger stays meaningful under batching).
            fee_share = result.total_fee // len(ops)
            if recv_count:
                self.metrics.deliveries.append(result)
                self.ledger.record("delivery", fee_share * recv_count,
                                   result.transaction_count)
                self.sim.trace.observe("relay.delivery.fee", result.total_fee)
                self.sim.trace.observe("relay.delivery.txs", result.transaction_count)
                self.sim.trace.count("relay.packets.to_guest", recv_count)
                self.metrics.packets_relayed_to_guest += recv_count
            if ack_count:
                self.metrics.acks_returned.append(result)
                self.ledger.record(
                    "ack-return", result.total_fee - fee_share * recv_count, 0,
                )

        def launch() -> None:
            self.sim.trace.count("relay.batches")
            self.sim.trace.observe("relay.batch.packets", len(ops))
            self.api.deliver_batch(
                ops, tip_lamports=self.config.bundle_tip_lamports, on_done=done,
            )

        self._enqueue_bundle(launch)

    def _on_guest_packet_received(self, event: HostEvent) -> None:
        """The guest wrote an ack; return it once a finalised guest block
        covers it (flushed inside :meth:`_on_finalised_block`)."""
        if not self._is_our_guest_event(event):
            return
        key = (event.payload["channel"], event.payload["sequence"])
        packet = event.payload.get("packet")
        ack_bytes = event.payload.get("ack_bytes")
        if packet is None or ack_bytes is None:
            return
        if self.guest_channels and (
                packet.destination_port, packet.destination_channel
        ) not in self.guest_channels:
            return  # another link's inbound packet; its relayer acks it
        self._pending_guest_acks[key] = (packet, Acknowledgement.from_bytes(ack_bytes))

    def _return_guest_acks(self, finalised_height: int) -> None:
        view = self.contract.state_view(finalised_height)
        for key, (packet, ack) in list(self._pending_guest_acks.items()):
            try:
                proof = view.prove_seq(
                    paths.ack_prefix(packet.destination_port, packet.destination_channel),
                    packet.sequence,
                )
            except ReproError:
                continue  # ack not yet inside this block's state root

            def after_ack(result, cp_height: int, packet=packet,
                          incarnation=self._incarnation) -> None:
                if incarnation != self._incarnation:
                    return  # submitted by a crashed incarnation; drop
                if isinstance(result, ReproError):
                    return
                # The sender processed the ack; seal it on the guest
                # (bounded storage, §III-A).
                confirm = (
                    str(packet.destination_port),
                    str(packet.destination_channel),
                    packet.sequence,
                )
                self._confirm_seal(confirm)

            self.counterparty.submit(
                lambda packet=packet, ack=ack, proof=proof,
                       h=finalised_height: self.counterparty.ibc.acknowledge_packet(
                    packet, ack, proof, h,
                ),
                on_result=after_ack,
            )
            del self._pending_guest_acks[key]

    def _confirm_seal(self, confirm: tuple[str, str, int]) -> None:
        if self.config.batch_max_packets > 1:
            # Coalesced flow: seal many acks per transaction instead of
            # paying a host transaction per packet.
            self._pending_confirms.append(confirm)
            if self._confirm_flush_handle is None:
                self._confirm_flush_handle = self.sim.schedule(
                    self.config.batch_flush_seconds,
                    self._flush_confirms,
                )
            return
        try:
            self.api.confirm_ack(*confirm)
        except HostUnavailableError:
            self.sim.trace.count("relay.confirms.deferred")
            self.sim.schedule(
                self.retry_policy.delay(1, self._retry_rng),
                self._confirm_retry, confirm, self._incarnation,
            )

    def _confirm_retry(self, confirm: tuple[str, str, int],
                       incarnation: int) -> None:
        if incarnation != self._incarnation:
            return
        self._confirm_seal(confirm)

    def _flush_confirms(self) -> None:
        self._confirm_flush_handle = None
        confirms, self._pending_confirms = self._pending_confirms, []
        self.sim.trace.observe("relay.confirm_batch.acks", len(confirms))
        self.api.confirm_acks(confirms)

    # ==================================================================
    # Chunked guest-side light-client updates (the Fig. 4/5 flow)
    # ==================================================================

    def _queue_guest_work(self, min_cp_height: int, action: Callable[[int], None]) -> None:
        known = self.contract.counterparty_client.latest_height()
        if known >= min_cp_height:
            action(known)
            return
        self._lc_queue.append((min_cp_height, action))
        self._kick_lc_update()

    def _kick_lc_update(self) -> None:
        if self._lc_busy or not self._lc_queue:
            return
        wait = (self._lc_last_finish
                + self.config.lc_update_min_seconds) - self.sim.now
        if wait > 0:
            # Hold-down: let more work accumulate so the next update
            # amortises over it.  One retry timer is enough — every
            # queued waiter is flushed by the same update.
            if self._lc_holddown_handle is None:
                def retry() -> None:
                    self._lc_holddown_handle = None
                    self._kick_lc_update()
                self._lc_holddown_handle = self.sim.schedule(wait, retry)
            return
        target = self.counterparty.height
        needed = max(height for height, _ in self._lc_queue)
        if target < needed:
            # The needed block is not produced yet; retry shortly.
            self.sim.schedule(self.counterparty.config.block_seconds, self._kick_lc_update)
            return
        self._lc_busy = True
        update = self.counterparty.light_client_update(target)
        self.sim.trace.begin("relay.lc_update", key=target, actor="relayer")
        fee: Optional[FeeStrategy] = None
        if self.config.adaptive_lc_fees:
            fee = AdaptiveFee(lambda: self.host.congestion_at(self.sim.now))
        self.api.submit_lc_update(
            update,
            window=self.config.lc_update_window,
            fee=fee,
            on_done=lambda result, gen=self._incarnation: self._lc_done(result, gen),
        )

    def _lc_done(self, result: LcUpdateResult,
                 generation: Optional[int] = None) -> None:
        if generation is not None and generation != self._incarnation:
            # An update stream started before a crash finished after the
            # restart: its accounting belongs to the dead incarnation and
            # must not corrupt the new one's LC state machine.
            self.sim.trace.count("relay.lc_updates.stale_dropped")
            return
        self._lc_busy = False
        self._lc_last_finish = self.sim.now
        trace = self.sim.trace
        trace.finish("relay.lc_update", key=result.height,
                     transactions=result.transaction_count,
                     success=result.success)
        trace.count("relay.lc_updates")
        trace.observe("relay.lc_update.txs", result.transaction_count)
        trace.observe("relay.lc_update.fee", result.total_fee)
        self.metrics.lc_updates.append(result)
        self.ledger.record("lc-update", result.total_fee, result.transaction_count)
        if result.success:
            ready = [w for w in self._lc_queue if w[0] <= result.height]
            self._lc_queue = [w for w in self._lc_queue if w[0] > result.height]
            for _, action in ready:
                action(result.height)
        if self._lc_queue:
            self._kick_lc_update()

    def _watchdog(self) -> None:
        """Liveness backstop: re-kick work an error path or crash left
        wedged — queued LC waiters with no update running and no retry
        timer armed, or bundles sitting in the queue with no pump
        scheduled (e.g. after a breaker probe window elapsed)."""
        self.sim.schedule(self.config.watchdog_seconds, self._watchdog)
        if self.paused:
            return
        if self._lc_queue and not self._lc_busy and self._lc_holddown_handle is None:
            self.sim.trace.count("relay.watchdog.lc_kicks")
            self._kick_lc_update()
        if self._bundle_queue and self._pump_retry_handle is None:
            self.sim.trace.count("relay.watchdog.pump_kicks")
            self._pump_bundles()

    # ==================================================================
    # Handshake coordination (ICS-03 + ICS-04, both four-step dances)
    # ==================================================================

    def _on_guest_handshake_step(self, event: HostEvent) -> None:
        if not self._is_our_guest_event(event):
            return
        waiter, self._handshake_waiter = self._handshake_waiter, None
        if waiter is not None:
            waiter(event.payload.get("created"), event.slot)

    def _guest_handshake(self, msg, then: Callable[[Optional[str], int], None]) -> None:
        """Submit a handshake datagram to the guest and await its event
        (which carries the host slot the mutation executed at)."""
        self._handshake_waiter = then
        self._submit_handshake_retrying(msg)

    def _submit_handshake_retrying(self, msg) -> None:
        try:
            self.api.submit_handshake(msg)
        except HostUnavailableError:
            self.sim.trace.count("relay.handshakes.deferred")
            self.sim.schedule(
                self.retry_policy.delay(1, self._retry_rng),
                self._submit_handshake_retrying, msg,
            )

    def _ensure_cp_view(self, min_slot: int, then: Callable[[int], None]) -> None:
        """Run ``then(height)`` once the counterparty's guest client has
        verified a finalised guest block whose state includes every
        mutation up to host slot ``min_slot``.

        If such a block is already finalised, push its header to the
        counterparty right away (it may never have been relayed — empty
        blocks are skipped by Alg. 2); otherwise queue a waiter flushed
        by :meth:`_on_finalised_block`.
        """
        candidates = [
            block for block in self.contract.blocks
            if block.finalised and block.header.host_slot >= min_slot
        ]
        if not candidates:
            self._finalised_waiters.append((min_slot, then))
            return
        block = min(candidates, key=lambda b: b.height)
        header = block.header
        update = GuestClientUpdate(
            header=header,
            signatures=dict(block.signers),
            new_epoch=self.contract.epochs.get(header.epoch_id),
        )

        def after_update(result, cp_height: int) -> None:
            if isinstance(result, ReproError):
                # Could not push this header (e.g. an older epoch than the
                # client now tracks): wait for the next finalised block.
                self._finalised_waiters.append((min_slot, then))
                return
            self._run_waiter(min_slot, then, header.height)

        self.counterparty.submit(
            lambda: self.guest_client.update(update), on_result=after_update,
        )

    def _run_waiter(self, min_slot: int, action: Callable[[int], None],
                    height: int) -> None:
        """Fire a finalised-block waiter, tolerating the same-slot race.

        A guest block generated in the *same* host slot as the mutation
        the waiter needs — but earlier within that slot's block — carries
        ``host_slot == min_slot`` while its state view predates the
        write, so proving the path raises.  Requeue the waiter for a
        strictly later block (the Δ rule guarantees one comes).
        """
        try:
            action(height)
        except KeyNotFoundError:
            self._finalised_waiters.append((min_slot + 1, action))

    def open_connection(self, cp_client_id_on_guest: ClientId,
                        on_open: Callable[[ConnectionId, ConnectionId], None]) -> None:
        """Run the full ICS-03 handshake, guest-initiated."""

        def step1_init() -> None:
            self._guest_handshake(
                msgs.MsgConnOpenInit(
                    client_id=cp_client_id_on_guest,
                    counterparty_client_id=self.guest_client_id_on_cp,
                ),
                lambda created, slot: step2_try(ConnectionId(created), slot),
            )

        def step2_try(guest_conn: ConnectionId, slot: int) -> None:
            self.guest_connection_id = guest_conn

            def after_final(height: int) -> None:
                proof = self.contract.state_view(height).prove(
                    paths.connection_path(guest_conn),
                )
                # validate_self_client material: what the guest's client
                # currently claims about the counterparty (absent until
                # the first chunked update has run).
                claim = None
                if self.contract.counterparty_client.latest_height() > 0:
                    claim = self.contract.counterparty_client.state_summary().to_bytes()
                self.counterparty.submit(
                    lambda: self.counterparty.ibc.conn_open_try(
                        self.guest_client_id_on_cp, cp_client_id_on_guest,
                        guest_conn, proof, height,
                        counterparty_client_state=claim,
                    ),
                    on_result=lambda result, h: step3_ack(guest_conn, ConnectionId(result), h),
                )

            self._ensure_cp_view(slot, after_final)

        def step3_ack(guest_conn: ConnectionId, cp_conn: ConnectionId, cp_height: int) -> None:
            self.cp_connection_id = cp_conn

            def with_lc(height: int) -> None:
                proof = self.counterparty.store_at(height).prove(
                    paths.connection_path(cp_conn),
                )
                self._guest_handshake(
                    msgs.MsgConnOpenAck(
                        connection_id=guest_conn,
                        counterparty_connection_id=cp_conn,
                        proof=proof, proof_height=height,
                        # What the counterparty's client claims about the
                        # guest — the guest validates this on-chain.
                        client_state=self.guest_client.state_summary().to_bytes(),
                    ),
                    lambda _, slot: step4_confirm(guest_conn, cp_conn, slot),
                )

            self._queue_guest_work(cp_height, with_lc)

        def step4_confirm(guest_conn: ConnectionId, cp_conn: ConnectionId, slot: int) -> None:
            def after_final(height: int) -> None:
                proof = self.contract.state_view(height).prove(
                    paths.connection_path(guest_conn),
                )
                self.counterparty.submit(
                    lambda: self.counterparty.ibc.conn_open_confirm(cp_conn, proof, height),
                    on_result=lambda result, h: on_open(guest_conn, cp_conn),
                )

            self._ensure_cp_view(slot, after_final)

        step1_init()

    def open_connection_from_counterparty(
        self, cp_client_id_on_guest: ClientId,
        on_open: Callable[[ConnectionId, ConnectionId], None],
    ) -> None:
        """Run the ICS-03 handshake with the *counterparty* as initiator.

        Mirrors :meth:`open_connection` with the roles swapped; it
        exercises the guest-side TRY and the counterparty-side CONFIRM
        paths (a connection can be opened from either end — the relayer
        merely carries datagrams).
        """

        def step1_init() -> None:
            self.counterparty.submit(
                lambda: self.counterparty.ibc.conn_open_init(
                    self.guest_client_id_on_cp, cp_client_id_on_guest,
                ),
                on_result=lambda result, h: step2_try(ConnectionId(result), h),
            )

        def step2_try(cp_conn: ConnectionId, cp_height: int) -> None:
            self.cp_connection_id = cp_conn

            def with_lc(height: int) -> None:
                proof = self.counterparty.store_at(height).prove(
                    paths.connection_path(cp_conn),
                )
                self._guest_handshake(
                    msgs.MsgConnOpenTry(
                        client_id=cp_client_id_on_guest,
                        counterparty_client_id=self.guest_client_id_on_cp,
                        counterparty_connection_id=cp_conn,
                        proof=proof, proof_height=height,
                        client_state=self.guest_client.state_summary().to_bytes(),
                    ),
                    lambda created, slot: step3_ack(ConnectionId(created), cp_conn, slot),
                )

            self._queue_guest_work(cp_height, with_lc)

        def step3_ack(guest_conn: ConnectionId, cp_conn: ConnectionId, slot: int) -> None:
            self.guest_connection_id = guest_conn

            def after_final(height: int) -> None:
                proof = self.contract.state_view(height).prove(
                    paths.connection_path(guest_conn),
                )
                claim = None
                if self.contract.counterparty_client.latest_height() > 0:
                    claim = self.contract.counterparty_client.state_summary().to_bytes()
                self.counterparty.submit(
                    lambda: self.counterparty.ibc.conn_open_ack(
                        cp_conn, guest_conn, proof, height,
                        counterparty_client_state=claim,
                    ),
                    on_result=lambda result, h: step4_confirm(guest_conn, cp_conn, h),
                )

            self._ensure_cp_view(slot, after_final)

        def step4_confirm(guest_conn: ConnectionId, cp_conn: ConnectionId,
                          cp_height: int) -> None:
            def with_lc(height: int) -> None:
                proof = self.counterparty.store_at(height).prove(
                    paths.connection_path(cp_conn),
                )
                self._guest_handshake(
                    msgs.MsgConnOpenConfirm(
                        connection_id=guest_conn, proof=proof, proof_height=height,
                    ),
                    lambda _, slot: on_open(guest_conn, cp_conn),
                )

            self._queue_guest_work(cp_height, with_lc)

        step1_init()

    def open_channel(self, guest_port: PortId, cp_port: PortId,
                     on_open: Callable[[ChannelId, ChannelId], None],
                     order: ChannelOrder = ChannelOrder.UNORDERED) -> None:
        """Run the full ICS-04 channel handshake over the open connection."""
        guest_conn = self.guest_connection_id
        cp_conn = self.cp_connection_id
        if guest_conn is None or cp_conn is None:
            raise ReproError("open_connection must complete before open_channel")

        def step1_init() -> None:
            self._guest_handshake(
                msgs.MsgChanOpenInit(
                    port_id=guest_port, connection_id=guest_conn,
                    counterparty_port_id=cp_port, order=order,
                ),
                lambda created, slot: step2_try(ChannelId(created), slot),
            )

        def step2_try(guest_chan: ChannelId, slot: int) -> None:
            def after_final(height: int) -> None:
                proof = self.contract.state_view(height).prove(
                    paths.channel_path(guest_port, guest_chan),
                )
                self.counterparty.submit(
                    lambda: self.counterparty.ibc.chan_open_try(
                        cp_port, cp_conn, guest_port, guest_chan, order, proof, height,
                    ),
                    on_result=lambda result, h: step3_ack(guest_chan, ChannelId(result), h),
                )

            self._ensure_cp_view(slot, after_final)

        def step3_ack(guest_chan: ChannelId, cp_chan: ChannelId, cp_height: int) -> None:
            def with_lc(height: int) -> None:
                proof = self.counterparty.store_at(height).prove(
                    paths.channel_path(cp_port, cp_chan),
                )
                self._guest_handshake(
                    msgs.MsgChanOpenAck(
                        port_id=guest_port, channel_id=guest_chan,
                        counterparty_channel_id=cp_chan,
                        proof=proof, proof_height=height,
                    ),
                    lambda _, slot: step4_confirm(guest_chan, cp_chan, slot),
                )

            self._queue_guest_work(cp_height, with_lc)

        def step4_confirm(guest_chan: ChannelId, cp_chan: ChannelId, slot: int) -> None:
            def after_final(height: int) -> None:
                proof = self.contract.state_view(height).prove(
                    paths.channel_path(guest_port, guest_chan),
                )

                def finish(result, h: int) -> None:
                    self.guest_channel = (guest_port, guest_chan)
                    self.cp_channel = (cp_port, cp_chan)
                    on_open(guest_chan, cp_chan)

                self.counterparty.submit(
                    lambda: self.counterparty.ibc.chan_open_confirm(cp_port, cp_chan, proof, height),
                    on_result=finish,
                )

            self._ensure_cp_view(slot, after_final)

        step1_init()
