"""Recovery primitives for the relayer/cranker hot paths (docs/CHAOS.md).

Two small, deterministic building blocks:

* :class:`RetryPolicy` — bounded exponential backoff with deterministic
  jitter.  Jitter draws come from an :class:`~repro.sim.rng.Rng` the
  caller owns (minted via ``derived_seed`` so retries never perturb the
  rest of the simulation's draws), keeping every schedule reproducible.
* :class:`CircuitBreaker` — the classic closed / open / half-open
  machine over simulated time.  It opens after consecutive failures
  (e.g. host RPC blackouts), refuses work while open, and lets a single
  probe through per reset interval; the interval doubles on failed
  probes so a long blackout costs O(log) probes, not a retry storm.

Neither class schedules anything itself: callers ask "may I?" / "how
long should I wait?" and do their own scheduling, so the primitives stay
trivially checkpointable (plain picklable state, no captured handles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import Rng


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter."""

    max_attempts: int = 8
    base_seconds: float = 2.0
    cap_seconds: float = 30.0
    #: Jitter spread: the raw backoff is scaled by a factor drawn
    #: uniformly from ``[1 - jitter, 1 + jitter]``.  Zero disables it.
    jitter: float = 0.5

    def allows(self, attempt: int) -> bool:
        """May a caller schedule attempt number ``attempt + 1``?"""
        return attempt < self.max_attempts

    def delay(self, attempt: int, rng: Rng) -> float:
        """Backoff before the next try after failed attempt ``attempt``
        (1-based).  Exponential in the attempt number, capped, jittered."""
        raw = min(self.cap_seconds, self.base_seconds * (2.0 ** (attempt - 1)))
        if self.jitter <= 0:
            return raw
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * rng.random())


class CircuitBreaker:
    """Closed / open / half-open breaker over simulated time."""

    def __init__(self, sim, name: str = "breaker",
                 failure_threshold: int = 3,
                 reset_seconds: float = 5.0,
                 reset_cap_seconds: float = 60.0) -> None:
        self.sim = sim
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.reset_cap_seconds = reset_cap_seconds
        self.state = "closed"
        self.opened_count = 0
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._retry_at = 0.0
        self._current_reset = reset_seconds

    # -- queries --------------------------------------------------------

    def allow(self) -> bool:
        """May the caller attempt work now?  While open, exactly one
        probe is admitted per reset interval (moving to half-open)."""
        if self.state == "closed":
            return True
        if self.state == "open" and self.sim.now >= self._retry_at:
            self.state = "half-open"
            self.sim.trace.count(f"{self.name}.probes")
            return True
        return self.state == "half-open"

    def retry_after(self) -> float:
        """Seconds until the next probe is admitted (0 when not open)."""
        if self.state != "open":
            return 0.0
        return max(0.0, self._retry_at - self.sim.now)

    # -- transitions ----------------------------------------------------

    def record_success(self) -> None:
        if self.state != "closed":
            self.sim.trace.count(f"{self.name}.closed")
            self.sim.trace.observe(
                f"{self.name}.open_seconds", self.sim.now - self._opened_at)
        self.state = "closed"
        self._consecutive_failures = 0
        self._current_reset = self.reset_seconds

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self.state == "half-open":
            # Failed probe: reopen and back the probe cadence off.
            self._current_reset = min(
                self.reset_cap_seconds, self._current_reset * 2.0)
            self._trip()
        elif (self.state == "closed"
              and self._consecutive_failures >= self.failure_threshold):
            self._trip()
        elif self.state == "open":
            self._retry_at = max(self._retry_at, self.sim.now + self._current_reset)

    def _trip(self) -> None:
        if self.state != "open":
            self.opened_count += 1
            self._opened_at = self.sim.now
            self.sim.trace.count(f"{self.name}.opened")
        self.state = "open"
        self._retry_at = self.sim.now + self._current_reset
