"""Relayer fee policies and spend accounting.

§V-B measures the relayer's costs under "the default Solana fee model";
§VI-B observes that fixed models are inflexible.  This module gives a
relayer operator the pieces both sections imply:

* :class:`SpendLedger` — per-category accounting of every lamport the
  relayer burns (light-client updates, deliveries, ack returns), the
  §V-B bookkeeping;
* :class:`EscalatingFeePolicy` — start cheap (base fee), escalate to a
  priority fee when an operation has been waiting too long, and cap the
  escalation: the simple deadline-aware policy §VI-B gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.fees import BaseFee, FeeStrategy, PriorityFee
from repro.units import lamports_to_usd


@dataclass
class SpendLedger:
    """Where the relayer's lamports went (the §V-B cost breakdown)."""

    by_category: dict[str, int] = field(default_factory=dict)
    transactions: dict[str, int] = field(default_factory=dict)

    def record(self, category: str, fee_lamports: int, tx_count: int = 1) -> None:
        self.by_category[category] = self.by_category.get(category, 0) + fee_lamports
        self.transactions[category] = self.transactions.get(category, 0) + tx_count

    def total_lamports(self) -> int:
        return sum(self.by_category.values())

    def total_usd(self) -> float:
        return lamports_to_usd(self.total_lamports())

    def summary(self) -> str:
        lines = ["relayer spend:"]
        for category in sorted(self.by_category):
            lines.append(
                f"  {category}: {lamports_to_usd(self.by_category[category]):.4f} USD "
                f"over {self.transactions[category]} txs"
            )
        lines.append(f"  total: {self.total_usd():.4f} USD")
        return "\n".join(lines)


@dataclass
class EscalatingFeePolicy:
    """Deadline-aware strategy selection (the §VI-B sketch).

    An operation starts on the base fee; once it has waited longer than
    ``escalate_after`` seconds (stuck in a congested mempool), retries
    use a priority fee whose compute-unit price doubles per escalation
    up to ``max_cu_price``.
    """

    escalate_after: float = 10.0
    initial_cu_price: int = 100_000
    max_cu_price: int = 8_000_000
    escalations: int = 0

    def _max_doublings(self) -> int:
        """Doublings after which the price cap is already reached."""
        if self.initial_cu_price <= 0:
            return 0
        ratio = self.max_cu_price // self.initial_cu_price
        return max(0, ratio.bit_length())

    def strategy_for(self, waited_seconds: float) -> FeeStrategy:
        if waited_seconds < self.escalate_after:
            return BaseFee()
        # Exponential escalation with the waiting time.  The exponent is
        # clamped *before* the power is taken: under sustained congestion
        # an operation can wait for hours, and 2**(hours/10s) is an
        # astronomically large bignum even though the price was going to
        # be capped anyway.  Past the cap the price simply stays there —
        # retries can never escalate fees unboundedly.
        steps = int(waited_seconds // self.escalate_after)
        exponent = min(steps - 1, self._max_doublings())
        price = min(self.max_cu_price, self.initial_cu_price * (2 ** exponent))
        self.escalations += 1
        return PriorityFee(compute_unit_price=price)
