"""Relayer-side actors: the block cranker and the IBC relayer (Alg. 2)."""

from repro.relayer.cranker import Cranker
from repro.relayer.relayer import Relayer, RelayerConfig

__all__ = ["Cranker", "Relayer", "RelayerConfig"]
