"""The block cranker: permissionless GenerateBlock invocations.

Alg. 1 notes GenerateBlock "can be invoked by anyone (e.g. whenever a
host block is produced)".  The deployment runs a small bot that polls the
guest head and submits a GenerateBlock transaction whenever the
conditions hold: head finalised, and either the state root moved or the
head aged past Δ.  Its polling cadence is part of the Fig. 2 send
latency (user transaction → new block → quorum).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import HostUnavailableError
from repro.guest.api import GuestApi
from repro.guest.contract import GuestContract
from repro.host.transaction import TxReceipt
from repro.sim.kernel import Simulation


class Cranker:
    """Polls the guest head and cranks block generation."""

    def __init__(self, sim: Simulation, contract: GuestContract, api: GuestApi,
                 poll_seconds: float = 2.0) -> None:
        self.sim = sim
        self.contract = contract
        self.api = api
        self.poll_seconds = poll_seconds
        self._in_flight = False
        self.blocks_cranked = 0
        #: Failure-injection switch: a paused cranker submits nothing
        #: (models the operator bot being down).
        self.paused = False
        self._rng = sim.rng.fork("cranker")
        sim.schedule(self._jittered(), self._poll)

    def _jittered(self) -> float:
        return self.poll_seconds * self._rng.uniform(0.7, 1.3)

    def _should_generate(self) -> bool:
        if not self.contract.initialized:
            return False
        head = self.contract.head
        if not head.finalised:
            return False
        if self.contract.store.root_hash != head.header.state_root:
            return True
        return self.sim.now - head.header.timestamp >= self.contract.config.delta_seconds

    def _poll(self) -> None:
        self.sim.trace.count("cranker.polls")
        if not self.paused and not self._in_flight and self._should_generate():
            self._in_flight = True
            self.sim.trace.count("cranker.cranks")
            try:
                self.api.generate_block(on_result=self._done)
            except HostUnavailableError:
                # RPC blackout (chaos): the next poll tick retries; the
                # guest head simply ages until the host answers again.
                self._in_flight = False
                self.sim.trace.count("chaos.cranker.deferred")
        self.sim.schedule(self._jittered(), self._poll)

    def _done(self, receipt: TxReceipt) -> None:
        self._in_flight = False
        if receipt.success:
            self.blocks_cranked += 1
        else:
            self.sim.trace.count("cranker.races")
        # Failures are expected races (someone else cranked, or the head
        # became stale between poll and execution); the next poll retries.
