"""The workload engine: seeded traffic through a live deployment.

The engine drives counterparty → guest ICS-20 transfers (the direction
where every packet costs the relayer host transactions, so throughput
and fees are interesting) across any number of channels and users.  It
records, for every packet, the simulated time the send committed on the
counterparty and the on-chain time the guest received it, yielding
end-to-end latency percentiles alongside sustained packets/sec and the
relayer's fee cost per packet.

All timing comes from the simulation clock and all randomness from
forked rng sub-streams: the full report is a deterministic function of
the deployment seed and the workload spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError
from repro.metrics.stats import percentile
from repro.units import lamports_to_usd
from repro.workload.generators import ClosedLoopMarker, make_arrivals


@dataclass
class WorkloadSpec:
    """What traffic to offer and for how long."""

    #: ``open-constant`` | ``open-poisson`` | ``open-bursty`` | ``closed``.
    mode: str = "open-constant"
    #: Target rate for the open-loop modes (packets/sec, all channels).
    offered_pps: float = 1.0
    #: Sending window in simulated seconds.
    duration: float = 600.0
    #: In-flight cap for ``closed`` mode.
    window: int = 8
    #: Sending accounts on the counterparty (round-robined).
    users: tuple[str, ...] = ("wl-user-0", "wl-user-1", "wl-user-3")
    denom: str = "PICA"
    amount: int = 1
    #: Extra simulated time :meth:`WorkloadEngine.run` allows after the
    #: sending window so in-flight packets can land.
    drain_seconds: float = 600.0


@dataclass
class WorkloadReport:
    """What a workload run measured (all times in simulated seconds)."""

    mode: str
    offered_pps: float
    duration: float
    sent: int
    committed: int
    delivered: int
    send_failures: int
    sustained_pps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    relayer_fee_lamports: int
    relayer_txs: int
    fee_lamports_per_packet: float
    fee_usd_per_packet: float
    latencies: list[float] = field(repr=False, default_factory=list)


class WorkloadEngine:
    """Offer traffic to a linked deployment and measure what lands."""

    def __init__(self, deployment, channels, spec: Optional[WorkloadSpec] = None) -> None:
        self.dep = deployment
        self.spec = spec or WorkloadSpec()
        #: ``(guest_channel, cp_channel)`` pairs, as returned by
        #: ``establish_link`` / ``Relayer.open_channel``.
        self.channels = list(channels)
        if not self.channels:
            raise ValueError("workload needs at least one channel")
        self.rng = deployment.sim.rng.fork("workload-engine")
        self.arrivals = make_arrivals(
            self.spec.mode, rng=self.rng, pps=self.spec.offered_pps,
            window=self.spec.window,
            congestion=deployment.host.congestion_at,
        )
        self.sent = 0
        self.committed = 0
        self.delivered = 0
        self.send_failures = 0
        self.latencies: list[float] = []
        self._send_times: dict[tuple[str, int], float] = {}
        self._started_at: Optional[float] = None
        self._deadline = 0.0
        self._last_delivery_at = 0.0
        self._fee_baseline = 0
        self._tx_baseline = 0
        self._started = False

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Fund the senders, hook delivery events and begin sending."""
        if self._started:
            raise ReproError("workload engine already started")
        self._started = True
        sim = self.dep.sim
        self._started_at = sim.now
        self._deadline = sim.now + self.spec.duration
        self._fee_baseline, self._tx_baseline = self._relayer_spend()

        # Over-fund each sender: open-loop offered load bounds the send
        # count; closed-loop is bounded by deliveries within duration.
        upper = int(self.spec.offered_pps * self.spec.duration) + self.spec.window + 16
        for user in self.spec.users:
            self.dep.counterparty.bank.mint(user, self.spec.denom, upper * self.spec.amount)

        self.dep.host.subscribe("PacketReceived", self._on_received)

        if isinstance(self.arrivals, ClosedLoopMarker):
            for _ in range(self.arrivals.window):
                self._send_one(reschedule=False)
        else:
            self._send_one(reschedule=True)

    def run(self) -> WorkloadReport:
        """Convenience: start, run the sending window plus the drain,
        and return the report."""
        self.start()
        self.dep.run_for(self.spec.duration + self.spec.drain_seconds)
        return self.report()

    def _send_one(self, reschedule: bool) -> None:
        sim = self.dep.sim
        if sim.now >= self._deadline:
            return
        cp = self.dep.counterparty
        user = self.spec.users[self.sent % len(self.spec.users)]
        _, cp_chan = self.channels[self.sent % len(self.channels)]
        self.sent += 1
        sim.trace.count("workload.packets.sent")

        def do_send():
            data = cp.transfer.make_payload(
                cp_chan, self.spec.denom, self.spec.amount, user, f"recv-{user}",
            )
            return cp.ibc.send_packet(cp.transfer_port, cp_chan, data, 0.0)

        def committed(value, height):
            if isinstance(value, ReproError):
                self.send_failures += 1
                sim.trace.count("workload.packets.send_failed")
                return
            self.committed += 1
            key = (str(value.source_channel), value.sequence)
            self._send_times[key] = sim.now

        cp.submit(do_send, committed)

        if reschedule:
            sim.schedule(self.arrivals.next_delay(sim.now), self._send_one, True)

    def _on_received(self, event) -> None:
        packet = event.payload.get("packet")
        if packet is None:
            return
        key = (str(packet.source_channel), packet.sequence)
        sent_at = self._send_times.pop(key, None)
        if sent_at is None:
            return  # not our packet (other traffic on the deployment)
        sim = self.dep.sim
        # ``event.time`` is the on-chain receive time; the callback
        # itself fires after the RPC observation delay.
        latency = event.time - sent_at
        self.latencies.append(latency)
        self.delivered += 1
        self._last_delivery_at = event.time
        sim.trace.count("workload.packets.delivered")
        sim.trace.observe("workload.e2e_latency", latency)
        if isinstance(self.arrivals, ClosedLoopMarker):
            self._send_one(reschedule=False)

    # ------------------------------------------------------------------
    # Measuring
    # ------------------------------------------------------------------

    def _relayer_spend(self) -> tuple[int, int]:
        ledger = self.dep.relayer.ledger
        fees = sum(ledger.by_category.values())
        txs = sum(ledger.transactions.values())
        return fees, txs

    def outstanding(self) -> int:
        """Committed sends not yet received on the guest."""
        return len(self._send_times)

    def report(self) -> WorkloadReport:
        assert self._started_at is not None, "start() the engine first"
        fees, txs = self._relayer_spend()
        fees -= self._fee_baseline
        txs -= self._tx_baseline
        if self.delivered:
            elapsed = max(self._last_delivery_at - self._started_at, 1e-9)
            sustained = self.delivered / elapsed
            fee_per_packet = fees / self.delivered
        else:
            sustained = 0.0
            fee_per_packet = 0.0
        # Sort once, reuse for every percentile.  The library-wide
        # linear-interpolated percentile (repro.metrics.stats) replaced
        # the engine's old nearest-rank copy, so reported p50/p95/p99
        # shift by a fraction of a sample interval relative to earlier
        # result files; it raises on empty input, hence the guard.
        ordered = sorted(self.latencies)
        if ordered:
            p50, p95, p99 = (percentile(ordered, f) for f in (0.50, 0.95, 0.99))
        else:
            p50 = p95 = p99 = 0.0
        return WorkloadReport(
            mode=self.spec.mode,
            offered_pps=self.spec.offered_pps,
            duration=self.spec.duration,
            sent=self.sent,
            committed=self.committed,
            delivered=self.delivered,
            send_failures=self.send_failures,
            sustained_pps=sustained,
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
            relayer_fee_lamports=fees,
            relayer_txs=txs,
            fee_lamports_per_packet=fee_per_packet,
            fee_usd_per_packet=lamports_to_usd(fee_per_packet),
            latencies=list(self.latencies),
        )
