"""Deterministic traffic generation and throughput measurement.

The paper's evaluation (§V) reports costs per packet but never pushes
the deployment to saturation.  This package adds the missing load
harness: seeded arrival processes (:mod:`repro.workload.generators`)
drive multi-channel, multi-user ICS-20 traffic through a deployment
while the engine (:mod:`repro.workload.engine`) measures sustained
packets/sec, end-to-end latency percentiles and host fee cost per
packet.  Everything draws from forked ``sim.rng`` sub-streams, so a
workload run is a pure function of its seed.
"""

from repro.workload.engine import WorkloadEngine, WorkloadReport, WorkloadSpec
from repro.workload.generators import (
    ArrivalProcess,
    BurstyArrivals,
    ClosedLoopMarker,
    ConstantRate,
    PoissonArrivals,
    make_arrivals,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "ClosedLoopMarker",
    "ConstantRate",
    "PoissonArrivals",
    "WorkloadEngine",
    "WorkloadReport",
    "WorkloadSpec",
    "make_arrivals",
]
