"""Packet arrival processes for workload generation.

Open-loop generators answer "when does the next packet arrive?" as a
delay in simulated seconds; the closed-loop marker tells the engine to
pace itself off completions instead.  All randomness comes from an
:class:`repro.sim.rng.Rng` sub-stream the caller forks, so identical
seeds replay identical traffic.
"""

from __future__ import annotations

from typing import Callable, Protocol, Union

from repro.sim.rng import Rng


class ArrivalProcess(Protocol):
    """Open-loop arrival process: delays between consecutive sends."""

    def next_delay(self, now: float) -> float:
        """Seconds until the next packet, given the current sim time."""
        ...


class ConstantRate:
    """Fixed inter-arrival time: ``1 / pps`` seconds between packets."""

    def __init__(self, pps: float) -> None:
        if pps <= 0:
            raise ValueError("packet rate must be positive")
        self._interval = 1.0 / pps

    def next_delay(self, now: float) -> float:
        return self._interval


class PoissonArrivals:
    """Memoryless arrivals at a mean rate of ``pps`` packets/sec."""

    def __init__(self, rng: Rng, pps: float) -> None:
        if pps <= 0:
            raise ValueError("packet rate must be positive")
        self._rng = rng
        self._pps = pps

    def next_delay(self, now: float) -> float:
        return self._rng.expovariate(self._pps)


class BurstyArrivals:
    """Arrivals whose rate tracks the host congestion model.

    The instantaneous rate is ``base_pps * (1 + amplification *
    congestion(now))`` — traffic surges exactly when the host is
    busiest, the adversarial pattern for a relayer that pays
    congestion-priced fees.
    """

    def __init__(self, rng: Rng, base_pps: float,
                 congestion: Callable[[float], float],
                 amplification: float = 3.0) -> None:
        if base_pps <= 0:
            raise ValueError("packet rate must be positive")
        self._rng = rng
        self._base_pps = base_pps
        self._congestion = congestion
        self._amplification = amplification

    def next_delay(self, now: float) -> float:
        rate = self._base_pps * (1.0 + self._amplification * self._congestion(now))
        return self._rng.expovariate(rate)


class ClosedLoopMarker:
    """Sentinel for closed-loop mode: the engine keeps ``window``
    packets in flight and sends the next one only when a delivery
    completes (throughput self-adjusts to the system's capacity)."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError("closed-loop window must be positive")
        self.window = window


Arrivals = Union[ConstantRate, PoissonArrivals, BurstyArrivals, ClosedLoopMarker]


def make_arrivals(mode: str, *, rng: Rng, pps: float, window: int = 8,
                  congestion: Callable[[float], float] | None = None) -> Arrivals:
    """Build the arrival process named by ``mode``.

    Modes: ``open-constant``, ``open-poisson``, ``open-bursty`` (needs
    ``congestion``), ``closed``.
    """
    if mode == "open-constant":
        return ConstantRate(pps)
    if mode == "open-poisson":
        return PoissonArrivals(rng, pps)
    if mode == "open-bursty":
        if congestion is None:
            raise ValueError("bursty arrivals need the host congestion function")
        return BurstyArrivals(rng, pps, congestion)
    if mode == "closed":
        return ClosedLoopMarker(window)
    raise ValueError(f"unknown workload mode {mode!r}")
