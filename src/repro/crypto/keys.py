"""Key and signature value types plus the pluggable scheme interface.

A :class:`SignatureScheme` turns seeds into keypairs and verifies
signatures.  Two implementations exist — :class:`~repro.crypto.ed25519.
Ed25519Scheme` (real) and :class:`~repro.crypto.simsig.SimSigScheme`
(fast simulation) — and the rest of the library is agnostic to which one
a deployment uses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

PUBLIC_KEY_SIZE = 32
SIGNATURE_SIZE = 64


@dataclass(frozen=True, slots=True)
class PublicKey:
    """A 32-byte public key identifying a validator or account holder."""

    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != PUBLIC_KEY_SIZE:
            raise ValueError(f"PublicKey requires exactly {PUBLIC_KEY_SIZE} bytes")

    def hex(self) -> str:
        return self.value.hex()

    def short(self) -> str:
        return self.value[:4].hex()

    def __bytes__(self) -> bytes:
        return self.value

    def __repr__(self) -> str:
        return f"PublicKey({self.short()}…)"


@dataclass(frozen=True, slots=True)
class Signature:
    """A 64-byte signature."""

    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != SIGNATURE_SIZE:
            raise ValueError(f"Signature requires exactly {SIGNATURE_SIZE} bytes")

    def __bytes__(self) -> bytes:
        return self.value

    def __repr__(self) -> str:
        return f"Signature({self.value[:4].hex()}…)"


class SignatureScheme(abc.ABC):
    """Interface every signature scheme implements."""

    #: Compute units one on-chain verification of this scheme costs in the
    #: host simulator.  Mirrors Solana, where Ed25519 verification is done
    #: by the runtime per signature rather than inside the program.
    VERIFY_COMPUTE_UNITS: int = 2_000

    @abc.abstractmethod
    def keypair_from_seed(self, seed: bytes) -> "Keypair":
        """Derive a deterministic keypair from a 32-byte seed."""

    @abc.abstractmethod
    def sign(self, secret: bytes, message: bytes) -> Signature:
        """Sign ``message`` with the secret material of a keypair."""

    @abc.abstractmethod
    def verify(self, public_key: PublicKey, message: bytes, signature: Signature) -> bool:
        """Return ``True`` iff ``signature`` is valid for ``message``."""

    def verify_batch(
        self, entries: "Sequence[tuple[PublicKey, bytes, Signature]]"
    ) -> bool:
        """Verify a whole batch of ``(public_key, message, signature)``.

        Returns ``True`` iff *every* entry verifies — all-or-nothing, the
        contract both callers need (a light-client quorum check and the
        host runtime's per-transaction precompile list both reject the
        whole set on any failure).  The base implementation loops over
        :meth:`verify` with an early exit; schemes override it when they
        can amortise per-call setup across the batch.
        """
        return all(
            self.verify(public_key, message, signature)
            for public_key, message, signature in entries
        )


@dataclass(frozen=True, slots=True)
class Keypair:
    """A keypair bound to the scheme that created it."""

    public_key: PublicKey
    secret: bytes
    scheme: SignatureScheme

    def sign(self, message: bytes) -> Signature:
        return self.scheme.sign(self.secret, message)

    def verify_own(self, message: bytes, signature: Signature) -> bool:
        """Verify a signature against this keypair's public key."""
        return self.scheme.verify(self.public_key, message, signature)

    def __repr__(self) -> str:
        return f"Keypair({self.public_key.short()}…)"
