"""Pure-Python Ed25519 (RFC 8032).

A from-scratch implementation of the signature scheme the paper's Solana
deployment uses on-chain.  It is correct but slow (each operation is a
scalar multiplication over bigints), so the large simulated deployments
default to :class:`~repro.crypto.simsig.SimSigScheme` instead; this module
exists to validate the protocol logic against a real scheme and is
exercised directly by the test suite.

The implementation follows the RFC 8032 reference flow: SHA-512 key
expansion and nonce derivation, extended-coordinate point arithmetic on
edwards25519, and the cofactorless verification equation
``[S]B = R + [k]A``.
"""

from __future__ import annotations

import hashlib

from repro.crypto.keys import Keypair, PublicKey, Signature, SignatureScheme
from repro.errors import InvalidKeyError

# Curve constants for edwards25519.
_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P

# Base point.
_BY = (4 * pow(5, _P - 2, _P)) % _P
_BX = 15112221349535400772501151409588531511454012693041857206046113283949847762202

# Points are (X, Y, Z, T) in extended homogeneous coordinates.
_IDENTITY = (0, 1, 1, 0)
_BASE = (_BX, _BY, 1, (_BX * _BY) % _P)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _point_add(p: tuple[int, int, int, int], q: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = ((y1 - x1) * (y2 - x2)) % _P
    b = ((y1 + x1) * (y2 + x2)) % _P
    c = (2 * t1 * t2 * _D) % _P
    d = (2 * z1 * z2) % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return ((e * f) % _P, (g * h) % _P, (f * g) % _P, (e * h) % _P)


def _point_mul(s: int, p: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    q = _IDENTITY
    while s > 0:
        if s & 1:
            q = _point_add(q, p)
        p = _point_add(p, p)
        s >>= 1
    return q


def _point_equal(p: tuple[int, int, int, int], q: tuple[int, int, int, int]) -> bool:
    # x1/z1 == x2/z2 and y1/z1 == y2/z2, cross-multiplied.
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    if (x1 * z2 - x2 * z1) % _P != 0:
        return False
    return (y1 * z2 - y2 * z1) % _P == 0


def _recover_x(y: int, sign: int) -> int | None:
    if y >= _P:
        return None
    x2 = (y * y - 1) * pow(_D * y * y + 1, _P - 2, _P)
    if x2 == 0:
        if sign:
            return None
        return 0
    # Square root of x2 modulo p = 5 (mod 8).
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = (x * pow(2, (_P - 1) // 4, _P)) % _P
    if (x * x - x2) % _P != 0:
        return None
    if (x & 1) != sign:
        x = _P - x
    return x


def _point_compress(p: tuple[int, int, int, int]) -> bytes:
    x, y, z, _ = p
    zinv = pow(z, _P - 2, _P)
    x, y = (x * zinv) % _P, (y * zinv) % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(data: bytes) -> tuple[int, int, int, int] | None:
    if len(data) != 32:
        return None
    y = int.from_bytes(data, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    x = _recover_x(y, sign)
    if x is None:
        return None
    return (x, y, 1, (x * y) % _P)


def _secret_expand(seed: bytes) -> tuple[int, bytes]:
    if len(seed) != 32:
        raise InvalidKeyError("Ed25519 seed must be exactly 32 bytes")
    h = _sha512(seed)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


def seed_to_public_key(seed: bytes) -> bytes:
    """Derive the 32-byte compressed public key from a 32-byte seed."""
    a, _ = _secret_expand(seed)
    return _point_compress(_point_mul(a, _BASE))


def sign(seed: bytes, message: bytes) -> bytes:
    """Produce the 64-byte RFC 8032 signature of ``message``."""
    a, prefix = _secret_expand(seed)
    public = _point_compress(_point_mul(a, _BASE))
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    big_r = _point_compress(_point_mul(r, _BASE))
    k = int.from_bytes(_sha512(big_r + public + message), "little") % _L
    s = (r + k * a) % _L
    return big_r + s.to_bytes(32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check a 64-byte signature against a 32-byte compressed public key."""
    if len(public) != 32 or len(signature) != 64:
        return False
    point_a = _point_decompress(public)
    if point_a is None:
        return False
    point_r = _point_decompress(signature[:32])
    if point_r is None:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    k = int.from_bytes(_sha512(signature[:32] + public + message), "little") % _L
    return _point_equal(_point_mul(s, _BASE), _point_add(point_r, _point_mul(k, point_a)))


class Ed25519Scheme(SignatureScheme):
    """The real scheme, packaged behind the shared interface."""

    name = "ed25519"

    def keypair_from_seed(self, seed: bytes) -> Keypair:
        public = seed_to_public_key(seed)
        return Keypair(public_key=PublicKey(public), secret=seed, scheme=self)

    def sign(self, secret: bytes, message: bytes) -> Signature:
        return Signature(sign(secret, message))

    def verify(self, public_key: PublicKey, message: bytes, signature: Signature) -> bool:
        return verify(bytes(public_key), message, bytes(signature))
