"""Fast deterministic signature scheme for large simulations.

The month-long simulated deployments verify hundreds of thousands of
signatures; pure-Python Ed25519 would dominate the runtime.  ``SimSig``
replaces the curve arithmetic with keyed hashing:

* the public key is ``SHA-256("simsig-pub" || seed)``;
* a signature is ``SHA-256("simsig" || seed || message)`` twice-expanded
  to 64 bytes;
* the scheme instance keeps a private ``pubkey -> seed`` registry so
  *verification* can recompute the expected signature.

This is obviously not secure against an adversary who can read process
memory — but no simulation component is given the registry, so within the
simulation the scheme has exactly the failure modes of a real one: a
signature only verifies under the public key whose seed produced it, for
the exact message signed.  DESIGN.md §2 records this substitution;
the test suite runs the protocol under real Ed25519 as well.
"""

from __future__ import annotations

import hashlib

from repro.crypto.keys import Keypair, PublicKey, Signature, SignatureScheme
from repro.errors import InvalidKeyError

_PUB_DOMAIN = b"simsig-pub"
_SIG_DOMAIN = b"simsig-sig"


class SimSigScheme(SignatureScheme):
    """Hash-based stand-in for Ed25519 (simulation only)."""

    name = "simsig"

    def __init__(self) -> None:
        self._seeds: dict[bytes, bytes] = {}

    def keypair_from_seed(self, seed: bytes) -> Keypair:
        if len(seed) != 32:
            raise InvalidKeyError("SimSig seed must be exactly 32 bytes")
        public = hashlib.sha256(_PUB_DOMAIN + seed).digest()
        self._seeds[public] = seed
        return Keypair(public_key=PublicKey(public), secret=seed, scheme=self)

    def _expected_signature(self, seed: bytes, message: bytes) -> bytes:
        first = hashlib.sha256(_SIG_DOMAIN + seed + message).digest()
        second = hashlib.sha256(first).digest()
        return first + second

    def sign(self, secret: bytes, message: bytes) -> Signature:
        return Signature(self._expected_signature(secret, message))

    def verify(self, public_key: PublicKey, message: bytes, signature: Signature) -> bool:
        seed = self._seeds.get(bytes(public_key))
        if seed is None:
            return False
        return bytes(signature) == self._expected_signature(seed, message)

    def verify_batch(self, entries) -> bool:
        """All-or-nothing batch verification in one pass.

        A quorum check verifies dozens of signatures per light-client
        update; doing it here with the registry lookup, domain prefix and
        hash constructor bound once per batch (rather than re-entered per
        :meth:`verify` call) measurably trims the soak profile's
        signature share.  Fails fast on the first bad entry.
        """
        seeds = self._seeds
        sha256 = hashlib.sha256
        domain = _SIG_DOMAIN
        for public_key, message, signature in entries:
            seed = seeds.get(public_key.value)
            if seed is None:
                return False
            first = sha256(domain + seed + message).digest()
            if signature.value != first + sha256(first).digest():
                return False
        return True
