"""Hashing primitives used across the trie, blocks and IBC commitments.

Everything hashes with SHA-256 (the guest blockchain in the paper likewise
standardises on a single hash).  :class:`Hash` wraps the 32-byte digest in
an immutable value type so call sites cannot confuse digests with raw byte
strings.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

DIGEST_SIZE = 32


@dataclass(frozen=True, slots=True)
class Hash:
    """An immutable 32-byte SHA-256 digest."""

    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != DIGEST_SIZE:
            raise ValueError(
                f"Hash requires exactly {DIGEST_SIZE} bytes, "
                f"got {len(self.value) if isinstance(self.value, bytes) else type(self.value)}"
            )

    @classmethod
    def of(cls, data: bytes) -> "Hash":
        """Hash ``data`` and wrap the digest."""
        return cls(hashlib.sha256(data).digest())

    @classmethod
    def zero(cls) -> "Hash":
        """The all-zeros digest, used as the empty-trie commitment.

        Returns a shared singleton: zero hashes are compared and embedded
        millions of times per run (every empty branch slot), and
        ``Hash`` construction pays a validation check each call.
        """
        return _ZERO_HASH

    def hex(self) -> str:
        return self.value.hex()

    def short(self) -> str:
        """First 8 hex characters — for logs and reprs."""
        return self.value[:4].hex()

    def __bytes__(self) -> bytes:
        return self.value

    def __repr__(self) -> str:
        return f"Hash({self.short()}…)"


_ZERO_HASH = Hash(bytes(DIGEST_SIZE))

#: Interned length prefixes for the common short parts (tags, digests,
#: small values) so :func:`hash_concat` avoids an ``int.to_bytes`` per
#: part on the trie/commitment hot path.
_LEN_PREFIXES = tuple(n.to_bytes(4, "big") for n in range(256))


def hash_bytes(data: bytes) -> Hash:
    """SHA-256 of ``data``."""
    return Hash.of(data)


def hash_concat(*parts: bytes | Hash) -> Hash:
    """SHA-256 over the concatenation of ``parts``.

    Each part is length-prefixed (4-byte big-endian) so that distinct
    splits of the same bytes cannot collide — e.g. ``(b"ab", b"c")`` and
    ``(b"a", b"bc")`` hash differently.

    The preimage is assembled with one ``join`` and hashed in a single
    batched call: per-part ``hasher.update`` pairs dominated the trie
    rehash profile (a 17-part branch preimage paid 34 update calls).
    """
    pieces: list[bytes] = []
    append = pieces.append
    for part in parts:
        raw = part.value if type(part) is Hash else bytes(part)
        size = len(raw)
        append(_LEN_PREFIXES[size] if size < 256 else size.to_bytes(4, "big"))
        append(raw)
    return Hash(hashlib.sha256(b"".join(pieces)).digest())


def merkle_root(leaves: Iterable[bytes | Hash]) -> Hash:
    """Binary Merkle root over ``leaves`` (duplicating the last odd node).

    Used for the packet list committed into guest block headers; the main
    provable state uses the sealable trie instead.
    """
    level = [bytes(leaf) for leaf in leaves]
    if not level:
        return Hash.zero()
    level = [hashlib.sha256(b"\x00" + leaf).digest() for leaf in level]
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            hashlib.sha256(b"\x01" + level[i] + level[i + 1]).digest()
            for i in range(0, len(level), 2)
        ]
    return Hash(level[0])
