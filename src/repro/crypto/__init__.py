"""Cryptographic primitives: hashing, Ed25519, and a fast simulation scheme.

Two interchangeable signature schemes are provided behind one interface
(:class:`~repro.crypto.keys.Keypair` / :class:`~repro.crypto.keys.PublicKey`):

* :mod:`repro.crypto.ed25519` — a correct, pure-Python RFC 8032 Ed25519
  implementation.  Used in tests to validate the protocol against a real
  scheme; too slow for month-long simulated deployments.
* :mod:`repro.crypto.simsig` — a deterministic HMAC-style scheme whose
  security rests on a process-local registry.  It preserves the *interface
  and failure modes* of a real scheme (wrong key, wrong message and
  corrupted signatures all fail verification) at a tiny fraction of the
  cost, which is what the large simulations need.

The substitution is documented in DESIGN.md §2.
"""

from repro.crypto.hashing import Hash, hash_bytes, hash_concat
from repro.crypto.keys import Keypair, PublicKey, Signature, SignatureScheme
from repro.crypto.simsig import SimSigScheme
from repro.crypto.ed25519 import Ed25519Scheme

__all__ = [
    "Hash",
    "hash_bytes",
    "hash_concat",
    "Keypair",
    "PublicKey",
    "Signature",
    "SignatureScheme",
    "SimSigScheme",
    "Ed25519Scheme",
]
