"""The program (smart contract) runtime interface.

A :class:`Program` is invoked with an :class:`InvokeContext` giving it
exactly what the Solana runtime gives a contract: the instruction's
accounts, a compute meter, the clock, the pre-verified signatures carried
by the transaction, and the ability to move lamports and emit events.
Anything else — in particular global mutable state and unmetered
computation — is unavailable, mirroring the constraints §IV works around.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.crypto.keys import PublicKey, Signature
from repro.errors import MissingSignerError, ProgramError
from repro.host.accounts import Account, AccountsDb, Address
from repro.host.compute import ComputeMeter
from repro.host.events import HostEvent

if TYPE_CHECKING:
    from repro.host.chain import HostChain


@dataclass
class InvokeContext:
    """Everything a program sees during one instruction."""

    chain: "HostChain"
    accounts_db: AccountsDb
    instruction_accounts: tuple[Address, ...]
    payer: Address
    signers: frozenset[Address]
    meter: ComputeMeter
    slot: int
    unix_time: float
    #: (public_key, message) pairs whose signatures the runtime verified
    #: before execution (the Ed25519-precompile pattern).
    verified_signatures: tuple[tuple[PublicKey, bytes], ...]
    #: The same entries with their raw signatures, for programs that must
    #: *retain* the cryptographic material (accountability proofs need
    #: both signature sets on chain, not just the verification verdict).
    verified_signature_entries: tuple[
        tuple[PublicKey, bytes, Signature], ...] = ()
    emitted_events: list[HostEvent] = field(default_factory=list)

    def account(self, address: Address) -> Account:
        if address not in self.instruction_accounts and address != self.payer:
            raise ProgramError(
                f"account {address.short()} was not passed to the instruction"
            )
        return self.accounts_db.account(address)

    def require_signer(self, address: Address) -> None:
        if address not in self.signers:
            raise MissingSignerError(f"{address.short()} must sign this instruction")

    def transfer(self, source: Address, destination: Address, lamports: int) -> None:
        """Move lamports; the source must have signed the transaction."""
        self.require_signer(source)
        self.accounts_db.transfer(source, destination, lamports)

    def emit(self, name: str, **payload: Any) -> None:
        self.emitted_events.append(
            HostEvent(name=name, payload=payload, slot=self.slot, time=self.unix_time)
        )

    def is_signature_verified(self, public_key: PublicKey, message: bytes) -> bool:
        """Did the runtime verify a signature by ``public_key`` over
        ``message`` in this transaction?"""
        return (public_key, message) in self.verified_signatures

    def verify_signature_set(
        self, entries: "Sequence[tuple[PublicKey, bytes, Signature]]"
    ) -> bool:
        """The slashing precompile: batch-verify signatures *carried in
        instruction data* rather than in the transaction's precompile
        list.  Accountability proofs arrive chunked through a staging
        buffer, so their signatures cannot ride ``sig_verifies``; the
        program pays the same per-signature compute the runtime would
        have charged and gets the same all-or-nothing verdict."""
        scheme = self.chain.scheme
        self.meter.charge(scheme.VERIFY_COMPUTE_UNITS * len(entries))
        return scheme.verify_batch(entries)


class Program(abc.ABC):
    """A smart contract deployed on the host chain."""

    @property
    @abc.abstractmethod
    def program_id(self) -> Address:
        """The address this program is deployed at."""

    @abc.abstractmethod
    def execute(self, ctx: InvokeContext, data: bytes) -> None:
        """Process one instruction.  Raise :class:`ProgramError` (or any
        :class:`~repro.errors.HostError`) to abort the transaction."""
