"""Host transactions: instructions, signature-verify entries, size rules.

The serialized size is computed from the transaction's actual content
following Solana's wire layout (compact arrays of signatures, account
keys, then instructions), and the 1232-byte cap is enforced at submission.
This cap — not any hard-coded constant — is what forces multi-transaction
light-client updates (Fig. 4: 36.5 transactions on average).

``SigVerify`` entries model Solana's Ed25519 verify precompile: the
runtime checks each signature *before* program execution and the program
then trusts the verified triples (the standard workaround for the compute
budget being too small for in-program cryptography, §IV).  Each entry
costs an extra per-signature base fee, which is why §V-B bills "0.1 cents
per transaction and additional 0.1 cents per signature".
"""

from __future__ import annotations

from repro import ids
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.crypto.keys import PublicKey, Signature
from repro.errors import TransactionTooLargeError
from repro.host.accounts import Address
from repro.units import MAX_TRANSACTION_BYTES

if TYPE_CHECKING:
    from repro.host.fees import FeeStrategy

_tx_ids = ids.mint("host.tx")

#: Fixed per-transaction envelope bytes: message header (3), the recent
#: blockhash (32) and the compact-array length prefixes (~3).
_ENVELOPE_BYTES = 38
_SIGNATURE_BYTES = 64
_ACCOUNT_KEY_BYTES = 32
#: Per-instruction framing: program-id index, account-count, data-length.
_INSTRUCTION_FRAME_BYTES = 4
#: One Ed25519-precompile entry: signature + public key + offsets header.
_SIG_VERIFY_ENTRY_BYTES = 64 + 32 + 14


@dataclass(frozen=True, slots=True)
class Instruction:
    """One program invocation: target program, account list, input data."""

    program_id: Address
    accounts: tuple[Address, ...]
    data: bytes

    def frame_bytes(self) -> int:
        return _INSTRUCTION_FRAME_BYTES + len(self.accounts) + len(self.data)


@dataclass(frozen=True, slots=True)
class SigVerify:
    """A signature for the runtime to verify ahead of program execution.

    The message bytes ride in the transaction (they are part of its
    size); programs receive the verified ``(public_key, message)`` pairs
    through :class:`~repro.host.programs.InvokeContext`.
    """

    public_key: PublicKey
    message: bytes
    signature: Signature

    def entry_bytes(self) -> int:
        return _SIG_VERIFY_ENTRY_BYTES + len(self.message)


@dataclass
class Transaction:
    """A host transaction."""

    payer: Address
    instructions: tuple[Instruction, ...]
    fee_strategy: "FeeStrategy"
    #: Additional transaction-level signers beyond the payer.
    extra_signers: tuple[Address, ...] = ()
    sig_verifies: tuple[SigVerify, ...] = ()
    compute_budget: Optional[int] = None
    tx_id: int = field(default_factory=lambda: next(_tx_ids))

    @property
    def signature_count(self) -> int:
        """Transaction-level signatures (payer + extra signers)."""
        return 1 + len(self.extra_signers)

    @property
    def verify_count(self) -> int:
        """Precompile signature verifications carried by the transaction."""
        return len(self.sig_verifies)

    def unique_accounts(self) -> set[Address]:
        accounts: set[Address] = {self.payer}
        accounts.update(self.extra_signers)
        for instruction in self.instructions:
            accounts.add(instruction.program_id)
            accounts.update(instruction.accounts)
        return accounts

    def serialized_size(self) -> int:
        """Wire size following Solana's transaction layout."""
        size = _ENVELOPE_BYTES
        size += self.signature_count * _SIGNATURE_BYTES
        size += len(self.unique_accounts()) * _ACCOUNT_KEY_BYTES
        size += sum(instruction.frame_bytes() for instruction in self.instructions)
        size += sum(entry.entry_bytes() for entry in self.sig_verifies)
        return size

    def check_size(self, limit: int = MAX_TRANSACTION_BYTES) -> None:
        size = self.serialized_size()
        if size > limit:
            raise TransactionTooLargeError(
                f"transaction is {size} bytes; the host caps at {limit}"
            )


#: Usable instruction-data budget for a single-signer, few-account
#: transaction; callers chunking large payloads size their chunks with it.
def max_chunk_bytes(account_count: int = 4, signer_count: int = 1) -> int:
    """Largest instruction-data payload that still fits the size cap."""
    overhead = (
        _ENVELOPE_BYTES
        + signer_count * _SIGNATURE_BYTES
        + (account_count + 1) * _ACCOUNT_KEY_BYTES  # +1 for the program id
        + _INSTRUCTION_FRAME_BYTES
        + account_count
    )
    return MAX_TRANSACTION_BYTES - overhead


@dataclass
class TxReceipt:
    """Execution outcome recorded in a block."""

    tx_id: int
    slot: int
    time: float
    success: bool
    fee_paid: int
    compute_consumed: int
    error: Optional[str] = None
    #: Set when the transaction was submitted as part of a bundle.
    bundle_id: Optional[int] = None
