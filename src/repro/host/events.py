"""Host events: the log records programs emit and off-chain actors watch.

Validators listen for ``NewBlock``, relayers for ``FinalisedBlock``
(Alg. 2).  The chain delivers events to subscribers with a small
observation delay standing in for RPC polling.
"""

from __future__ import annotations

from repro import ids
from dataclasses import dataclass, field
from typing import Any

_event_ids = ids.mint("host.event")


@dataclass(frozen=True, slots=True)
class HostEvent:
    """An event emitted by a program during transaction execution."""

    name: str
    payload: dict[str, Any]
    slot: int
    time: float
    event_id: int = field(default_factory=lambda: next(_event_ids))

    def __repr__(self) -> str:
        return f"HostEvent({self.name}, slot={self.slot})"
