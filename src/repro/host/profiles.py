"""Host-chain profiles: the §VI-D portability story.

The guest blockchain is designed to run on any chain with smart
contracts and on-chain storage.  §VI-D sketches how it would map onto
NEAR (has light clients and state proofs, lacks block-hash
introspection) and TRON (lacks state proofs entirely).  These profiles
parameterise the host simulator with each platform's runtime envelope so
the *same* Guest Contract can be deployed and exercised on all of them —
the "powerful abstraction" argument of §IV made executable.

The numbers are order-of-magnitude platform characteristics (block
cadence, transaction size ceiling, computation budget in CU-equivalent
units), not exact protocol constants: what matters to the guest is how
much state/computation fits one transaction and how fast blocks come.
"""

from __future__ import annotations

from repro.host.chain import HostConfig
from repro.units import MAX_COMPUTE_UNITS, MAX_TRANSACTION_BYTES


def solana_profile() -> HostConfig:
    """The paper's deployment target (§IV): 400 ms slots, 1232-byte
    transactions, 1.4 M compute units."""
    return HostConfig(
        slot_seconds=0.4,
        max_transaction_bytes=MAX_TRANSACTION_BYTES,
        max_compute_units=MAX_COMPUTE_UNITS,
    )


def near_like_profile() -> HostConfig:
    """A NEAR-shaped host: ~1 s blocks and a far roomier transaction
    envelope (NEAR actions take large arguments), but still bounded gas.

    §VI-D: NEAR has light clients and state proofs but no host function
    for past block hashes — the guest supplies its own block history, so
    nothing in the Guest Contract needs to change.
    """
    return HostConfig(
        slot_seconds=1.1,
        max_transaction_bytes=64 * 1024,
        max_compute_units=12_000_000,
        # NEAR's fee market is flatter; congestion bites less.
        base_congestion=0.15,
        diurnal_congestion=0.08,
    )


def tron_like_profile() -> HostConfig:
    """A TRON-shaped host: 3 s blocks, mid-sized transactions, an
    energy budget comparable to a few million CU.

    §VI-D: TRON lacks state proofs — precisely what the guest's sealable
    trie plus PoS attestation adds on top.
    """
    return HostConfig(
        slot_seconds=3.0,
        max_transaction_bytes=8 * 1024,
        max_compute_units=4_000_000,
        base_congestion=0.25,
    )


HOST_PROFILES = {
    "solana": solana_profile,
    "near-like": near_like_profile,
    "tron-like": tron_like_profile,
}
