"""The host chain simulator: slots, mempool, execution, events.

One :class:`HostChain` actor runs on the simulation kernel, producing a
block every 400 ms (§IV).  Transactions are submitted to a mempool; how
long they wait there before a block picks them up is decided by their fee
strategy and the chain's current congestion level — the mechanism behind
the latency distributions of Fig. 2 and Fig. 4 and the fee clusters of
Fig. 3.

Execution is transactional: the runtime verifies precompile signatures,
charges fees, snapshots the touched accounts, runs each instruction
through its program, and rolls everything back (except the fee) if any
instruction fails.  Bundles execute atomically within one block, matching
the Jito semantics the deployment used (§V-A).
"""

from __future__ import annotations

from repro import ids
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.keys import SignatureScheme
from repro.errors import HostError, HostUnavailableError, ProgramError, ReproError
from repro.host.accounts import Account, AccountsDb, Address
from repro.host.compute import ComputeMeter
from repro.host.events import HostEvent
from repro.host.programs import InvokeContext, Program
from repro.host.transaction import Transaction, TxReceipt
from repro.sim.kernel import Simulation
from repro.units import HOST_SLOT_SECONDS, MAX_COMPUTE_UNITS, MAX_TRANSACTION_BYTES

_bundle_ids = ids.mint("host.bundle")


@dataclass
class HostConfig:
    """Tunables of the host chain model."""

    slot_seconds: float = HOST_SLOT_SECONDS
    #: Network delay from a client to the chain's ingress, seconds.
    submit_delay_mean: float = 0.15
    #: Delay before off-chain observers see an emitted event (RPC poll).
    observe_delay_mean: float = 0.35
    #: Baseline mempool congestion in [0, 1].
    base_congestion: float = 0.30
    #: Amplitude of the diurnal congestion swing.
    diurnal_congestion: float = 0.15
    #: Probability that any given hour is a congestion spike...
    spike_probability: float = 0.04
    #: ...and the congestion level during a spike.
    spike_congestion: float = 0.92
    #: Maximum transactions per block (generous; we never saturate it).
    block_tx_limit: int = 2_048
    #: Serialized transaction size cap.  1232 bytes on Solana (§IV);
    #: other hosts differ (see repro.host.profiles).
    max_transaction_bytes: int = MAX_TRANSACTION_BYTES
    #: Per-transaction compute cap (1.4 M CU on Solana).
    max_compute_units: int = MAX_COMPUTE_UNITS
    #: Keep only the most recent N blocks in memory (None = keep all).
    #: Long simulated deployments set this; nothing in the system reads
    #: old host blocks (the guest keeps its own snapshots).
    retain_blocks: Optional[int] = None


@dataclass
class HostBlock:
    """A produced block: receipts plus the events its programs emitted."""

    slot: int
    time: float
    receipts: list[TxReceipt] = field(default_factory=list)
    events: list[HostEvent] = field(default_factory=list)


@dataclass
class _PendingTx:
    transaction: Transaction
    ready_time: float
    on_result: Optional[Callable[[TxReceipt], None]]
    bundle_id: Optional[int] = None
    bundle_tip: int = 0
    bundle_peers: Optional[list["_PendingTx"]] = None


class HostChain:
    """The Solana-like host blockchain actor."""

    def __init__(self, sim: Simulation, scheme: SignatureScheme, config: Optional[HostConfig] = None) -> None:
        self.sim = sim
        self.scheme = scheme
        self.config = config or HostConfig()
        self.accounts = AccountsDb()
        self.slot = 0
        self.blocks: list[HostBlock] = []
        self._programs: dict[Address, Program] = {}
        self._mempool: list[_PendingTx] = []
        self._subscribers: dict[str, list[Callable[[HostEvent], None]]] = {}
        self._rng = sim.rng.fork("host-chain")
        self._spike_cache: dict[int, bool] = {}
        #: Root of the per-hour spike sub-streams.  Minted once at
        #: construction without consuming a draw, so the spike schedule
        #: is a pure function of the chain's seed and the hour —
        #: independent of the order in which callers query
        #: :meth:`congestion_at` and of every other actor's draws.
        self._spike_seed = self._rng.derived_seed("congestion-spikes")
        #: Optional fault policy (duck-typed; see repro.chaos.injector).
        #: Consulted at the RPC edge (submit), in the congestion model
        #: (fee spikes) and in slot production (stalls).
        self.chaos = None
        self._slot_handle = sim.schedule(self.config.slot_seconds, self._produce_slot)

    # ------------------------------------------------------------------
    # Deployment and funding
    # ------------------------------------------------------------------

    def deploy(self, program: Program) -> None:
        if program.program_id in self._programs:
            raise HostError(f"program {program.program_id.short()} already deployed")
        self._programs[program.program_id] = program

    def airdrop(self, address: Address, lamports: int) -> None:
        """Test/bootstrap faucet."""
        self.accounts.credit(address, lamports)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        transaction: Transaction,
        on_result: Optional[Callable[[TxReceipt], None]] = None,
    ) -> None:
        """Send a transaction toward the mempool.

        Size violations raise immediately (the RPC node rejects oversized
        transactions before broadcast), so callers must chunk payloads.
        During a chaos blackout the RPC refuses outright
        (:class:`HostUnavailableError`, nothing broadcast); a chaos
        drop loses the transaction in transit — the caller's
        ``on_result`` sees a failed receipt after the usual delays.
        """
        transaction.check_size(self.config.max_transaction_bytes)
        if self.chaos is not None:
            self._check_rpc_available()
            if self.chaos.drop_tx(self.sim.now):
                self.sim.trace.count("chaos.host.tx_dropped")
                self.sim.schedule(
                    self._submit_latency() + self._observe_latency(),
                    self._report_dropped, transaction, on_result)
                return
        arrival = self._submit_latency()
        self.sim.trace.count("host.tx.submitted")
        self.sim.trace.begin("host.submit", key=transaction.tx_id, actor="host")
        self.sim.schedule(arrival, self._arrive, transaction, on_result, None, 0, None)

    def submit_bundle(
        self,
        transactions: list[Transaction],
        tip_lamports: int,
        on_result: Optional[Callable[[list[TxReceipt]], None]] = None,
    ) -> None:
        """Send an atomic bundle (Jito semantics): every transaction lands
        in the same block or none do; the tip is paid once, by the first
        transaction's payer."""
        if not transactions:
            raise HostError("empty bundle")
        for transaction in transactions:
            transaction.check_size(self.config.max_transaction_bytes)
        if self.chaos is not None:
            self._check_rpc_available()
            if self.chaos.drop_tx(self.sim.now):
                self.sim.trace.count("chaos.host.bundles_dropped")
                self.sim.schedule(
                    self._submit_latency() + self._observe_latency(),
                    self._report_dropped_bundle, list(transactions), on_result)
                return
        bundle_id = next(_bundle_ids)
        receipts: list[TxReceipt] = []
        remaining = len(transactions)

        def collect(receipt: TxReceipt) -> None:
            nonlocal remaining
            receipts.append(receipt)
            remaining -= 1
            if remaining == 0 and on_result is not None:
                on_result(sorted(receipts, key=lambda r: r.tx_id))

        arrival = self._submit_latency()
        peers: list[_PendingTx] = []
        self.sim.trace.count("host.bundles.submitted")
        for index, transaction in enumerate(transactions):
            tip = tip_lamports if index == 0 else 0
            self.sim.trace.count("host.tx.submitted")
            self.sim.trace.begin("host.submit", key=transaction.tx_id, actor="host")
            self.sim.schedule(
                arrival, self._arrive, transaction, collect, bundle_id, tip, peers,
            )

    def _submit_latency(self) -> float:
        return self._rng.expovariate(1.0 / self.config.submit_delay_mean)

    def _observe_latency(self) -> float:
        return self._rng.expovariate(1.0 / self.config.observe_delay_mean)

    # ------------------------------------------------------------------
    # Chaos fault edges (docs/CHAOS.md)
    # ------------------------------------------------------------------

    def _check_rpc_available(self) -> None:
        if self.chaos is not None and self.chaos.rpc_blocked(self.sim.now):
            self.sim.trace.count("chaos.host.rpc_refused")
            raise HostUnavailableError("host RPC blackout (chaos)")

    def _dropped_receipt(self, transaction: Transaction) -> TxReceipt:
        return TxReceipt(
            tx_id=transaction.tx_id, slot=self.slot, time=self.sim.now,
            success=False, fee_paid=0, compute_consumed=0,
            error="transaction dropped in transit (chaos)",
        )

    def _report_dropped(
        self,
        transaction: Transaction,
        on_result: Optional[Callable[[TxReceipt], None]],
    ) -> None:
        if on_result is not None:
            on_result(self._dropped_receipt(transaction))

    def _report_dropped_bundle(
        self,
        transactions: list[Transaction],
        on_result: Optional[Callable[[list[TxReceipt]], None]],
    ) -> None:
        if on_result is not None:
            on_result(sorted(
                (self._dropped_receipt(tx) for tx in transactions),
                key=lambda receipt: receipt.tx_id,
            ))

    def _arrive(
        self,
        transaction: Transaction,
        on_result: Optional[Callable[[TxReceipt], None]],
        bundle_id: Optional[int],
        bundle_tip: int,
        bundle_peers: Optional[list[_PendingTx]],
    ) -> None:
        self.sim.trace.finish("host.submit", key=transaction.tx_id)
        self.sim.trace.begin("host.mempool", key=transaction.tx_id, actor="host")
        congestion = self.congestion_at(self.sim.now)
        delay = transaction.fee_strategy.scheduling_delay(self._rng, congestion)
        pending = _PendingTx(
            transaction=transaction,
            ready_time=self.sim.now + delay,
            on_result=on_result,
            bundle_id=bundle_id,
            bundle_tip=bundle_tip,
            bundle_peers=bundle_peers,
        )
        if bundle_peers is not None:
            bundle_peers.append(pending)
            # A bundle becomes ready when its slowest member is ready; keep
            # all members aligned on the max so they land together.
            latest = max(peer.ready_time for peer in bundle_peers)
            for peer in bundle_peers:
                peer.ready_time = latest
        self._mempool.append(pending)

    # ------------------------------------------------------------------
    # Congestion model
    # ------------------------------------------------------------------

    def congestion_at(self, time: float) -> float:
        """Mempool congestion level in [0, 1] at a simulated time.

        Baseline + diurnal sinusoid + occasional hour-long spikes.  Each
        hour's spike flag comes from its own deterministic sub-stream
        (seeded by ``(chain seed, hour)``), never from the shared fork
        RNG: querying hours in any order — or under any workload — yields
        the same spike schedule for the same simulation seed.
        """
        if self.chaos is not None:
            override = self.chaos.congestion_override(time)
            if override is not None:
                return override
        hour = int(time // 3600)
        spike = self._spike_cache.get(hour)
        if spike is None:
            draw = random.Random((self._spike_seed << 20) ^ hour).random()
            spike = draw < self.config.spike_probability
            self._spike_cache[hour] = spike
        if spike:
            return self.config.spike_congestion
        level = self.config.base_congestion + self.config.diurnal_congestion * math.sin(
            2.0 * math.pi * (time % 86_400.0) / 86_400.0
        )
        return min(1.0, max(0.0, level))

    # ------------------------------------------------------------------
    # Block production
    # ------------------------------------------------------------------

    def _produce_slot(self) -> None:
        if self.chaos is not None and self.chaos.slot_stalled(self.sim.now):
            # Leader offline: no block this slot; the mempool keeps
            # accumulating and drains when production resumes.
            self.sim.trace.count("chaos.host.slots_stalled")
            self._slot_handle = self.sim.schedule(
                self.config.slot_seconds, self._produce_slot)
            return
        self.slot += 1
        trace = self.sim.trace
        trace.gauge("host.mempool.depth", len(self._mempool))
        block = HostBlock(slot=self.slot, time=self.sim.now)

        # Single pass: split the mempool into ready candidates and the
        # not-yet-ready remainder, instead of rescanning the whole pool a
        # second time to subtract what the block took.
        now = self.sim.now
        ready: list[_PendingTx] = []
        waiting: list[_PendingTx] = []
        for pending in self._mempool:
            (ready if pending.ready_time <= now else waiting).append(pending)
        ready.sort(key=lambda p: (p.ready_time, p.transaction.tx_id))
        selected, rejected_bundles = self._select_for_block(ready)
        taken = {id(p) for p in selected}
        taken.update(id(p) for members in rejected_bundles for p in members)
        waiting.extend(p for p in ready if id(p) not in taken)
        self._mempool = waiting

        # Group bundle members so they execute consecutively/atomically.
        singles = [p for p in selected if p.bundle_id is None]
        bundles: dict[int, list[_PendingTx]] = {}
        for pending in selected:
            if pending.bundle_id is not None:
                bundles.setdefault(pending.bundle_id, []).append(pending)

        for pending in singles:
            receipt = self._execute(pending, block)
            self._finish(pending, receipt, block)
        for members in bundles.values():
            self._execute_bundle(members, block)
        for members in rejected_bundles:
            self._reject_bundle(members, block)

        trace.count("host.blocks")
        self.blocks.append(block)
        retain = self.config.retain_blocks
        if retain is not None and len(self.blocks) > 2 * retain:
            del self.blocks[: len(self.blocks) - retain]
        for event in block.events:
            self._dispatch(event)
        self._slot_handle = self.sim.schedule(self.config.slot_seconds, self._produce_slot)

    def _select_for_block(
        self, ready: list[_PendingTx],
    ) -> tuple[list[_PendingTx], list[list[_PendingTx]]]:
        """Pick the transactions this block executes, honouring both the
        block transaction limit and bundle atomicity.

        A bundle is included only if *all* its ready members fit in the
        remaining capacity; otherwise the whole bundle defers to a later
        slot (Jito semantics — truncating mid-bundle would execute it
        partially, violating :meth:`submit_bundle`'s contract).  A bundle
        larger than the block limit itself can never land and is
        rejected outright (second return value) rather than deferred
        forever.
        """
        limit = self.config.block_tx_limit
        selected: list[_PendingTx] = []
        rejected: list[list[_PendingTx]] = []
        by_bundle: dict[int, list[_PendingTx]] = {}
        for pending in ready:
            if pending.bundle_id is not None:
                by_bundle.setdefault(pending.bundle_id, []).append(pending)

        considered: set[int] = set()
        for pending in ready:
            if pending.bundle_id is None:
                if len(selected) < limit:
                    selected.append(pending)
                continue
            if pending.bundle_id in considered:
                continue
            considered.add(pending.bundle_id)
            group = by_bundle[pending.bundle_id]
            expected = (
                len(pending.bundle_peers)
                if pending.bundle_peers is not None else len(group)
            )
            if len(group) < expected:
                continue  # a member is still in transit; wait for it
            if len(group) > limit:
                rejected.append(group)
                continue
            if len(selected) + len(group) > limit:
                self.sim.trace.count("host.bundles.deferred")
                continue
            selected.extend(group)
        return selected, rejected

    def _reject_bundle(self, members: list[_PendingTx], block: HostBlock) -> None:
        """Fail a bundle that can never fit any block (no fee charged —
        it is dropped before execution, like an oversized Jito bundle)."""
        self.sim.trace.count("host.bundles.rejected")
        for pending in members:
            receipt = TxReceipt(
                tx_id=pending.transaction.tx_id, slot=self.slot,
                time=self.sim.now, success=False, fee_paid=0,
                compute_consumed=0,
                error=f"bundle of {len(members)} transactions exceeds the "
                      f"block limit of {self.config.block_tx_limit}",
                bundle_id=pending.bundle_id,
            )
            self._finish(pending, receipt, block)

    def _execute_bundle(self, members: list[_PendingTx], block: HostBlock) -> None:
        """Run a bundle atomically: snapshot across all members, roll the
        whole group back if any member fails."""
        snapshots = self._snapshot(
            {addr for m in members for addr in m.transaction.unique_accounts()}
        )
        burned_checkpoint = self.accounts.burned_fees
        events_checkpoint = len(block.events)
        receipts: list[TxReceipt] = []
        failed = False
        for pending in members:
            receipt = self._execute(pending, block)
            receipts.append(receipt)
            if not receipt.success:
                failed = True
                break
        if failed:
            first_error = next(
                (r.error for r in receipts if not r.success and r.error), "unknown",
            )
            self._restore(snapshots)
            self.accounts.burned_fees = burned_checkpoint
            del block.events[events_checkpoint:]
            # All members fail together; fees for attempted ones are kept
            # (charged inside _execute before the rollback snapshot is
            # restored), so re-charge them explicitly after restore.
            receipts = []
            for pending in members:
                transaction = pending.transaction
                fee = self._fee_for(pending)
                fee_paid = 0
                try:
                    self.accounts.burn_fee(transaction.payer, fee)
                    fee_paid = fee
                except ReproError:
                    pass
                receipts.append(TxReceipt(
                    tx_id=transaction.tx_id, slot=self.slot, time=self.sim.now,
                    success=False, fee_paid=fee_paid, compute_consumed=0,
                    error=f"bundle failed atomically: {first_error}",
                    bundle_id=pending.bundle_id,
                ))
        for pending, receipt in zip(members, receipts):
            self._finish(pending, receipt, block)

    def _fee_for(self, pending: _PendingTx) -> int:
        transaction = pending.transaction
        budget = transaction.compute_budget or self.config.max_compute_units
        fee = transaction.fee_strategy.fee(
            transaction.signature_count, transaction.verify_count, budget
        )
        return fee + pending.bundle_tip

    def _execute(self, pending: _PendingTx, block: HostBlock) -> TxReceipt:
        transaction = pending.transaction
        self.sim.trace.finish("host.mempool", key=transaction.tx_id)
        fee = self._fee_for(pending)
        try:
            self.accounts.burn_fee(transaction.payer, fee)
        except ReproError as exc:
            return TxReceipt(
                tx_id=transaction.tx_id, slot=self.slot, time=self.sim.now,
                success=False, fee_paid=0, compute_consumed=0,
                error=f"fee payment failed: {exc}", bundle_id=pending.bundle_id,
            )

        # Runtime-level signature verification (the Ed25519 precompile).
        # One batched call per transaction: like the real precompile, the
        # whole list is checked up front and any failure rejects the tx,
        # so batch all-or-nothing semantics match exactly.
        if not self.scheme.verify_batch(
            [(e.public_key, e.message, e.signature) for e in transaction.sig_verifies]
        ):
            return TxReceipt(
                tx_id=transaction.tx_id, slot=self.slot, time=self.sim.now,
                success=False, fee_paid=fee, compute_consumed=0,
                error="precompile signature verification failed",
                bundle_id=pending.bundle_id,
            )
        verified = [(e.public_key, e.message) for e in transaction.sig_verifies]
        verified_entries = [
            (e.public_key, e.message, e.signature)
            for e in transaction.sig_verifies
        ]

        meter = ComputeMeter(
            min(transaction.compute_budget or self.config.max_compute_units,
                self.config.max_compute_units),
            hard_cap=self.config.max_compute_units,
        )
        snapshots = self._snapshot(transaction.unique_accounts())
        signers = frozenset((transaction.payer,) + transaction.extra_signers)
        events: list[HostEvent] = []
        try:
            for instruction in transaction.instructions:
                program = self._programs.get(instruction.program_id)
                if program is None:
                    raise ProgramError(
                        f"no program at {instruction.program_id.short()}"
                    )
                meter.charge(1_000)  # invocation overhead
                ctx = InvokeContext(
                    chain=self,
                    accounts_db=self.accounts,
                    instruction_accounts=instruction.accounts,
                    payer=transaction.payer,
                    signers=signers,
                    meter=meter,
                    slot=self.slot,
                    unix_time=self.sim.now,
                    verified_signatures=tuple(verified),
                    verified_signature_entries=tuple(verified_entries),
                )
                program.execute(ctx, instruction.data)
                events.extend(ctx.emitted_events)
        except (ReproError, ValueError) as exc:
            # ValueError covers malformed instruction data (truncated
            # buffers, bad enum tags): the runtime aborts the transaction
            # exactly like a program error.
            self._restore(snapshots)
            return TxReceipt(
                tx_id=transaction.tx_id, slot=self.slot, time=self.sim.now,
                success=False, fee_paid=fee, compute_consumed=meter.consumed,
                error=str(exc), bundle_id=pending.bundle_id,
            )

        block.events.extend(events)
        return TxReceipt(
            tx_id=transaction.tx_id, slot=self.slot, time=self.sim.now,
            success=True, fee_paid=fee, compute_consumed=meter.consumed,
            bundle_id=pending.bundle_id,
        )

    def _finish(self, pending: _PendingTx, receipt: TxReceipt, block: HostBlock) -> None:
        trace = self.sim.trace
        if receipt.success:
            trace.count("host.tx.executed")
            trace.observe("host.cu_consumed", receipt.compute_consumed)
        else:
            trace.count("host.tx.failed")
            # A deferred-then-rejected bundle member still holds an open
            # mempool span; close it so the report has no dangling work.
            trace.finish("host.mempool", key=receipt.tx_id)
        trace.observe("host.fee_paid", receipt.fee_paid)
        block.receipts.append(receipt)
        if pending.on_result is not None:
            delay = self._rng.expovariate(1.0 / self.config.observe_delay_mean)
            trace.observe("host.observe_delay", delay)
            self.sim.schedule(delay, pending.on_result, receipt)

    def _snapshot(self, addresses: set[Address]) -> dict[Address, Optional[tuple]]:
        snaps: dict[Address, Optional[tuple]] = {}
        for address in addresses:
            account = self.accounts.get(address)
            snaps[address] = account.snapshot() if account is not None else None
        return snaps

    def _restore(self, snapshots: dict[Address, Optional[tuple]]) -> None:
        for address, snap in snapshots.items():
            account = self.accounts.get(address)
            if snap is None:
                # The account did not exist before this transaction:
                # remove it outright.  Restoring an empty shell instead
                # would leave a phantom account behind — visible to
                # existence checks and double-allocation guards.
                if account is not None:
                    self.accounts.remove(address)
            else:
                self.accounts.account(address).restore(snap)

    # ------------------------------------------------------------------
    # Event subscription
    # ------------------------------------------------------------------

    def subscribe(self, event_name: str, callback: Callable[[HostEvent], None]) -> None:
        """Register an off-chain observer for an event name.  Delivery is
        delayed by the observation latency (RPC polling)."""
        self._subscribers.setdefault(event_name, []).append(callback)

    def _dispatch(self, event: HostEvent) -> None:
        for callback in self._subscribers.get(event.name, ()):
            delay = self._rng.expovariate(1.0 / self.config.observe_delay_mean)
            self.sim.trace.count("host.events.delivered")
            self.sim.trace.observe("host.observe_delay", delay)
            self.sim.schedule(delay, callback, event)

    # ------------------------------------------------------------------
    # Introspection used by tests and experiments
    # ------------------------------------------------------------------

    def mempool_size(self) -> int:
        return len(self._mempool)

    def total_fees_burned(self) -> int:
        return self.accounts.burned_fees
