"""Host accounts: addressed lamport balances with owned data blobs.

Follows Solana's account model: every account has a 32-byte address, a
lamport balance, a byte-array ``data`` field, and an ``owner`` program
which is the only program allowed to mutate it.  Accounts holding data
must keep a rent-exemption deposit proportional to their size — that
deposit is where the paper's 14.6 k USD figure for the guest's 10 MiB
state account comes from (§V-D).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import AccountSizeError, HostError, InsufficientFundsError
from repro.units import MAX_ACCOUNT_BYTES, rent_exempt_deposit


@dataclass(frozen=True, slots=True)
class Address:
    """A 32-byte account address."""

    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != 32:
            raise ValueError("Address requires exactly 32 bytes")

    @classmethod
    def derive(cls, label: str) -> "Address":
        """A deterministic address from a human-readable label (the
        simulator's stand-in for Solana's program-derived addresses)."""
        return cls(hashlib.sha256(b"address:" + label.encode("utf-8")).digest())

    def hex(self) -> str:
        return self.value.hex()

    def short(self) -> str:
        return self.value[:4].hex()

    def __bytes__(self) -> bytes:
        return self.value

    def __repr__(self) -> str:
        return f"Address({self.short()}…)"


@dataclass
class Account:
    """One host account: balance, data blob and owning program.

    ``data`` is an *immutable* ``bytes`` value: programs replace the blob
    wholesale rather than patching it in place.  That makes the rollback
    snapshot a reference grab instead of a copy — materially so for the
    guest's 10 MiB state account, whose per-transaction snapshot copy was
    the second-largest cost in the soak wall-clock profile
    (docs/PERFORMANCE.md).
    """

    address: Address
    lamports: int = 0
    data: bytes = b""
    owner: Optional[Address] = None

    @property
    def size(self) -> int:
        return len(self.data)

    def snapshot(self) -> tuple[int, bytes, Optional[Address]]:
        """Copy-out used for transaction rollback (O(1): data is
        immutable, so the reference itself is the snapshot)."""
        return (self.lamports, self.data, self.owner)

    def restore(self, snap: tuple[int, bytes, Optional[Address]]) -> None:
        self.lamports, self.data, self.owner = snap


class AccountsDb:
    """The bank: all accounts, with transfer / create / resize primitives."""

    def __init__(self) -> None:
        self._accounts: dict[Address, Account] = {}
        self.burned_fees: int = 0

    def account(self, address: Address) -> Account:
        """Fetch-or-create (zero-balance accounts exist implicitly)."""
        existing = self._accounts.get(address)
        if existing is None:
            existing = Account(address=address)
            self._accounts[address] = existing
        return existing

    def get(self, address: Address) -> Optional[Account]:
        return self._accounts.get(address)

    def balance(self, address: Address) -> int:
        account = self._accounts.get(address)
        return account.lamports if account else 0

    def credit(self, address: Address, lamports: int) -> None:
        if lamports < 0:
            raise HostError("credit amount must be non-negative")
        self.account(address).lamports += lamports

    def debit(self, address: Address, lamports: int) -> None:
        if lamports < 0:
            raise HostError("debit amount must be non-negative")
        account = self.account(address)
        if account.lamports < lamports:
            raise InsufficientFundsError(
                f"{address.short()} has {account.lamports} lamports, needs {lamports}"
            )
        account.lamports -= lamports

    def transfer(self, source: Address, destination: Address, lamports: int) -> None:
        self.debit(source, lamports)
        self.credit(destination, lamports)

    def burn_fee(self, payer: Address, lamports: int) -> None:
        """Collect a fee (tracked so experiments can account total spend)."""
        self.debit(payer, lamports)
        self.burned_fees += lamports

    def allocate(self, payer: Address, address: Address, size: int, owner: Address) -> Account:
        """Create a data account of ``size`` bytes, funding its
        rent-exemption deposit from ``payer`` (§V-D)."""
        if size > MAX_ACCOUNT_BYTES:
            raise AccountSizeError(
                f"requested {size} bytes exceeds the {MAX_ACCOUNT_BYTES}-byte account limit"
            )
        account = self.account(address)
        if account.size:
            raise HostError(f"account {address.short()} already allocated")
        deposit = rent_exempt_deposit(size)
        self.transfer(payer, address, deposit)
        account.data = bytes(size)
        account.owner = owner
        return account

    def remove(self, address: Address) -> None:
        """Delete an account entirely (transaction rollback of a
        just-created account — unlike :meth:`deallocate`, nothing is
        refunded because nothing survives)."""
        self._accounts.pop(address, None)

    def deallocate(self, address: Address, refund_to: Address) -> int:
        """Delete an account's data, refunding the rent deposit.

        Models the recovery path §V-D mentions ("the assets can be
        recovered when the account is shrunk or deleted").
        """
        account = self.account(address)
        refund = account.lamports
        account.lamports = 0
        account.data = b""
        account.owner = None
        self.credit(refund_to, refund)
        return refund

    def __iter__(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def __len__(self) -> int:
        return len(self._accounts)
