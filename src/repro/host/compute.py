"""Compute-unit metering (the 1.4 M CU budget of §IV).

Programs charge the meter as they work; exhausting it aborts the
transaction.  The unit prices are rough Solana-calibrated constants —
what matters to the reproduction is that heavyweight operations (hashing
large buffers, signature verification, trie traversals) cannot all fit
into one transaction, which is what forces the chunked light-client
updates measured in Fig. 4.
"""

from __future__ import annotations

from repro.errors import ComputeBudgetExceededError
from repro.units import MAX_COMPUTE_UNITS

#: Baseline cost of invoking a program at all.
INVOKE_BASE_UNITS = 1_000
#: Cost per 32-byte block of SHA-256 input.
SHA256_UNITS_PER_BLOCK = 100
#: One in-runtime signature verification (via the verify precompile).
SIGNATURE_VERIFY_UNITS = 25_000
#: Touching (deserialising) one trie node.
TRIE_NODE_UNITS = 300
#: Writing one byte of account data.
WRITE_BYTE_UNITS = 2


class ComputeMeter:
    """Per-transaction compute budget."""

    def __init__(self, budget: int = MAX_COMPUTE_UNITS,
                 hard_cap: int = MAX_COMPUTE_UNITS) -> None:
        if budget > hard_cap:
            raise ComputeBudgetExceededError(
                f"requested budget {budget} exceeds the {hard_cap} CU cap"
            )
        self.budget = budget
        self.consumed = 0

    @property
    def remaining(self) -> int:
        return self.budget - self.consumed

    def charge(self, units: int) -> None:
        if units < 0:
            raise ValueError("cannot charge negative compute units")
        self.consumed += units
        if self.consumed > self.budget:
            raise ComputeBudgetExceededError(
                f"consumed {self.consumed} CU of a {self.budget} CU budget"
            )

    def charge_hash(self, input_bytes: int) -> None:
        blocks = (input_bytes + 31) // 32
        self.charge(SHA256_UNITS_PER_BLOCK * max(1, blocks))

    def charge_signature_verify(self) -> None:
        self.charge(SIGNATURE_VERIFY_UNITS)

    def charge_trie_nodes(self, count: int) -> None:
        self.charge(TRIE_NODE_UNITS * count)

    def charge_write(self, byte_count: int) -> None:
        self.charge(WRITE_BYTE_UNITS * byte_count)
