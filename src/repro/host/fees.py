"""Fee strategies: base fees, priority fees and block bundles.

§V-A observes two cost clusters for sending a packet — 1.40 USD with
Solana priority fees and 3.02 USD with Jito block bundles — and §V-B
reports the relayer's base-fee costs of 0.1 cents per transaction plus
0.1 cents per additional verified signature.  The three strategies here
implement those models:

* :class:`BaseFee` — 5000 lamports per signature (transaction signatures
  plus precompile verifies), nothing else.  Cheapest, slowest to land
  under congestion.
* :class:`PriorityFee` — base fee plus ``compute_unit_price`` micro-
  lamports per requested compute unit.  Lands quickly.
* :class:`BundleFee` — base fee plus a flat tip to the block producer
  (the Jito model [35]).  Lands quickly *and* atomically: every
  transaction of a bundle executes in the same block, which is how
  ReceivePacket's 4–5 transactions all land together (§V-A).

Each strategy also models its *scheduling delay*: how long a transaction
waits in the mempool before a block producer picks it up, as a function
of the chain's congestion level.  These distributions are where the
latency clusters of Fig. 2 and Fig. 4 come from.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.sim.rng import Rng
from repro.units import (
    BASE_FEE_LAMPORTS_PER_SIGNATURE,
    MAX_COMPUTE_UNITS,
    MICROLAMPORTS_PER_LAMPORT,
)


class FeeStrategy(abc.ABC):
    """How a transaction pays for inclusion, and how fast it lands."""

    @abc.abstractmethod
    def fee(self, signature_count: int, verify_count: int, compute_budget: int) -> int:
        """Total fee in lamports."""

    @abc.abstractmethod
    def scheduling_delay(self, rng: Rng, congestion: float) -> float:
        """Seconds the mempool holds the transaction before inclusion.

        ``congestion`` is the chain's current load in [0, 1].
        """

    @staticmethod
    def base_fee(signature_count: int, verify_count: int) -> int:
        return BASE_FEE_LAMPORTS_PER_SIGNATURE * (signature_count + verify_count)


@dataclass(frozen=True)
class BaseFee(FeeStrategy):
    """Only the per-signature base fee: cheap but congestion-sensitive."""

    def fee(self, signature_count: int, verify_count: int, compute_budget: int) -> int:
        return self.base_fee(signature_count, verify_count)

    def scheduling_delay(self, rng: Rng, congestion: float) -> float:
        # Un-prioritised transactions queue behind paying traffic; the
        # expected wait grows steeply as blocks fill up.
        mean_wait = 0.4 + 6.0 * congestion**2
        return rng.expovariate(1.0 / mean_wait)


@dataclass(frozen=True)
class PriorityFee(FeeStrategy):
    """Base fee plus compute-unit price (micro-lamports per CU)."""

    compute_unit_price: int  # micro-lamports per compute unit

    def fee(self, signature_count: int, verify_count: int, compute_budget: int) -> int:
        priority = (self.compute_unit_price * compute_budget) // MICROLAMPORTS_PER_LAMPORT
        return self.base_fee(signature_count, verify_count) + priority

    def scheduling_delay(self, rng: Rng, congestion: float) -> float:
        # Priority traffic goes near the front of the queue; congestion
        # still adds some jitter.
        mean_wait = 0.2 + 0.8 * congestion
        return rng.expovariate(1.0 / mean_wait)


@dataclass(frozen=True)
class BundleFee(FeeStrategy):
    """Base fee plus a flat tip to the block producer (Jito bundles)."""

    tip_lamports: int

    def fee(self, signature_count: int, verify_count: int, compute_budget: int) -> int:
        return self.base_fee(signature_count, verify_count) + self.tip_lamports

    def scheduling_delay(self, rng: Rng, congestion: float) -> float:
        # Bundles are auctioned per block: they usually land in the next
        # one or two slots regardless of public-queue congestion.
        mean_wait = 0.3 + 0.3 * congestion
        return rng.expovariate(1.0 / mean_wait)


class AdaptiveFee(FeeStrategy):
    """§VI-B's future-work strategy: price to the observed congestion.

    The deployment used *fixed* fee models, which §VI-B notes is
    inflexible: "During low host chain usage the costs may be reduced
    and during high usage the fees do not prevent long tail latency."
    This strategy samples a congestion estimate at submission time and
    scales the compute-unit price between a floor and a ceiling, paying
    only what the current queue requires.
    """

    def __init__(self, congestion_probe, min_cu_price: int = 50_000,
                 max_cu_price: int = 8_000_000) -> None:
        #: Callable returning the current congestion estimate in [0, 1]
        #: (an RPC fee-oracle stand-in).
        self._probe = congestion_probe
        self.min_cu_price = min_cu_price
        self.max_cu_price = max_cu_price
        self.last_cu_price = min_cu_price

    def _price(self) -> int:
        level = min(1.0, max(0.0, float(self._probe())))
        # Convex response: pay little until the queue actually builds.
        scale = level ** 2
        price = round(self.min_cu_price
                      + scale * (self.max_cu_price - self.min_cu_price))
        self.last_cu_price = price
        return price

    def fee(self, signature_count: int, verify_count: int, compute_budget: int) -> int:
        priority = (self._price() * compute_budget) // MICROLAMPORTS_PER_LAMPORT
        return self.base_fee(signature_count, verify_count) + priority

    def scheduling_delay(self, rng: Rng, congestion: float) -> float:
        # Pricing at (or above) the market rate keeps the transaction
        # near the queue front, like a well-chosen priority fee.
        mean_wait = 0.2 + 0.9 * congestion
        return rng.expovariate(1.0 / mean_wait)


def default_priority_fee_for_send() -> PriorityFee:
    """The fixed priority fee the deployment's senders used (§V-A).

    Calibrated so a full-budget SendPacket costs ≈ 1.40 USD at
    200 USD/SOL: 1.40 USD = 7 000 000 lamports ≈ 5 µlamports/CU × 1.4 M CU
    ... with the µlamport integer math, 5_000_000 µlamports/CU over the
    1.4 M CU budget gives exactly 7 000 000 lamports.
    """
    return PriorityFee(compute_unit_price=5_000_000)


def default_bundle_fee_for_send() -> BundleFee:
    """The fixed Jito tip the deployment's senders used (§V-A).

    3.02 USD − base fee ≈ 15.1 M lamports.
    """
    return BundleFee(tip_lamports=15_090_000)


def send_budget_compute_units() -> int:
    """Compute budget senders request for SendPacket transactions."""
    return MAX_COMPUTE_UNITS
