"""A Solana-like host blockchain simulator.

The guest blockchain's published costs and latencies are consequences of
the host runtime's constraints (§IV): the 1232-byte transaction limit, the
1.4 M compute-unit budget, per-signature base fees, priority fees and
block-bundle tips, rent deposits and 400 ms slots.  This package
implements a discrete-event host chain that enforces exactly those
constraints, so the Guest Contract running on it inherits realistic
costs without any hard-coded numbers.

Substitution note (DESIGN.md §2): this simulator stands in for Solana
mainnet.  It does not reimplement Solana's networking or consensus — only
the runtime interface and economics that the paper's evaluation measures.
"""

from repro.host.accounts import Account, AccountsDb, Address
from repro.host.chain import HostChain, HostConfig
from repro.host.events import HostEvent
from repro.host.fees import BaseFee, BundleFee, FeeStrategy, PriorityFee
from repro.host.programs import InvokeContext, Program
from repro.host.transaction import Instruction, SigVerify, Transaction, TxReceipt

__all__ = [
    "Account",
    "AccountsDb",
    "Address",
    "BaseFee",
    "BundleFee",
    "FeeStrategy",
    "HostChain",
    "HostConfig",
    "HostEvent",
    "Instruction",
    "InvokeContext",
    "PriorityFee",
    "Program",
    "SigVerify",
    "Transaction",
    "TxReceipt",
]
