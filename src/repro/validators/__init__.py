"""Validator actors and the Table I behaviour profiles."""

from repro.validators.profiles import TABLE_I_PROFILES, ValidatorProfile, deployment_profiles
from repro.validators.node import ValidatorNode

__all__ = [
    "TABLE_I_PROFILES",
    "ValidatorNode",
    "ValidatorProfile",
    "deployment_profiles",
]
