"""The validator actor (Alg. 2, upper half).

Listens for ``NewBlock`` events, signs the block's sign-message after its
profile-drawn latency, and submits the signature through a Sign
transaction paying the profile's fixed fee — exactly the behaviour
Table I characterises.  Economic realism: a validator checks whether the
block already reached quorum before paying for a signature, and skips it
if so (which is why Table I's signature counts differ so widely).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.keys import Keypair
from repro.errors import HostUnavailableError
from repro.guest.api import GuestApi
from repro.guest.contract import GuestContract
from repro.host.chain import HostChain
from repro.host.events import HostEvent
from repro.host.fees import BaseFee, FeeStrategy, PriorityFee
from repro.host.transaction import TxReceipt
from repro.sim.kernel import Simulation
from repro.validators.profiles import SIGN_TX_COMPUTE_BUDGET, ValidatorProfile


@dataclass
class SignRecord:
    """One submitted signature, for the Table I statistics."""

    height: int
    #: Seconds between block generation and our signature landing.
    latency: float
    fee_paid: int
    success: bool


@dataclass
class ValidatorNode:
    """One validator: keypair, behaviour profile, metrics."""

    sim: Simulation
    chain: HostChain
    contract: GuestContract
    api: GuestApi
    keypair: Keypair
    profile: ValidatorProfile
    run_duration: float
    records: list[SignRecord] = field(default_factory=list)

    #: Period of the catch-up sweep over unfinalised blocks.
    sweep_seconds: float = 45.0

    def __post_init__(self) -> None:
        self._rng = self.sim.rng.fork(f"validator-{self.profile.index}")
        self.join_time = self.profile.join_fraction * self.run_duration
        self._outages = [
            (start_frac * self.run_duration,
             start_frac * self.run_duration + duration)
            for start_frac, duration in self.profile.outages
        ]
        self.chain.subscribe("NewBlock", self._on_new_block)
        if not self.profile.silent:
            self.sim.schedule(self.sweep_seconds * self._rng.uniform(0.5, 1.5),
                              self._sweep)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------

    def fee_strategy(self) -> FeeStrategy:
        price = self.profile.compute_unit_price()
        if price == 0:
            return BaseFee()
        return PriorityFee(compute_unit_price=price)

    def _outage_end_after(self, time: float) -> Optional[float]:
        for start, end in self._outages:
            if start <= time < end:
                return end
        return None

    def _on_new_block(self, event: HostEvent) -> None:
        if event.payload.get("guest", self.contract.chain_id) \
                != self.contract.chain_id:
            return  # a sibling guest's block (multi-guest fabric)
        if self.profile.silent:
            return
        if self.sim.now < self.join_time:
            return
        if not self._rng.bernoulli(self.profile.online_probability):
            return
        height = event.payload["height"]
        delay = self._rng.lognormal_quantiles(
            self.profile.latency_median, self.profile.latency_q3,
        )
        outage_end = self._outage_end_after(self.sim.now)
        if outage_end is not None:
            # Operator error (§V-C): the node is down; it signs whatever
            # it missed once it comes back.
            delay += outage_end - self.sim.now
        self.sim.schedule(delay, self._sign, height)

    def _sweep(self) -> None:
        """Catch-up pass: sign the head if it is stuck unfinalised.

        A validator that was offline (or whose NewBlock notification was
        lost) would otherwise never contribute; this sweep is what ends
        the §V-C stall once the operator error is fixed, and it is where
        the long straggler latencies of Fig. 2 / Table I come from.
        """
        self.sim.schedule(self.sweep_seconds * self._rng.uniform(0.8, 1.2), self._sweep)
        if self.sim.now < self.join_time or self._outage_end_after(self.sim.now) is not None:
            return
        if not self.contract.initialized:
            return
        head = self.contract.head
        if head.finalised or self.keypair.public_key in head.signers:
            return
        self._sign(head.height)

    def _sign(self, height: int) -> None:
        try:
            block = self.contract.block_at(height)
        except Exception:
            return
        epoch = self.contract.epochs.get(block.header.epoch_id)
        if epoch is None or not epoch.is_validator(self.keypair.public_key):
            return  # not in this block's validator set
        if self.keypair.public_key in block.signers:
            return
        if block.finalised:
            return  # quorum already reached; save the fee
        generated_at = block.generated_at
        message = block.header.sign_message()

        def record(receipt: TxReceipt) -> None:
            self.records.append(SignRecord(
                height=height,
                latency=receipt.time - generated_at,
                fee_paid=receipt.fee_paid,
                success=receipt.success,
            ))

        try:
            self.api.sign_block(
                height, self.keypair, message,
                fee=self.fee_strategy(),
                on_result=record,
            )
        except HostUnavailableError:
            # RPC blackout (chaos): retry after a beat.  If the block
            # finalises meanwhile the retry returns early above, and the
            # periodic sweep backstops any missed height regardless.
            self.sim.trace.count("chaos.validator.sign_deferred")
            self.sim.schedule(5.0, self._sign, height)

    # ------------------------------------------------------------------
    # Metrics helpers (Table I columns)
    # ------------------------------------------------------------------

    def successful_records(self) -> list[SignRecord]:
        return [record for record in self.records if record.success]

    def signature_count(self) -> int:
        return len(self.successful_records())

    def latencies(self) -> list[float]:
        return [record.latency for record in self.successful_records()]
