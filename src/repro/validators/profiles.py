"""Behaviour profiles calibrated to Table I of the paper.

Table I characterises the 24 mainnet validators over the September 2024
month: per-validator signature counts, the fixed fee each one paid per
Sign transaction, and their signing-latency quartiles.  The reproduction
cannot re-run those third-party operators, so it replays *calibrated
behaviour profiles* instead (DESIGN.md §2):

* **fee policy** — the exact per-signature cost from the table, converted
  to a priority-fee compute-unit price;
* **signing latency** — a log-normal fitted to the published median/Q3;
* **activity window** — validators joined the deployment at different
  times (the spread of signature counts); windows are staggered so each
  validator's share of the month approximates ``sigs / max(sigs)``;
* **silent validators** — 7 of the 24 never signed (§V-C);
* **the Validator #1 outage** — the operator error that produced the
  35 957 s maximum and the unfinalisable block (§V-C) is replayed as an
  outage window for validator #1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.units import sol_to_lamports

#: Lamports per US cent at the paper's 200 USD/SOL.
_LAMPORTS_PER_CENT = 50_000
#: Compute budget a Sign transaction requests.
SIGN_TX_COMPUTE_BUDGET = 200_000
#: Base fee of a Sign transaction: 2 signatures (payer + verify), 0.2 ¢.
_SIGN_BASE_CENTS = 0.2


@dataclass(frozen=True)
class ValidatorProfile:
    """One validator's replayed behaviour."""

    index: int
    #: Published per-transaction cost in cents (Table I) — drives the fee.
    fee_cents: float
    #: Latency distribution (log-normal via median/Q3, from Table I).
    latency_median: float
    latency_q3: float
    #: Staked lamports.
    stake: int
    #: Fraction of the month before this validator joins [0, 1).
    join_fraction: float = 0.0
    #: Probability of being online when a block needs signing.
    online_probability: float = 0.995
    #: Never signs at all (7 of the 24, §V-C).
    silent: bool = False
    #: Outage windows as (start_fraction, duration_seconds) of the run.
    outages: tuple[tuple[float, float], ...] = ()

    @property
    def priority_fee_cents(self) -> float:
        return max(0.0, self.fee_cents - _SIGN_BASE_CENTS)

    def compute_unit_price(self) -> int:
        """Micro-lamports per CU reproducing the published fee."""
        priority_lamports = self.priority_fee_cents * _LAMPORTS_PER_CENT
        return round(priority_lamports * 1_000_000 / SIGN_TX_COMPUTE_BUDGET)


#: (sigs, cost ¢, median s, Q3 s) — straight from Table I.
_TABLE_I_ROWS: tuple[tuple[int, float, float, float], ...] = (
    (1535, 1.00, 5.6, 7.6),
    (977, 1.40, 3.2, 5.2),
    (790, 0.25, 3.2, 5.6),
    (622, 1.40, 4.0, 6.0),
    (618, 0.23, 3.6, 5.2),
    (603, 0.23, 3.6, 5.2),
    (464, 1.40, 4.0, 6.0),
    (442, 0.60, 4.8, 6.4),
    (250, 0.23, 3.6, 4.8),
    (209, 0.23, 3.2, 5.2),
    (143, 1.40, 4.8, 6.4),
    (118, 1.40, 3.6, 5.6),
    (117, 1.40, 4.4, 6.4),
    (109, 1.40, 4.4, 6.0),
    (21, 1.40, 3.2, 3.2),
    (41, 0.20, 3.2, 4.4),
    (61, 0.20, 3.2, 4.8),
)

#: Signature counts, used to stagger join times (share of month active).
_MAX_SIGS = max(row[0] for row in _TABLE_I_ROWS)


def deployment_profiles(total_stake_usd: float = 1_250_000.0,
                        outage_seconds: float = 36_000.0) -> list[ValidatorProfile]:
    """The 24 mainnet validators: 17 active (Table I) + 7 silent (§V-C).

    Stakes sum to the published 1.25 M USD.  Active validators carry most
    of it; the silent seven hold small stakes (were they heavy, no block
    could ever have been finalised).  Validator #1's stake is pivotal
    early in the month — the condition behind the §V-C finalisation
    stall during its outage.
    """
    total_lamports = sol_to_lamports(total_stake_usd / 200.0)
    silent_count = 7
    # Stake split: 3 % across the silent seven, the rest over the actives
    # proportionally to engagement (a proxy for operator commitment).
    # The silent share must stay below half of validator #1's stake:
    # early epochs contain only #1 plus the silent seven, and #1 alone
    # has to clear the 2/3 quorum for the bootstrap to work at all —
    # the fragility §V-C describes.
    silent_each = int(total_lamports * 0.03 / silent_count)
    active_weight = sum(row[0] + 400 for row in _TABLE_I_ROWS)
    active_pool = total_lamports - silent_each * silent_count

    profiles: list[ValidatorProfile] = []
    for position, (sigs, cost, median, q3) in enumerate(_TABLE_I_ROWS):
        index = position + 1
        stake = int(active_pool * (sigs + 400) / active_weight)
        join = max(0.0, 1.0 - sigs / _MAX_SIGS)
        # Table I row 15 has fewer signatures than 16/17 despite its
        # number; keep the published ordering but smooth late joiners.
        q3_fitted = q3 if q3 > median else median * 1.3
        outages: tuple[tuple[float, float], ...] = ()
        if index == 1:
            # The §V-C operator error: ~10 h offline early in the run
            # (scaled by ``outage_seconds`` for shorter simulations).
            outages = ((0.10, outage_seconds),)
            join = 0.0
        profiles.append(ValidatorProfile(
            index=index,
            fee_cents=cost,
            latency_median=median,
            latency_q3=q3_fitted,
            stake=stake,
            join_fraction=join * 0.9,
            outages=outages,
        ))
    for offset in range(silent_count):
        profiles.append(ValidatorProfile(
            index=len(_TABLE_I_ROWS) + offset + 1,
            fee_cents=0.0,
            latency_median=4.0,
            latency_q3=6.0,
            stake=silent_each,
            # Stake shortly after genesis: the deployment bootstrapped
            # with a single controlled validator (§V), so epoch 0 is
            # validator #1 alone and the silent seven only join later
            # epochs (where their stake is small enough not to block
            # quorum).
            join_fraction=0.02,
            silent=True,
        ))
    return profiles


def simple_profiles(count: int, stake_sol: float = 100.0,
                    latency_median: float = 3.2, latency_q3: float = 5.2) -> list[ValidatorProfile]:
    """Homogeneous always-on validators — for tests and quick examples."""
    return [
        ValidatorProfile(
            index=index + 1,
            fee_cents=0.20,
            latency_median=latency_median,
            latency_q3=latency_q3,
            stake=sol_to_lamports(stake_sol),
        )
        for index in range(count)
    ]


#: Convenience alias used throughout the experiments.
TABLE_I_PROFILES: list[ValidatorProfile] = deployment_profiles()
