"""Exception hierarchy shared by every subsystem of the reproduction.

Each subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch at whatever granularity they need: a specific condition
(e.g. :class:`SealedNodeError`), a subsystem (e.g. :class:`TrieError`) or
everything raised by this library.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidSignatureError(CryptoError):
    """A signature failed verification."""


class InvalidKeyError(CryptoError):
    """A key was malformed (wrong length, not on the curve, ...)."""


# ---------------------------------------------------------------------------
# Sealable trie
# ---------------------------------------------------------------------------

class TrieError(ReproError):
    """Base class for trie failures."""


class SealedNodeError(TrieError):
    """An operation touched a sealed (pruned) part of the trie.

    The paper relies on this behaviour to prevent double delivery: once a
    packet's receipt is sealed, any attempt to look it up or re-insert it
    raises this error (§III-A).
    """


class KeyNotFoundError(TrieError):
    """A lookup or seal targeted a key absent from the trie."""


class ProofError(TrieError):
    """A membership or non-membership proof failed verification."""


# ---------------------------------------------------------------------------
# Host chain (Solana-like simulator)
# ---------------------------------------------------------------------------

class HostError(ReproError):
    """Base class for host-chain failures."""


class TransactionTooLargeError(HostError):
    """A transaction exceeded the host's serialized-size limit (1232 B)."""


class ComputeBudgetExceededError(HostError):
    """A transaction ran past its compute-unit budget (1.4 M CU)."""


class InsufficientFundsError(HostError):
    """An account lacked the lamports for a transfer, fee or deposit."""


class AccountSizeError(HostError):
    """An account allocation exceeded the maximum account size (10 MiB)."""


class ProgramError(HostError):
    """A program (smart contract) aborted the transaction."""


class MissingSignerError(HostError):
    """An instruction required a signature that was not provided."""


class HostUnavailableError(HostError):
    """The host RPC endpoint rejected the request outright (blackout).

    Raised synchronously from ``submit``/``submit_bundle`` while a chaos
    blackout window is active, mirroring a connection-refused RPC node.
    Callers are expected to back off and retry; nothing was broadcast.
    """


# ---------------------------------------------------------------------------
# Guest blockchain
# ---------------------------------------------------------------------------

class GuestError(ReproError):
    """Base class for Guest Contract failures."""


class HeadNotFinalisedError(GuestError):
    """``generate_block`` was called while the head awaits its quorum."""


class StaleBlockError(GuestError):
    """``generate_block`` found nothing to commit: the state root is
    unchanged and the head is younger than the Δ block-age parameter."""


class NotAValidatorError(GuestError):
    """A ``sign`` call came from a key outside the block's epoch set."""


class AlreadySignedError(GuestError):
    """A validator attempted to sign the same block twice."""


class UnknownBlockError(GuestError):
    """A height referenced a block the guest chain does not have."""


class StakeError(GuestError):
    """A staking operation was invalid (below minimum, still bonded, ...)."""


class DoubleDeliveryError(GuestError):
    """A packet that was already processed was submitted again."""


# ---------------------------------------------------------------------------
# IBC
# ---------------------------------------------------------------------------

class IbcError(ReproError):
    """Base class for IBC protocol failures."""


class ClientError(IbcError):
    """A light-client operation failed (unknown client, frozen, ...)."""


class HandshakeError(IbcError):
    """A connection or channel handshake step was out of order."""


class ChannelError(IbcError):
    """A channel operation failed (unknown channel, wrong state, ...)."""


class PacketError(IbcError):
    """A packet was rejected (bad proof, bad sequence, double delivery)."""


class TimeoutError_(IbcError):
    """A packet timed out (named with a trailing underscore to avoid
    shadowing the built-in :class:`TimeoutError`)."""


# ---------------------------------------------------------------------------
# Misbehaviour / fisherman
# ---------------------------------------------------------------------------

class EvidenceError(ReproError):
    """A piece of misbehaviour evidence failed validation."""


class AccountabilityError(EvidenceError):
    """An :class:`~repro.accountability.AccountabilityProof` failed
    verification (malformed, sub-quorum sides, thin intersection, or an
    invalid signature)."""


class EquivocationError(ClientError):
    """A light client observed two conflicting finalisations and froze.

    When the client runs in accountable mode the exception carries the
    :class:`~repro.accountability.AccountabilityProof` it constructed, so
    callers (the guest contract, the fisherman) can forward the evidence
    on-chain instead of merely halting.
    """

    def __init__(self, message: str, proof=None) -> None:
        super().__init__(message)
        self.proof = proof


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Base class for simulation-kernel failures."""
