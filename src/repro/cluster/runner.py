"""The cluster runner: shard a sweep across worker processes.

``ClusterRunner`` takes a task list (one entry per experiment point),
writes it to the run directory, and spawns ``workers`` processes that
shard it round-robin.  Correctness is filesystem-first:

* every finished point is one atomic ``task-<index>.json``;
* every in-flight point keeps an atomic ``task-<index>.ckpt`` world
  checkpoint (:mod:`repro.checkpoint`), refreshed between slices;
* a worker that dies (crash, OOM, SIGKILL) is respawned and *resumes*:
  finished tasks are skipped via their result files, the interrupted
  task restores its checkpoint — the merged results are byte-identical
  to an uninterrupted run.

The results queue streams small progress tuples for observability; it
carries no state the merge depends on.  Merging reads the result files
in task-index order, so output order is independent of worker count and
scheduling.

Worlds are simulated in *separate processes* — never interleaved inside
one — because restore rewinds the process-global id mints
(:mod:`repro.ids`).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ReproError
from repro.experiments.throughput import (
    SMOKE_BATCH_SIZES,
    SMOKE_DURATION,
    SMOKE_OFFERED_LOADS,
    ThroughputPointConfig,
    smoke_base_config,
    sweep_point_configs,
)
from repro.observability.report import TraceReport
from repro.cluster.worker import result_path, worker_main


class ClusterError(ReproError):
    """A sharded run could not complete."""


@dataclass(frozen=True)
class WorkerFault:
    """Test-only: make one worker SIGKILL itself (never re-armed on
    respawn).  ``after_points`` counts finished tasks before death;
    ``mid_task_slices`` instead dies that many slices into the next
    task, right after its checkpoint."""

    worker_index: int
    after_points: int = 0
    mid_task_slices: Optional[int] = None


@dataclass
class ClusterConfig:
    """How to shard: worker count, run directory, checkpoint cadence."""

    #: Worker processes; ``None`` means ``os.cpu_count()``.
    workers: Optional[int] = None
    #: Where task files, checkpoints and results live.  A directory that
    #: already holds a *matching* ``tasks.json`` is resumed; one holding
    #: a different task list is refused.
    run_dir: str = "results/cluster-run"
    #: Simulated seconds between mid-task checkpoints (0 disables them;
    #: completed-task resume still works through the result files).
    checkpoint_every_seconds: float = 300.0
    #: Ship each point's full TraceReport home for a merged report.
    collect_traces: bool = False
    #: Respawn budget per worker before the run is abandoned.
    max_restarts: int = 3
    #: Injected faults (tests).
    faults: tuple[WorkerFault, ...] = ()
    #: Progress callback ``(worker_index, kind, *details)``; default
    #: prints one line per event.
    on_progress: Any = field(default=None, repr=False)


class ClusterRunner:
    """Run a task list across worker processes; merge by task index."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.workers = self.config.workers or os.cpu_count() or 1
        self.events: list[tuple] = []

    # -- progress --------------------------------------------------------

    def _progress(self, worker_index: int, message: tuple) -> None:
        event = (worker_index,) + tuple(message)
        self.events.append(event)
        if self.config.on_progress is not None:
            self.config.on_progress(*event)

    # -- task files ------------------------------------------------------

    def _prepare_run_dir(self, tasks: list[dict]) -> None:
        os.makedirs(self.config.run_dir, exist_ok=True)
        tasks_path = os.path.join(self.config.run_dir, "tasks.json")
        serialized = json.dumps(tasks, sort_keys=True, indent=1)
        if os.path.exists(tasks_path):
            with open(tasks_path, encoding="utf-8") as handle:
                existing = handle.read()
            if existing != serialized:
                raise ClusterError(
                    f"run dir {self.config.run_dir!r} holds a different "
                    "task list; point the cluster at a fresh directory "
                    "(or delete the old one) instead of mixing sweeps"
                )
            return  # same sweep: resume, reusing finished task files
        tmp = f"{tasks_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(serialized)
        os.replace(tmp, tasks_path)

    # -- supervision -----------------------------------------------------

    def run_tasks(self, tasks: list[dict]) -> list[dict]:
        """Execute ``tasks``; return their records in task-index order."""
        if not tasks:
            return []
        for expected, task in enumerate(tasks):
            if task.get("index") != expected:
                raise ClusterError("task indices must be 0..n-1 in order")
        self._prepare_run_dir(tasks)

        context = multiprocessing.get_context("spawn")
        queue: Any = context.Queue()
        faults: dict[int, dict] = {
            fault.worker_index: {
                "after_points": fault.after_points,
                "mid_task_slices": fault.mid_task_slices,
            }
            for fault in self.config.faults
        }

        def spawn(worker_index: int, armed: bool):
            process = context.Process(
                target=worker_main,
                args=(worker_index, self.workers, self.config.run_dir, queue,
                      self.config.checkpoint_every_seconds,
                      self.config.collect_traces,
                      faults.get(worker_index) if armed else None),
                name=f"cluster-worker-{worker_index}",
                daemon=True,
            )
            process.start()
            return process

        processes = {index: spawn(index, armed=True)
                     for index in range(self.workers)}
        restarts = {index: 0 for index in range(self.workers)}
        finished: set[int] = set()

        while len(finished) < self.workers:
            try:
                event = queue.get(timeout=0.2)
            except Exception:
                event = None
            if event is not None:
                self._progress(event[0], tuple(event[1:]))
            for index, process in list(processes.items()):
                if index in finished or process.is_alive():
                    continue
                process.join()
                if process.exitcode == 0:
                    finished.add(index)
                    continue
                restarts[index] += 1
                if restarts[index] > self.config.max_restarts:
                    for other in processes.values():
                        if other.is_alive():
                            other.terminate()
                    raise ClusterError(
                        f"worker {index} died {restarts[index]} times "
                        f"(last exitcode {process.exitcode}); giving up"
                    )
                self._progress(index, ("respawn", process.exitcode))
                # Respawned workers never re-arm their injected fault.
                processes[index] = spawn(index, armed=False)

        # Drain any progress still in flight.
        while True:
            try:
                event = queue.get_nowait()
            except Exception:
                break
            self._progress(event[0], tuple(event[1:]))

        return self._collect(tasks)

    def _collect(self, tasks: list[dict]) -> list[dict]:
        records = []
        for task in tasks:
            path = result_path(self.config.run_dir, task["index"])
            if not os.path.exists(path):
                raise ClusterError(
                    f"workers exited cleanly but {path} is missing")
            with open(path, encoding="utf-8") as handle:
                records.append(json.load(handle))
        return records


# ----------------------------------------------------------------------
# Sweep fronts
# ----------------------------------------------------------------------


def throughput_tasks(configs: list[ThroughputPointConfig]) -> list[dict]:
    return [
        {"index": index, "kind": "throughput-point",
         "config": dataclasses.asdict(config)}
        for index, config in enumerate(configs)
    ]


def run_cluster_sweep(
    seed: int = 101,
    offered_loads: tuple[float, ...] = (2.0, 8.0, 16.0),
    batch_sizes: tuple[int, ...] = (1, 32),
    duration: float = 300.0,
    base: ThroughputPointConfig = ThroughputPointConfig(),
    cluster: Optional[ClusterConfig] = None,
) -> dict:
    """The sharded twin of ``run_throughput_sweep``.

    Same point configs (via ``sweep_point_configs``), same record
    builder in the workers, merge ordered by task index — the returned
    dict is numerically identical to the serial sweep's, whatever the
    worker count.  With ``collect_traces`` the merged
    :class:`TraceReport` rides along under ``"merged_trace"`` (the
    per-point rows stay identical: trace payloads are stripped first).
    """
    runner = ClusterRunner(cluster)
    started = time.monotonic()
    configs = sweep_point_configs(seed, offered_loads, batch_sizes,
                                  duration, base)
    records = runner.run_tasks(throughput_tasks(configs))
    merged_trace = None
    if runner.config.collect_traces:
        merged_trace = TraceReport.merge(
            TraceReport.from_json(record.pop("trace"))
            for record in records if "trace" in record
        )
    result = {
        "experiment": "throughput_sweep",
        "seed": seed,
        "offered_loads": list(offered_loads),
        "batch_sizes": list(batch_sizes),
        "duration_s": duration,
        "points": records,
    }
    if merged_trace is not None:
        result["merged_trace"] = merged_trace.to_json()
    result["cluster"] = {
        "workers": runner.workers,
        "wall_seconds": round(time.monotonic() - started, 3),
    }
    return result


def run_cluster_smoke(seed: int = 101,
                      cluster: Optional[ClusterConfig] = None) -> dict:
    """The CI smoke sweep, sharded — same points as the serial smoke."""
    return run_cluster_sweep(
        seed=seed,
        offered_loads=SMOKE_OFFERED_LOADS,
        batch_sizes=SMOKE_BATCH_SIZES,
        duration=SMOKE_DURATION,
        base=smoke_base_config(),
        cluster=cluster,
    )
