"""The cluster worker: one process, one shard of the sweep.

A worker owns every task whose index is congruent to its worker index
modulo the worker count (round-robin sharding).  For each owned task it

* skips straight past tasks whose ``task-<index>.json`` result already
  exists (a previous incarnation finished them);
* otherwise runs the task **resumably**: the world is stepped in
  simulated-time slices, and between slices a full
  :mod:`repro.checkpoint` snapshot is written (atomically) next to the
  result file — so a worker killed mid-task restarts from its last
  checkpoint instead of from zero, and the finished record is
  byte-identical either way (that is exactly the property the
  replay-divergence audit certifies);
* writes the result atomically (tmp + rename) and deletes the
  checkpoint.

Everything that matters for correctness lives in the filesystem; the
results queue only streams small progress notifications (tuples well
under ``PIPE_BUF``, so even a worker dying mid-``put`` cannot tear the
stream).
"""

from __future__ import annotations

import json
import os
import signal
from typing import Any, Callable, Optional

from repro.checkpoint import Checkpoint, restore_world, snapshot_world
from repro.experiments.throughput import (
    ThroughputPointConfig,
    build_linked_deployment,
    point_record,
)
from repro.workload import WorkloadEngine, WorkloadSpec

Notify = Callable[[tuple], None]


def _atomic_write_text(path: str, text: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(tmp, path)


def result_path(run_dir: str, index: int) -> str:
    return os.path.join(run_dir, f"task-{index}.json")


def checkpoint_path(run_dir: str, index: int) -> str:
    return os.path.join(run_dir, f"task-{index}.ckpt")


def _die_now() -> None:
    """Fault injection: an uncatchable, mid-flight death (SIGKILL)."""
    os.kill(os.getpid(), signal.SIGKILL)


def run_throughput_point_task(task: dict, run_dir: str,
                              checkpoint_every_seconds: float,
                              collect_trace: bool,
                              notify: Notify,
                              die_after_slices: Optional[int] = None) -> dict:
    """One throughput point, checkpointed between simulated-time slices.

    Resumes from ``task-<index>.ckpt`` when one exists.  Slicing a
    ``run_until`` into pieces does not change which events run, so the
    finished record matches a straight single-process run exactly.
    """
    index = task["index"]
    config = ThroughputPointConfig(**task["config"])
    ckpt_path = checkpoint_path(run_dir, index)

    if os.path.exists(ckpt_path):
        deployment, extras = restore_world(Checkpoint.load(ckpt_path))
        engine = extras["engine"]
        notify(("resumed", index, deployment.sim.now))
    else:
        deployment, channels = build_linked_deployment(config)
        engine = WorkloadEngine(deployment, channels, WorkloadSpec(
            mode=config.mode,
            offered_pps=config.offered_pps,
            duration=config.duration,
            drain_seconds=config.drain_seconds,
        ))
        engine.start()

    sim = deployment.sim
    end_time = engine._started_at + config.duration + config.drain_seconds
    slices = 0
    while sim.now < end_time:
        if checkpoint_every_seconds > 0:
            slice_end = min(sim.now + checkpoint_every_seconds, end_time)
        else:
            slice_end = end_time
        sim.run_until(slice_end)
        slices += 1
        if slice_end < end_time and checkpoint_every_seconds > 0:
            snapshot_world(
                deployment, extras={"engine": engine},
                label=f"task-{index}",
            ).save(ckpt_path)
            notify(("ckpt", index, sim.now))
        if die_after_slices is not None and slices >= die_after_slices:
            _die_now()

    record = point_record(config, deployment, engine,
                          collect_trace=collect_trace)
    _atomic_write_text(result_path(run_dir, index),
                       json.dumps(record, sort_keys=True))
    if os.path.exists(ckpt_path):
        os.remove(ckpt_path)
    return record


def run_state_point_task(task: dict, run_dir: str,
                         checkpoint_every_seconds: float,
                         collect_trace: bool,
                         notify: Notify,
                         die_after_slices: Optional[int] = None) -> dict:
    """One ``state-sweep`` scheduler point (batched store replay).

    The replay has no simulator world to checkpoint and runs in
    seconds-to-minutes, so resumability is at task granularity: a
    killed worker reruns the point, which is deterministic.
    """
    from repro.experiments.state import StatePointConfig, run_state_point

    index = task["index"]
    record = run_state_point(StatePointConfig(**task["config"]))
    _atomic_write_text(result_path(run_dir, index),
                       json.dumps(record, sort_keys=True))
    return record


#: Task kinds a worker can execute.  Every runner takes
#: ``(task, run_dir, checkpoint_every_seconds, collect_trace, notify,
#: die_after_slices)`` and leaves ``task-<index>.json`` behind.
TASK_KINDS: dict[str, Callable[..., dict]] = {
    "throughput-point": run_throughput_point_task,
    "state-point": run_state_point_task,
}


def worker_main(worker_index: int, workers: int, run_dir: str,
                queue: Any, checkpoint_every_seconds: float,
                collect_trace: bool,
                fault: Optional[dict] = None) -> None:
    """Entry point of a spawned worker process.

    ``fault`` (tests only) describes a self-inflicted SIGKILL:
    ``{"after_points": k}`` dies after finishing ``k`` tasks —
    with ``"mid_task_slices": s`` it instead dies ``s`` slices into the
    task after those ``k`` (right after that slice's checkpoint, the
    worst moment that still must lose no work).  The parent respawns a
    dead worker *without* its fault, so the shard resumes and finishes.
    """

    def notify(message: tuple) -> None:
        queue.put((worker_index,) + message)

    with open(os.path.join(run_dir, "tasks.json"), encoding="utf-8") as handle:
        tasks = json.load(handle)
    own = [task for task in tasks if task["index"] % workers == worker_index]

    completed = 0
    for task in own:
        index = task["index"]
        if os.path.exists(result_path(run_dir, index)):
            notify(("cached", index))
            completed += 1
            continue

        die_after_slices = None
        if fault is not None and completed >= int(fault.get("after_points", 0)):
            die_after_slices = fault.get("mid_task_slices")
            if die_after_slices is None:
                _die_now()

        notify(("start", index))
        runner = TASK_KINDS[task["kind"]]
        runner(task, run_dir, checkpoint_every_seconds, collect_trace,
               notify, die_after_slices)
        notify(("done", index))
        completed += 1

    notify(("exit", completed))
