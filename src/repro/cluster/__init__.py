"""Sharded multi-process experiment runner (``docs/CHECKPOINT.md``).

Shards a sweep's points across worker processes, streams progress over
a results queue, checkpoints in-flight worlds between slices with
:mod:`repro.checkpoint`, and resumes killed workers with byte-identical
merged results.
"""

from repro.cluster.runner import (
    ClusterConfig,
    ClusterError,
    ClusterRunner,
    WorkerFault,
    run_cluster_smoke,
    run_cluster_sweep,
    throughput_tasks,
)
from repro.cluster.worker import TASK_KINDS, worker_main

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterRunner",
    "TASK_KINDS",
    "WorkerFault",
    "run_cluster_smoke",
    "run_cluster_sweep",
    "throughput_tasks",
    "worker_main",
]
