"""The read half of the observability layer: querying and rendering.

A :class:`TraceReport` is an immutable snapshot of everything a
:class:`~repro.observability.trace.Tracer` recorded.  Benchmarks consume
it instead of hand-rolled bookkeeping: the Fig. 2 latency decomposition
is ``durations("packet.block_wait")`` / ``durations("packet.quorum_wait")``,
the Fig. 3 fee clusters are ``histogram("send.fee.priority")`` /
``histogram("send.fee.bundle")``, and a packet's whole life is
``trace(sequence)`` — one span tree from submit to counterparty commit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Optional

from repro.metrics.stats import Summary, percentile, summarize
from repro.metrics.table import format_table
from repro.observability.trace import SpanRecord


@dataclass(frozen=True)
class HistogramSummary:
    """Quantile digest of one histogram (or of one span's durations)."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    maximum: float

    def to_json(self) -> dict[str, float]:
        return {"count": self.count, "p50": self.p50, "p95": self.p95,
                "p99": self.p99, "mean": self.mean, "max": self.maximum}


def _digest(values: Iterable[float]) -> HistogramSummary:
    data = sorted(values)
    if not data:
        raise ValueError("cannot digest an empty series")
    return HistogramSummary(
        count=len(data),
        p50=percentile(data, 0.50),
        p95=percentile(data, 0.95),
        p99=percentile(data, 0.99),
        mean=sum(data) / len(data),
        maximum=data[-1],
    )


@dataclass(frozen=True)
class TraceReport:
    """Everything one traced run recorded, queryable and renderable."""

    spans: list[SpanRecord]
    counters: dict[str, int]
    histograms: dict[str, list[float]]
    gauges: dict[str, list[tuple[float, float]]]

    # -- span queries ----------------------------------------------------

    def span_names(self) -> list[str]:
        return sorted({record.name for record in self.spans})

    def spans_named(self, name: str) -> list[SpanRecord]:
        return [record for record in self.spans if record.name == name]

    def durations(self, name: str) -> list[float]:
        """Completed durations of every span with this name (sim seconds)."""
        return [record.duration for record in self.spans
                if record.name == name and record.end is not None]

    def span_summary(self, name: str) -> HistogramSummary:
        return _digest(self.durations(name))

    def trace(self, key: Hashable) -> list[SpanRecord]:
        """All spans correlated under one key, in start order — the
        trace tree of e.g. one packet's life across actors."""
        return sorted(
            (record for record in self.spans if record.key == key),
            key=lambda record: (record.start, record.span_id),
        )

    def children(self, span: SpanRecord) -> list[SpanRecord]:
        return [record for record in self.spans
                if record.parent_id == span.span_id]

    def open_spans(self) -> list[SpanRecord]:
        """Spans never closed (work in flight when the run stopped)."""
        return [record for record in self.spans if record.end is None]

    # -- counters / histograms / gauges ----------------------------------

    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def histogram(self, name: str) -> list[float]:
        return list(self.histograms.get(name, ()))

    def histogram_summary(self, name: str) -> HistogramSummary:
        return _digest(self.histograms[name])

    def histogram_stats(self, name: str) -> Summary:
        """The full Table-I-shape summary of one histogram."""
        return summarize(self.histograms[name])

    def gauge_series(self, name: str) -> list[tuple[float, float]]:
        return list(self.gauges.get(name, ()))

    def gauge_summary(self, name: str) -> HistogramSummary:
        return _digest(value for _, value in self.gauges[name])

    # -- export ----------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "spans": [record.to_json() for record in self.spans],
            "counters": dict(self.counters),
            "histograms": {name: list(values)
                           for name, values in self.histograms.items()},
            "gauges": {name: [[t, v] for t, v in points]
                       for name, points in self.gauges.items()},
        }

    def dumps(self, indent: Optional[int] = None) -> str:
        """JSON dump (span keys coerced to strings where needed)."""
        return json.dumps(self.to_json(), indent=indent, default=str)

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "TraceReport":
        """Inverse of :meth:`to_json` — how cluster workers ship their
        shard's trace home over the results stream."""
        return cls(
            spans=[SpanRecord.from_json(span)
                   for span in record.get("spans", ())],
            counters={name: int(value)
                      for name, value in record.get("counters", {}).items()},
            histograms={name: [float(v) for v in values]
                        for name, values in record.get("histograms", {}).items()},
            gauges={name: [(float(t), float(v)) for t, v in points]
                    for name, points in record.get("gauges", {}).items()},
        )

    @classmethod
    def merge(cls, reports: Iterable["TraceReport"]) -> "TraceReport":
        """Combine reports from independent runs into one aggregate.

        Counters sum; histogram and gauge series concatenate in report
        order; spans concatenate.  Span ids are only unique *within* a
        source report (each worker process mints its own), so treat the
        merged report as an aggregate-statistics view — per-key trace
        trees should be read from the shard that produced them.
        """
        spans: list[SpanRecord] = []
        counters: dict[str, int] = {}
        histograms: dict[str, list[float]] = {}
        gauges: dict[str, list[tuple[float, float]]] = {}
        for report in reports:
            spans.extend(report.spans)
            for name, value in report.counters.items():
                counters[name] = counters.get(name, 0) + value
            for name, values in report.histograms.items():
                histograms.setdefault(name, []).extend(values)
            for name, points in report.gauges.items():
                gauges.setdefault(name, []).extend(points)
        return cls(spans=spans, counters=counters,
                   histograms=histograms, gauges=gauges)

    def render(self) -> str:
        """Pretty tables: spans, counters, histograms, gauges."""
        blocks: list[str] = []
        if self.spans:
            rows = []
            for name in self.span_names():
                done = self.durations(name)
                open_count = sum(1 for r in self.spans
                                 if r.name == name and r.end is None)
                if done:
                    digest = _digest(done)
                    rows.append([name, str(digest.count), str(open_count),
                                 f"{digest.mean:.2f}", f"{digest.p50:.2f}",
                                 f"{digest.p95:.2f}", f"{digest.p99:.2f}",
                                 f"{digest.maximum:.2f}"])
                else:
                    rows.append([name, "0", str(open_count),
                                 "-", "-", "-", "-", "-"])
            blocks.append(format_table(
                ["span", "done", "open", "mean (s)", "p50", "p95", "p99", "max"],
                rows, title="Spans (simulated seconds)",
            ))
        if self.counters:
            blocks.append(format_table(
                ["counter", "value"],
                [[name, str(self.counters[name])]
                 for name in sorted(self.counters)],
                title="Counters",
            ))
        if self.histograms:
            rows = []
            for name in sorted(self.histograms):
                digest = _digest(self.histograms[name])
                rows.append([name, str(digest.count), f"{digest.mean:.2f}",
                             f"{digest.p50:.2f}", f"{digest.p95:.2f}",
                             f"{digest.p99:.2f}", f"{digest.maximum:.2f}"])
            blocks.append(format_table(
                ["histogram", "n", "mean", "p50", "p95", "p99", "max"],
                rows, title="Histograms",
            ))
        if self.gauges:
            rows = []
            for name in sorted(self.gauges):
                digest = self.gauge_summary(name)
                rows.append([name, str(digest.count), f"{digest.mean:.2f}",
                             f"{digest.p50:.2f}", f"{digest.p95:.2f}",
                             f"{digest.maximum:.2f}"])
            blocks.append(format_table(
                ["gauge", "samples", "mean", "p50", "p95", "max"],
                rows, title="Gauges",
            ))
        return "\n\n".join(blocks) if blocks else "(trace empty)"
