"""The recording half of the observability layer.

Spans measure *simulated* time (the kernel clock), not wall-clock: a
span opened when a packet's transaction is submitted and closed when the
counterparty commits it measures exactly the latency Fig. 2 plots.
Because actors live in different event-loop callbacks, spans can be
carried two ways:

* as handles — ``span = trace.span("host.submit", key=tx_id)`` then
  ``span.end()`` later (also usable as a context manager for intervals
  that open and close inside one callback);
* keyed — ``trace.begin("guest.block", key=height)`` in one callback and
  ``trace.finish("guest.block", key=height)`` in another, when no object
  conveniently crosses the gap.  ``finish`` on a key that was never
  begun is a silent no-op, so late enabling or missed starts never
  crash a run.

Counters are monotonic, histograms keep the raw sample (quantiles are
computed at report time with the Table-I percentile convention), gauges
keep ``(time, value)`` pairs for queue-depth-style series.
"""

from __future__ import annotations

from repro import ids
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

_span_ids = ids.mint("observability.span")


@dataclass
class SpanRecord:
    """One recorded interval of simulated time."""

    span_id: int
    name: str
    key: Optional[Hashable]
    actor: Optional[str]
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_json(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "key": self.key,
            "actor": self.actor,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "SpanRecord":
        """Inverse of :meth:`to_json` (keys that were JSON-coerced to
        strings stay strings; aggregate queries don't mind)."""
        return cls(
            span_id=record["span_id"],
            name=record["name"],
            key=record.get("key"),
            actor=record.get("actor"),
            start=record["start"],
            end=record.get("end"),
            parent_id=record.get("parent_id"),
            attrs=dict(record.get("attrs", {})),
        )


class Span:
    """Handle over an open :class:`SpanRecord`; ``end()`` closes it."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def end(self, **attrs: Any) -> None:
        if self.record.end is None:
            self.record.end = self._tracer.now()
            if attrs:
                self.record.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.end()


class _NullSpan:
    """The span every :class:`NullTracer` probe returns."""

    __slots__ = ()

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every probe is a no-op method call.

    This is the default on every :class:`~repro.sim.kernel.Simulation`,
    which is what keeps the instrumented hot paths within the <5 %
    overhead budget when nobody asked for traces.
    """

    enabled = False

    def bind(self, clock: Callable[[], float]) -> None:
        pass

    def span(self, name: str, key: Optional[Hashable] = None,
             actor: Optional[str] = None, parent: Optional[Span] = None,
             **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, name: str, key: Optional[Hashable] = None,
              actor: Optional[str] = None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, name: str, key: Optional[Hashable] = None,
               **attrs: Any) -> None:
        pass

    def count(self, name: str, value: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def report(self) -> "TraceReport":
        from repro.observability.report import TraceReport
        return TraceReport(spans=[], counters={}, histograms={}, gauges={})


#: Shared disabled tracer (stateless, so one instance serves everyone).
NULL_TRACER = NullTracer()


class Tracer:
    """Tracing enabled: records spans/counters/histograms/gauges.

    A tracer is normally created by passing ``tracer=Tracer()`` to the
    simulation kernel (or ``tracing=True`` to a deployment), which binds
    the simulated clock.  A free-standing tracer reads time 0.0 until
    bound — convenient for unit tests of the recording machinery.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, list[float]] = {}
        self.gauges: dict[str, list[tuple[float, float]]] = {}
        self._open: dict[tuple[str, Optional[Hashable]], SpanRecord] = {}

    def bind(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock (done by the kernel)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # -- spans -----------------------------------------------------------

    def span(self, name: str, key: Optional[Hashable] = None,
             actor: Optional[str] = None, parent: Optional[Span] = None,
             **attrs: Any) -> Span:
        """Open a span now; close it with ``.end()`` or a ``with`` block."""
        record = SpanRecord(
            span_id=next(_span_ids), name=name, key=key, actor=actor,
            start=self._clock(),
            parent_id=parent.record.span_id if isinstance(parent, Span) else None,
            attrs=dict(attrs),
        )
        self.spans.append(record)
        return Span(self, record)

    def begin(self, name: str, key: Optional[Hashable] = None,
              actor: Optional[str] = None, **attrs: Any) -> Span:
        """Open a keyed span retrievable by ``finish(name, key)``.

        Re-beginning an already open ``(name, key)`` abandons the first
        interval (it stays in the record, open) and starts a fresh one.
        """
        span = self.span(name, key=key, actor=actor, **attrs)
        self._open[(name, key)] = span.record
        return span

    def finish(self, name: str, key: Optional[Hashable] = None,
               **attrs: Any) -> None:
        """Close the open span under ``(name, key)``; no-op if absent."""
        record = self._open.pop((name, key), None)
        if record is not None and record.end is None:
            record.end = self._clock()
            if attrs:
                record.attrs.update(attrs)

    # -- counters / histograms / gauges ----------------------------------

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, []).append(value)

    def gauge(self, name: str, value: float) -> None:
        self.gauges.setdefault(name, []).append((self._clock(), value))

    # -- export ----------------------------------------------------------

    def report(self) -> "TraceReport":
        from repro.observability.report import TraceReport
        return TraceReport(
            spans=list(self.spans),
            counters=dict(self.counters),
            histograms={name: list(values) for name, values in self.histograms.items()},
            gauges={name: list(points) for name, points in self.gauges.items()},
        )
