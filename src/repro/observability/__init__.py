"""Simulation-time observability: tracing spans, counters, histograms.

The subsystem has two halves:

* :mod:`repro.observability.trace` — the recording side.  A
  :class:`Tracer` hangs off the simulation kernel (``sim.trace``) and
  records simulated-time spans keyed by actor and correlation id,
  monotonic counters, streaming histograms and sampled gauges.  The
  default is a :class:`NullTracer` whose methods are no-ops, so an
  uninstrumented run pays one method call per probe and nothing else.
* :mod:`repro.observability.report` — the read side.  A
  :class:`TraceReport` turns the recorded series into the per-phase
  latency decompositions, fee histograms and queue-depth summaries the
  §V experiments report, as JSON or pretty tables.

See docs/OBSERVABILITY.md for the span and counter taxonomy.
"""

from repro.observability.report import TraceReport
from repro.observability.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = ["NULL_TRACER", "NullTracer", "Span", "TraceReport", "Tracer"]
