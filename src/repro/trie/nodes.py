"""Node types of the sealable Patricia trie.

Four node kinds, following Merkle-Patricia conventions plus the paper's
sealing extension:

* :class:`LeafNode` — remaining key path + value.
* :class:`ExtensionNode` — shared path segment compressing a chain of
  single-child branches.
* :class:`BranchNode` — 16 child slots and an optional value for a key
  terminating at the branch.
* :class:`SealedNode` — the paper's novelty: a stub that preserves a
  subtree's hash while its contents have been deleted from storage
  (§III-A).  Its accounted size is just the 32-byte hash that the parent
  must retain anyway.

Hashes are computed lazily and cached; mutation happens by rebuilding the
nodes along the touched path (the trie object owns that logic), so a cache
never goes stale.  The same dirty-path discipline carries the *aggregate*
caches: every node memoizes its subtree's ``(storage bytes, live nodes,
sealed stubs)`` totals, so the per-execution state-budget check reads one
cached tuple at the root instead of walking the whole trie — the walk
that used to dominate the soak profile (docs/PERFORMANCE.md).

Leaf hashes commit to the *hash* of the value (:func:`value_commitment`)
rather than the raw bytes.  That keeps sealed stubs *re-pathable*: a stub
remembers its remaining key path plus the fixed-size core commitment, so
when a delete strands it as a branch's lone occupant the trie can merge
the branch nibble into the stub's path and recompute its hash — exactly
what a fresh rebuild of the same mapping would produce.  Without the
indirection the stub's hash pins the pruned value bytes and the shape can
never be normalized (the stranded-stub divergence documented in
docs/PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.crypto.hashing import Hash, hash_concat
from repro.trie.nibbles import Nibbles, encode_nibbles, encoded_nibbles_len

_TAG_LEAF = b"\x00"
_TAG_EXTENSION = b"\x01"
_TAG_BRANCH = b"\x02"
_TAG_VALUE = b"\x04"
_NO_VALUE = b"\xff"

#: Accounted per-node byte overhead (tag + bookkeeping), mirroring the
#: on-chain layout the paper's deployment uses inside its 10 MiB account.
NODE_OVERHEAD_BYTES = 8
HASH_BYTES = 32

Node = Union["LeafNode", "ExtensionNode", "BranchNode", "SealedNode"]

_ZERO = Hash.zero()


# ---------------------------------------------------------------------------
# Canonical node hashing
#
# These are *the* hash formulas of the commitment scheme; proof
# verification (repro.trie.proof) folds the same functions bottom-up, so
# they live here rather than being duplicated per call site.
# ---------------------------------------------------------------------------

def value_commitment(value: bytes) -> Hash:
    """The fixed-size commitment a leaf hash binds instead of raw bytes.

    Sealing keeps only this 32-byte digest, which is what lets a sealed
    leaf stub be re-hashed under a longer path after branch collapse.
    """
    return hash_concat(_TAG_VALUE, value)


def leaf_hash(path: Nibbles, commitment: Hash) -> Hash:
    """Hash of a leaf from its path and its :func:`value_commitment`."""
    return hash_concat(_TAG_LEAF, encode_nibbles(path), commitment)


def extension_hash(path: Nibbles, child: Hash) -> Hash:
    return hash_concat(_TAG_EXTENSION, encode_nibbles(path), child)


def branch_hash(children: Sequence[Hash], value: Optional[bytes]) -> Hash:
    parts: list[bytes | Hash] = [_TAG_BRANCH]
    parts.extend(children)
    parts.append(value if value is not None else _NO_VALUE)
    return hash_concat(*parts)


class LeafNode:
    """A terminal node holding ``value`` at the end of ``path``."""

    __slots__ = ("path", "value", "_hash")

    def __init__(self, path: Nibbles, value: bytes) -> None:
        self.path = path
        self.value = value
        self._hash: Optional[Hash] = None

    def hash(self) -> Hash:
        if self._hash is None:
            self._hash = leaf_hash(self.path, value_commitment(self.value))
        return self._hash

    def storage_bytes(self) -> int:
        return NODE_OVERHEAD_BYTES + encoded_nibbles_len(self.path) + len(self.value)

    def aggregates(self) -> tuple[int, int, int]:
        """Subtree totals ``(storage_bytes, live_nodes, sealed_stubs)``."""
        return (self.storage_bytes(), 1, 0)

    def __repr__(self) -> str:
        return f"Leaf(path={self.path}, value={self.value[:8]!r})"


class ExtensionNode:
    """A path-compression node: ``path`` then ``child``."""

    __slots__ = ("path", "child", "_hash", "_agg")

    def __init__(self, path: Nibbles, child: Node) -> None:
        if not path:
            raise ValueError("extension path must be non-empty")
        self.path = path
        self.child = child
        self._hash: Optional[Hash] = None
        self._agg: Optional[tuple[int, int, int]] = None

    def hash(self) -> Hash:
        if self._hash is None:
            self._hash = extension_hash(self.path, self.child.hash())
        return self._hash

    def storage_bytes(self) -> int:
        return NODE_OVERHEAD_BYTES + encoded_nibbles_len(self.path) + HASH_BYTES

    def aggregates(self) -> tuple[int, int, int]:
        if self._agg is None:
            storage, live, sealed = self.child.aggregates()
            self._agg = (self.storage_bytes() + storage, 1 + live, sealed)
        return self._agg

    def __repr__(self) -> str:
        return f"Extension(path={self.path})"


class BranchNode:
    """A 16-way fan-out with an optional value terminating at the branch."""

    __slots__ = ("children", "value", "_hash", "_child_hashes", "_agg")

    def __init__(self, children: Optional[list[Optional[Node]]] = None, value: Optional[bytes] = None) -> None:
        self.children: list[Optional[Node]] = children if children is not None else [None] * 16
        if len(self.children) != 16:
            raise ValueError("branch must have exactly 16 child slots")
        self.value = value
        self._hash: Optional[Hash] = None
        #: Either the final cached tuple or a partially valid list with
        #: ``None`` holes (dirty slots from :meth:`replacing_child`).
        self._child_hashes: Optional[tuple[Hash, ...] | list[Optional[Hash]]] = None
        self._agg: Optional[tuple[int, int, int]] = None

    def replacing_child(self, index: int, child: Optional[Node]) -> "BranchNode":
        """A copy of this branch with one child slot replaced.

        This is the incremental-rehash path: the fifteen untouched
        sibling hashes are carried over from this node's cache (when
        warm) and only the dirty slot is recomputed — lazily, so a burst
        of writes to one subtree does not rehash intermediate states.
        """
        children = list(self.children)
        children[index] = child
        node = BranchNode(children, self.value)
        cached = self._child_hashes
        if cached is not None:
            patched: list[Optional[Hash]] = list(cached)
            patched[index] = None
            node._child_hashes = patched
        return node

    def replacing_value(self, value: Optional[bytes]) -> "BranchNode":
        """A copy with only the branch value changed.

        The children are untouched, so the child-hash cache transfers
        wholesale (the holes of a partially valid cache, if any, are
        filled lazily by :meth:`child_hashes`).
        """
        node = BranchNode(list(self.children), value)
        node._child_hashes = self._child_hashes
        return node

    def child_hashes(self) -> tuple[Hash, ...]:
        """All 16 child hashes (zero hash for empty slots), cached.

        Proof generation needs a branch's sibling hashes on every step;
        without the cache each proof re-hashes the same children over and
        over.  Safe to cache because mutation rebuilds the nodes along
        the touched path rather than editing them in place.
        """
        cached = self._child_hashes
        if type(cached) is tuple:
            return cached
        if cached is None:
            hashes = tuple(
                child.hash() if child is not None else _ZERO
                for child in self.children
            )
        else:  # partially valid list: fill the dirty holes
            children = self.children
            hashes = tuple(
                existing if existing is not None
                else (children[i].hash() if children[i] is not None else _ZERO)
                for i, existing in enumerate(cached)
            )
        self._child_hashes = hashes
        return hashes

    def hash(self) -> Hash:
        if self._hash is None:
            self._hash = branch_hash(self.child_hashes(), self.value)
        return self._hash

    def child_count(self) -> int:
        return sum(1 for child in self.children if child is not None)

    def live_child_count(self) -> int:
        """Children that are present and not sealed."""
        return sum(
            1 for child in self.children
            if child is not None and not isinstance(child, SealedNode)
        )

    def storage_bytes(self) -> int:
        """Sparse on-chain layout: a 2-byte occupancy bitmap plus one
        hash per *present* child (matching the compact node encoding the
        deployment uses inside its 10 MiB account — empty slots cost
        nothing)."""
        value_bytes = len(self.value) if self.value is not None else 0
        bitmap_bytes = 2
        return (NODE_OVERHEAD_BYTES + bitmap_bytes
                + self.child_count() * HASH_BYTES + value_bytes)

    def aggregates(self) -> tuple[int, int, int]:
        if self._agg is None:
            storage = self.storage_bytes()
            live = 1
            sealed = 0
            for child in self.children:
                if child is not None:
                    c_storage, c_live, c_sealed = child.aggregates()
                    storage += c_storage
                    live += c_live
                    sealed += c_sealed
            self._agg = (storage, live, sealed)
        return self._agg

    def __repr__(self) -> str:
        slots = "".join("x" if c is not None else "." for c in self.children)
        return f"Branch([{slots}], value={'yes' if self.value is not None else 'no'})"


class SealedNode:
    """A pruned subtree: commitments survive, contents do not (§III-A).

    The node's contents are gone from storage; the stub keeps the root
    commitment intact.  Any traversal that would enter the pruned *data*
    must fail — which is exactly how the Guest Contract prevents double
    delivery after sealing a processed packet's receipt.  Keys that
    merely diverge from the stub's surviving skeleton are provably
    absent, and fresh keys can still be inserted beside it.

    Three kinds, mirroring what was pruned:

    * ``LEAF`` — a single sealed entry.  ``path`` is the leaf's remaining
      key path, ``core`` its :func:`value_commitment`; the hash is
      :func:`leaf_hash` over the two.
    * ``BRANCH`` — a fully sealed branch, optionally reached through an
      extension prefix ``path``.  ``children`` keeps the 16-slot
      occupancy with each present child's subtree hash, so empty slots
      remain insertable and provably absent while occupied slots are
      opaque.
    * ``OPAQUE`` — a bare subtree hash with no skeleton: what a sealed
      branch's occupied slot expands to when a fresh key is inserted
      beside it.  Fully covered; can never be re-pathed (the enclosing
      branch permanently keeps at least two of them, so collapse never
      strands one — see ``_collapse_branch``).

    Keeping paths and occupancy *outside* the hashed core is what makes
    stubs re-pathable and splittable: delete/collapse and insert produce
    exactly the stub a fresh rebuild of the same mapping would contain,
    so an incrementally maintained root never diverges from a rebuilt
    one.
    """

    __slots__ = ("path", "core", "children", "kind", "_hash")

    LEAF = 0
    BRANCH = 1
    OPAQUE = 2

    _AGG = (0, 0, 1)

    def __init__(self, path: Nibbles, kind: int,
                 core: Optional[Hash] = None,
                 children: Optional[tuple[Optional[Hash], ...]] = None) -> None:
        if kind in (SealedNode.LEAF, SealedNode.OPAQUE):
            if core is None or children is not None:
                raise ValueError("leaf/opaque stubs carry a core hash only")
            if kind == SealedNode.OPAQUE and path:
                raise ValueError("opaque stubs cannot carry a path")
        elif kind == SealedNode.BRANCH:
            if children is None or core is not None:
                raise ValueError("branch stubs carry child hashes only")
            if len(children) != 16:
                raise ValueError("branch stub must have exactly 16 child slots")
        else:
            raise ValueError(f"unknown sealed-node kind {kind}")
        self.path = path
        self.core = core
        self.children = children
        self.kind = kind
        self._hash: Optional[Hash] = None

    @classmethod
    def of_leaf(cls, leaf: "LeafNode") -> "SealedNode":
        return cls(leaf.path, cls.LEAF, core=value_commitment(leaf.value))

    @classmethod
    def of_branch(cls, branch: "BranchNode") -> "SealedNode":
        children = tuple(
            child.hash() if child is not None else None
            for child in branch.children
        )
        return cls((), cls.BRANCH, children=children)

    @classmethod
    def opaque(cls, subtree_hash: Hash) -> "SealedNode":
        return cls((), cls.OPAQUE, core=subtree_hash)

    def with_prefix(self, prefix: Nibbles) -> "SealedNode":
        """The same pruned data reached through ``prefix`` more nibbles —
        what branch collapse and extension merge produce."""
        if not prefix:
            return self
        if self.kind == SealedNode.OPAQUE:
            raise ValueError("opaque stubs cannot be re-pathed")
        return SealedNode(prefix + self.path, self.kind,
                          core=self.core, children=self.children)

    def covers(self, path: Nibbles) -> bool:
        """Whether ``path`` would end inside the pruned data (as opposed
        to provably diverging from, or fitting beside, the skeleton)."""
        if self.kind == SealedNode.LEAF:
            return path == self.path
        if self.kind == SealedNode.OPAQUE:
            return True
        own = self.path
        if len(path) <= len(own) or path[: len(own)] != own:
            return False
        assert self.children is not None
        return self.children[path[len(own)]] is not None

    def branch_core_hash(self) -> Hash:
        """The sealed branch's own hash (before the extension prefix)."""
        assert self.kind == SealedNode.BRANCH and self.children is not None
        return branch_hash(
            tuple(child if child is not None else _ZERO for child in self.children),
            None,
        )

    def child_hash_set(self) -> tuple[Hash, ...]:
        """All 16 child hashes with the zero hash for empty slots — the
        shape absence-proof evidence carries."""
        assert self.kind == SealedNode.BRANCH and self.children is not None
        return tuple(child if child is not None else _ZERO
                     for child in self.children)

    def hash(self) -> Hash:
        if self._hash is None:
            if self.kind == SealedNode.LEAF:
                assert self.core is not None
                self._hash = leaf_hash(self.path, self.core)
            elif self.kind == SealedNode.OPAQUE:
                assert self.core is not None
                self._hash = self.core
            else:
                core = self.branch_core_hash()
                self._hash = extension_hash(self.path, core) if self.path else core
        return self._hash

    def storage_bytes(self) -> int:
        # A stub is prunable to its 32-byte core on chain (the skeleton
        # is witness-reconstructible from any proof through it), and that
        # hash lives in the parent either way: accounted as zero.
        return 0

    def aggregates(self) -> tuple[int, int, int]:
        return self._AGG

    def __repr__(self) -> str:
        kind = {0: "leaf", 1: "branch", 2: "opaque"}[self.kind]
        return f"Sealed({kind}, path={self.path}, {self.hash().short()}…)"
