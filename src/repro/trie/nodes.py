"""Node types of the sealable Patricia trie.

Four node kinds, following Merkle-Patricia conventions plus the paper's
sealing extension:

* :class:`LeafNode` — remaining key path + value.
* :class:`ExtensionNode` — shared path segment compressing a chain of
  single-child branches.
* :class:`BranchNode` — 16 child slots and an optional value for a key
  terminating at the branch.
* :class:`SealedNode` — the paper's novelty: a stub that preserves a
  subtree's hash while its contents have been deleted from storage
  (§III-A).  Its accounted size is just the 32-byte hash that the parent
  must retain anyway.

Hashes are computed lazily and cached; mutation happens by rebuilding the
nodes along the touched path (the trie object owns that logic), so a cache
never goes stale.  The same dirty-path discipline carries the *aggregate*
caches: every node memoizes its subtree's ``(storage bytes, live nodes,
sealed stubs)`` totals, so the per-execution state-budget check reads one
cached tuple at the root instead of walking the whole trie — the walk
that used to dominate the soak profile (docs/PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.crypto.hashing import Hash, hash_concat
from repro.trie.nibbles import Nibbles, encode_nibbles, encoded_nibbles_len

_TAG_LEAF = b"\x00"
_TAG_EXTENSION = b"\x01"
_TAG_BRANCH = b"\x02"

#: Accounted per-node byte overhead (tag + bookkeeping), mirroring the
#: on-chain layout the paper's deployment uses inside its 10 MiB account.
NODE_OVERHEAD_BYTES = 8
HASH_BYTES = 32

Node = Union["LeafNode", "ExtensionNode", "BranchNode", "SealedNode"]

_ZERO = Hash.zero()


class LeafNode:
    """A terminal node holding ``value`` at the end of ``path``."""

    __slots__ = ("path", "value", "_hash")

    def __init__(self, path: Nibbles, value: bytes) -> None:
        self.path = path
        self.value = value
        self._hash: Optional[Hash] = None

    def hash(self) -> Hash:
        if self._hash is None:
            self._hash = hash_concat(_TAG_LEAF, encode_nibbles(self.path), self.value)
        return self._hash

    def storage_bytes(self) -> int:
        return NODE_OVERHEAD_BYTES + encoded_nibbles_len(self.path) + len(self.value)

    def aggregates(self) -> tuple[int, int, int]:
        """Subtree totals ``(storage_bytes, live_nodes, sealed_stubs)``."""
        return (self.storage_bytes(), 1, 0)

    def __repr__(self) -> str:
        return f"Leaf(path={self.path}, value={self.value[:8]!r})"


class ExtensionNode:
    """A path-compression node: ``path`` then ``child``."""

    __slots__ = ("path", "child", "_hash", "_agg")

    def __init__(self, path: Nibbles, child: Node) -> None:
        if not path:
            raise ValueError("extension path must be non-empty")
        self.path = path
        self.child = child
        self._hash: Optional[Hash] = None
        self._agg: Optional[tuple[int, int, int]] = None

    def hash(self) -> Hash:
        if self._hash is None:
            self._hash = hash_concat(_TAG_EXTENSION, encode_nibbles(self.path), self.child.hash())
        return self._hash

    def storage_bytes(self) -> int:
        return NODE_OVERHEAD_BYTES + encoded_nibbles_len(self.path) + HASH_BYTES

    def aggregates(self) -> tuple[int, int, int]:
        if self._agg is None:
            storage, live, sealed = self.child.aggregates()
            self._agg = (self.storage_bytes() + storage, 1 + live, sealed)
        return self._agg

    def __repr__(self) -> str:
        return f"Extension(path={self.path})"


class BranchNode:
    """A 16-way fan-out with an optional value terminating at the branch."""

    __slots__ = ("children", "value", "_hash", "_child_hashes", "_agg")

    def __init__(self, children: Optional[list[Optional[Node]]] = None, value: Optional[bytes] = None) -> None:
        self.children: list[Optional[Node]] = children if children is not None else [None] * 16
        if len(self.children) != 16:
            raise ValueError("branch must have exactly 16 child slots")
        self.value = value
        self._hash: Optional[Hash] = None
        #: Either the final cached tuple or a partially valid list with
        #: ``None`` holes (dirty slots from :meth:`replacing_child`).
        self._child_hashes: Optional[tuple[Hash, ...] | list[Optional[Hash]]] = None
        self._agg: Optional[tuple[int, int, int]] = None

    def replacing_child(self, index: int, child: Optional[Node]) -> "BranchNode":
        """A copy of this branch with one child slot replaced.

        This is the incremental-rehash path: the fifteen untouched
        sibling hashes are carried over from this node's cache (when
        warm) and only the dirty slot is recomputed — lazily, so a burst
        of writes to one subtree does not rehash intermediate states.
        """
        children = list(self.children)
        children[index] = child
        node = BranchNode(children, self.value)
        cached = self._child_hashes
        if cached is not None:
            patched: list[Optional[Hash]] = list(cached)
            patched[index] = None
            node._child_hashes = patched
        return node

    def replacing_value(self, value: Optional[bytes]) -> "BranchNode":
        """A copy with only the branch value changed.

        The children are untouched, so the child-hash cache transfers
        wholesale (the holes of a partially valid cache, if any, are
        filled lazily by :meth:`child_hashes`).
        """
        node = BranchNode(list(self.children), value)
        node._child_hashes = self._child_hashes
        return node

    def child_hashes(self) -> tuple[Hash, ...]:
        """All 16 child hashes (zero hash for empty slots), cached.

        Proof generation needs a branch's sibling hashes on every step;
        without the cache each proof re-hashes the same children over and
        over.  Safe to cache because mutation rebuilds the nodes along
        the touched path rather than editing them in place.
        """
        cached = self._child_hashes
        if type(cached) is tuple:
            return cached
        if cached is None:
            hashes = tuple(
                child.hash() if child is not None else _ZERO
                for child in self.children
            )
        else:  # partially valid list: fill the dirty holes
            children = self.children
            hashes = tuple(
                existing if existing is not None
                else (children[i].hash() if children[i] is not None else _ZERO)
                for i, existing in enumerate(cached)
            )
        self._child_hashes = hashes
        return hashes

    def hash(self) -> Hash:
        if self._hash is None:
            parts: list[bytes | Hash] = [_TAG_BRANCH]
            parts.extend(self.child_hashes())
            parts.append(self.value if self.value is not None else b"\xff")
            self._hash = hash_concat(*parts)
        return self._hash

    def child_count(self) -> int:
        return sum(1 for child in self.children if child is not None)

    def live_child_count(self) -> int:
        """Children that are present and not sealed."""
        return sum(
            1 for child in self.children
            if child is not None and not isinstance(child, SealedNode)
        )

    def storage_bytes(self) -> int:
        """Sparse on-chain layout: a 2-byte occupancy bitmap plus one
        hash per *present* child (matching the compact node encoding the
        deployment uses inside its 10 MiB account — empty slots cost
        nothing)."""
        value_bytes = len(self.value) if self.value is not None else 0
        bitmap_bytes = 2
        return (NODE_OVERHEAD_BYTES + bitmap_bytes
                + self.child_count() * HASH_BYTES + value_bytes)

    def aggregates(self) -> tuple[int, int, int]:
        if self._agg is None:
            storage = self.storage_bytes()
            live = 1
            sealed = 0
            for child in self.children:
                if child is not None:
                    c_storage, c_live, c_sealed = child.aggregates()
                    storage += c_storage
                    live += c_live
                    sealed += c_sealed
            self._agg = (storage, live, sealed)
        return self._agg

    def __repr__(self) -> str:
        slots = "".join("x" if c is not None else "." for c in self.children)
        return f"Branch([{slots}], value={'yes' if self.value is not None else 'no'})"


class SealedNode:
    """A pruned subtree: only the hash survives (§III-A).

    The node's contents are gone from storage; the hash keeps the root
    commitment intact.  Any traversal that reaches a sealed node must
    fail — which is exactly how the Guest Contract prevents double
    delivery after sealing a processed packet's receipt.
    """

    __slots__ = ("_hash",)

    _AGG = (0, 0, 1)

    def __init__(self, node_hash: Hash) -> None:
        self._hash = node_hash

    def hash(self) -> Hash:
        return self._hash

    def storage_bytes(self) -> int:
        # The hash lives in the parent either way; a sealed stub occupies
        # no extra storage in the on-chain layout.
        return 0

    def aggregates(self) -> tuple[int, int, int]:
        return self._AGG

    def __repr__(self) -> str:
        return f"Sealed({self._hash.short()}…)"
