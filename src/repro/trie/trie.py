"""The sealable Merkle trie (§III-A of the paper).

A 16-ary Merkle-Patricia trie with one extension over the textbook
structure: :meth:`SealableTrie.seal` prunes an entry from storage while
preserving the root commitment.  Sealed data is inaccessible — reads,
writes and proofs that would enter it fail with
:class:`~repro.errors.SealedNodeError` — which is exactly the mechanism
the Guest Contract uses to keep its state bounded while still preventing
double delivery of packets.  Keys that merely *diverge* from a sealed
stub's recorded path are provably absent and report
:class:`~repro.errors.KeyNotFoundError`, and inserts under such keys
split the stub like any leaf or extension.

Mutations rebuild the nodes along the touched path (structural sharing for
everything else), so cached hashes can never go stale.  The structural
invariant the delete/collapse path maintains — including around sealed
stubs, which are re-pathed rather than left stranded — is that the tree
shape always equals the canonical (never-sealed) trie of the same
mapping, so an incrementally maintained root matches a fresh rebuild.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.crypto.hashing import Hash
from repro.errors import KeyNotFoundError, SealedNodeError, TrieError
from repro.trie.nibbles import Nibbles, common_prefix_len, key_to_nibbles
from repro.trie.nodes import (
    BranchNode,
    ExtensionNode,
    LeafNode,
    Node,
    SealedNode,
    value_commitment,
)
from repro.trie.proof import (
    BranchStep,
    DivergentExtensionEvidence,
    DivergentLeafEvidence,
    EmptySlotEvidence,
    EmptyTrieEvidence,
    ExtensionStep,
    MembershipProof,
    NoBranchValueEvidence,
    NonMembershipProof,
    Step,
)


#: Proof-memo entries kept per trie handle before the cache resets.  The
#: memo only has to survive between mutations (every write clears it), so
#: a modest bound keeps memory flat under adversarial key churn.
_PROOF_MEMO_MAX = 4096


class SealableTrie:
    """Merkle-Patricia trie with sealing, proofs and storage accounting."""

    def __init__(self) -> None:
        self._root: Optional[Node] = None
        # Memoized proofs for the *current* root, keyed by (kind, key).
        # Relayers repeatedly prove the same commitments against a frozen
        # snapshot; recomputing the sibling-hash tuples dominates the
        # hot path otherwise.  Cleared on every mutation.
        self._proof_memo: dict[tuple[str, bytes], object] = {}
        # Mutation mirrors (state-sync journals / lockstep replicas).
        # Notified after each successful set/delete/seal; snapshots get
        # a fresh empty list, so historical views never re-notify.
        self._mirrors: list = []

    def attach_mirror(self, mirror) -> None:
        """Register an observer with ``on_op(kind, key, value)``, called
        after every successful mutation (see :mod:`repro.state.sync`)."""
        self._mirrors.append(mirror)

    def detach_mirror(self, mirror) -> None:
        self._mirrors.remove(mirror)

    def _notify(self, kind: str, key: bytes, value: bytes = b"") -> None:
        for mirror in self._mirrors:
            mirror.on_op(kind, key, value)

    # ------------------------------------------------------------------
    # Commitment
    # ------------------------------------------------------------------

    @property
    def root_hash(self) -> Hash:
        """The 32-byte commitment carried in guest block headers."""
        if self._root is None:
            return Hash.zero()
        return self._root.hash()

    def is_empty(self) -> bool:
        return self._root is None

    def snapshot(self) -> "SealableTrie":
        """An O(1) frozen view of the current state.

        Mutations copy the nodes along the touched path and share the
        rest (persistent-style), so old roots remain valid forever: a
        snapshot is just a second trie handle onto today's root.  Chains
        use this to serve proofs against *historical* block roots.
        """
        view = SealableTrie()
        view._root = self._root
        return view

    @staticmethod
    def _sealed_miss(node: SealedNode, path: Nibbles, key: bytes,
                     verb: str) -> Exception:
        """The error for an operation that ran into a sealed stub.

        Entering the pruned data is a :class:`SealedNodeError`; a key
        that provably diverges from the stub's recorded path is simply
        absent, the same answer a never-sealed trie would give.
        """
        if node.covers(path):
            return SealedNodeError(f"{verb} of {key.hex()} hit a sealed node")
        return KeyNotFoundError(f"key {key.hex()} not in trie")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        """Return the value stored under ``key``.

        Raises :class:`KeyNotFoundError` if absent and
        :class:`SealedNodeError` if the lookup path enters a sealed region.
        """
        node = self._root
        path = key_to_nibbles(key)
        while True:
            if node is None:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            if isinstance(node, SealedNode):
                raise self._sealed_miss(node, path, key, "lookup")
            if isinstance(node, LeafNode):
                if node.path == path:
                    return node.value
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            if isinstance(node, ExtensionNode):
                if path[: len(node.path)] != node.path:
                    raise KeyNotFoundError(f"key {key.hex()} not in trie")
                path = path[len(node.path):]
                node = node.child
                continue
            # BranchNode
            if not path:
                if node.value is None:
                    raise KeyNotFoundError(f"key {key.hex()} not in trie")
                return node.value
            node, path = node.children[path[0]], path[1:]

    def contains(self, key: bytes) -> bool:
        """``True`` iff ``key`` is present and readable (not sealed)."""
        try:
            self.get(key)
            return True
        except KeyNotFoundError:
            return False

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key -> value``.

        Raises :class:`SealedNodeError` if the write path enters a sealed
        region (sealed entries can never be resurrected — the double-
        delivery guard of §III-A).
        """
        if not isinstance(value, bytes):
            raise TrieError("trie values must be bytes")
        self._root = self._set(self._root, key_to_nibbles(key), value)
        self._proof_memo.clear()
        if self._mirrors:
            self._notify("set", key, value)

    def _set(self, node: Optional[Node], path: Nibbles, value: bytes) -> Node:
        if node is None:
            return LeafNode(path, value)

        if isinstance(node, SealedNode):
            return self._split_sealed(node, path, value)

        if isinstance(node, LeafNode):
            if node.path == path:
                return LeafNode(path, value)
            return self._split_leaf(node, path, value)

        if isinstance(node, ExtensionNode):
            prefix = common_prefix_len(node.path, path)
            if prefix == len(node.path):
                child = self._set(node.child, path[prefix:], value)
                return ExtensionNode(node.path, child)
            return self._split_extension(node, prefix, path, value)

        # BranchNode — rebuild via replacing_child/replacing_value so the
        # untouched sibling hashes carry over (incremental rehash).
        if not path:
            return node.replacing_value(value)
        return node.replacing_child(
            path[0], self._set(node.children[path[0]], path[1:], value)
        )

    def _split_leaf(self, leaf: LeafNode, path: Nibbles, value: bytes) -> Node:
        """Split a leaf whose path diverges from the inserted key."""
        prefix = common_prefix_len(leaf.path, path)
        branch = BranchNode()
        old_rest, new_rest = leaf.path[prefix:], path[prefix:]
        if old_rest:
            branch.children[old_rest[0]] = LeafNode(old_rest[1:], leaf.value)
        else:
            branch.value = leaf.value
        if new_rest:
            branch.children[new_rest[0]] = LeafNode(new_rest[1:], value)
        else:
            branch.value = value
        if prefix:
            return ExtensionNode(path[:prefix], branch)
        return branch

    def _split_extension(self, ext: ExtensionNode, prefix: int, path: Nibbles, value: bytes) -> Node:
        """Split an extension at the divergence point ``prefix``."""
        branch = BranchNode()
        ext_rest = ext.path[prefix:]
        # Re-attach the extension's tail under its first diverging nibble.
        if len(ext_rest) == 1:
            branch.children[ext_rest[0]] = ext.child
        else:
            branch.children[ext_rest[0]] = ExtensionNode(ext_rest[1:], ext.child)
        new_rest = path[prefix:]
        if new_rest:
            branch.children[new_rest[0]] = LeafNode(new_rest[1:], value)
        else:
            branch.value = value
        if prefix:
            return ExtensionNode(path[:prefix], branch)
        return branch

    def _split_sealed(self, node: SealedNode, path: Nibbles, value: bytes) -> Node:
        """Insert next to a sealed stub the key provably does not enter.

        A stub whose recorded path diverges from the key is re-pathed
        under a divergence branch — the same split a live leaf or
        extension gets; an empty slot of a sealed branch re-materializes
        the branch around the new entry.  Either way the result is the
        shape a fresh rebuild of the same mapping would produce, so
        sealing never distorts the canonical structure.  Writing *into*
        pruned data (the exact sealed key, or an occupied slot's opaque
        subtree) stays forbidden: sealed entries can never be
        resurrected (§III-A).
        """
        if node.covers(path):
            raise SealedNodeError("write path hit a sealed node")
        own = node.path
        prefix = common_prefix_len(own, path)
        if prefix == len(own):
            if node.kind == SealedNode.BRANCH and len(path) > len(own):
                return self._expand_sealed_branch(node, path, value)
            # A LEAF stub's path is a strict prefix of the key (the
            # sealed value would have to move to a branch-value slot the
            # sealed layout cannot represent), or the key ends exactly at
            # a sealed branch.  Hashed fixed-length store keys never
            # produce prefix keys.
            raise SealedNodeError("write path hit a sealed node")
        stub_rest, new_rest = own[prefix:], path[prefix:]
        branch = BranchNode()
        branch.children[stub_rest[0]] = SealedNode(
            stub_rest[1:], node.kind, core=node.core, children=node.children)
        if new_rest:
            branch.children[new_rest[0]] = LeafNode(new_rest[1:], value)
        else:
            branch.value = value
        if prefix:
            return ExtensionNode(path[:prefix], branch)
        return branch

    def _expand_sealed_branch(self, node: SealedNode, path: Nibbles,
                              value: bytes) -> Node:
        """Insert into an empty slot of a sealed branch.

        The branch is re-materialized with opaque stubs in its occupied
        slots (their subtree hashes are all the stub retained) and the
        new leaf beside them.  The opaque stubs are permanent fixtures —
        no operation can remove one — so the branch always keeps at
        least two occupants and collapse can never strand an opaque stub
        as a lone child it cannot re-path.
        """
        assert node.children is not None
        branch = BranchNode()
        for index, child in enumerate(node.children):
            if child is not None:
                branch.children[index] = SealedNode.opaque(child)
        rest = path[len(node.path):]
        branch.children[rest[0]] = LeafNode(rest[1:], value)
        if node.path:
            return ExtensionNode(node.path, branch)
        return branch

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: bytes) -> None:
        """Remove ``key`` (collapsing redundant nodes).

        Unlike :meth:`seal`, deletion changes the root commitment; it is
        what the IBC module uses to clear packet commitments after
        acknowledgement.
        """
        self._root = self._delete(self._root, key_to_nibbles(key), key)
        self._proof_memo.clear()
        if self._mirrors:
            self._notify("delete", key)

    def _delete(self, node: Optional[Node], path: Nibbles, key: bytes) -> Optional[Node]:
        if node is None:
            raise KeyNotFoundError(f"key {key.hex()} not in trie")
        if isinstance(node, SealedNode):
            raise self._sealed_miss(node, path, key, "delete")

        if isinstance(node, LeafNode):
            if node.path == path:
                return None
            raise KeyNotFoundError(f"key {key.hex()} not in trie")

        if isinstance(node, ExtensionNode):
            if path[: len(node.path)] != node.path:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            child = self._delete(node.child, path[len(node.path):], key)
            if child is None:
                return None
            return self._merge_extension(node.path, child)

        # BranchNode
        if not path:
            if node.value is None:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            return self._collapse_branch(node.replacing_value(None))
        new_child = self._delete(node.children[path[0]], path[1:], key)
        return self._collapse_branch(node.replacing_child(path[0], new_child))

    def _merge_extension(self, path: Nibbles, child: Node) -> Node:
        """Normalize an extension so no extension points at a leaf,
        another extension, or a sealed stub (stubs absorb the prefix
        into their recorded path instead)."""
        if isinstance(child, LeafNode):
            return LeafNode(path + child.path, child.value)
        if isinstance(child, ExtensionNode):
            return ExtensionNode(path + child.path, child.child)
        if isinstance(child, SealedNode):
            return child.with_prefix(path)
        return ExtensionNode(path, child)

    def _collapse_branch(self, branch: BranchNode) -> Optional[Node]:
        """Collapse a branch left with at most one occupant after delete.

        Takes (and may return) the already-rebuilt branch so its carried
        child-hash cache survives when no collapse applies.
        """
        children = branch.children
        occupied = [i for i, child in enumerate(children) if child is not None]
        if branch.value is not None:
            if not occupied:
                return LeafNode((), branch.value)
            return branch
        if not occupied:
            return None
        if len(occupied) == 1:
            index = occupied[0]
            only = children[index]
            assert only is not None
            return self._merge_extension((index,), only)
        if branch.live_child_count() == 0:
            # Every remaining occupant is sealed (e.g. the one live leaf
            # of a re-materialized sealed branch was deleted): collapse
            # back into a branch stub.  Hash-neutral, but the branch node
            # leaves storage again.
            return SealedNode.of_branch(branch)
        return branch

    # ------------------------------------------------------------------
    # Sealing (the paper's contribution)
    # ------------------------------------------------------------------

    def seal(self, key: bytes) -> None:
        """Seal the entry at ``key``: prune it while preserving the root.

        The leaf is replaced by a hash-only stub; ancestors whose children
        are all sealed collapse into stubs as well (§III-A).  After
        sealing, the entry can never be read, re-written or proven again.
        """
        self._root = self._seal(self._root, key_to_nibbles(key), key)
        self._proof_memo.clear()
        if self._mirrors:
            self._notify("seal", key)

    def _seal(self, node: Optional[Node], path: Nibbles, key: bytes) -> Node:
        if node is None:
            raise KeyNotFoundError(f"key {key.hex()} not in trie")
        if isinstance(node, SealedNode):
            if node.covers(path):
                raise SealedNodeError(
                    f"seal path for {key.hex()} hit an already sealed node")
            raise KeyNotFoundError(f"key {key.hex()} not in trie")

        if isinstance(node, LeafNode):
            if node.path != path:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            return SealedNode.of_leaf(node)

        if isinstance(node, ExtensionNode):
            if path[: len(node.path)] != node.path:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            child = self._seal(node.child, path[len(node.path):], key)
            if isinstance(child, SealedNode):
                # The whole extension's subtree is sealed: fold the
                # extension path into the stub, preserving its hash.
                return child.with_prefix(node.path)
            return ExtensionNode(node.path, child)

        # BranchNode
        if not path:
            if node.value is None:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            raise TrieError(
                "cannot seal a value stored at a branch; provable stores "
                "hash keys to fixed length so values terminate at leaves"
            )
        sealed_child = self._seal(node.children[path[0]], path[1:], key)
        branch = node.replacing_child(path[0], sealed_child)
        if branch.value is None and branch.live_child_count() == 0:
            return SealedNode.of_branch(branch)
        return branch

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------

    def prove(self, key: bytes) -> MembershipProof:
        """Generate a membership proof for ``key``.

        Raises if the key is absent or its path enters a sealed region
        (sealed data can no longer be proven — by design).
        """
        memo_key = ("m", key)
        cached = self._proof_memo.get(memo_key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        proof = self._prove(key)
        if len(self._proof_memo) >= _PROOF_MEMO_MAX:
            self._proof_memo.clear()
        self._proof_memo[memo_key] = proof
        return proof

    def _prove(self, key: bytes) -> MembershipProof:
        steps: list[Step] = []
        node = self._root
        path = key_to_nibbles(key)
        while True:
            if node is None:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            if isinstance(node, SealedNode):
                raise self._sealed_miss(node, path, key, "proof")
            if isinstance(node, LeafNode):
                if node.path != path:
                    raise KeyNotFoundError(f"key {key.hex()} not in trie")
                return MembershipProof(
                    key=key, value=node.value, steps=tuple(steps), leaf_path=node.path,
                )
            if isinstance(node, ExtensionNode):
                if path[: len(node.path)] != node.path:
                    raise KeyNotFoundError(f"key {key.hex()} not in trie")
                steps.append(ExtensionStep(node.path))
                path = path[len(node.path):]
                node = node.child
                continue
            # BranchNode
            if not path:
                raise TrieError(
                    "cannot prove a branch-value entry; provable stores "
                    "hash keys to fixed length so values terminate at leaves"
                )
            index = path[0]
            steps.append(BranchStep(
                index=index,
                siblings=self._sibling_hashes(node, index),
                value=node.value,
            ))
            node, path = node.children[index], path[1:]

    def prove_absence(self, key: bytes) -> NonMembershipProof:
        """Generate a non-membership proof for ``key``.

        Raises :class:`TrieError` if the key *is* present, and
        :class:`SealedNodeError` if its path enters a sealed region
        (absence through sealed data cannot be shown).
        """
        memo_key = ("a", key)
        cached = self._proof_memo.get(memo_key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        proof = self._prove_absence(key)
        if len(self._proof_memo) >= _PROOF_MEMO_MAX:
            self._proof_memo.clear()
        self._proof_memo[memo_key] = proof
        return proof

    def _prove_absence(self, key: bytes) -> NonMembershipProof:
        steps: list[Step] = []
        node = self._root
        path = key_to_nibbles(key)
        while True:
            if node is None:
                if steps:
                    raise TrieError("internal: descended into an empty child")
                return NonMembershipProof(key=key, steps=(), evidence=EmptyTrieEvidence())
            if isinstance(node, SealedNode):
                if node.covers(path):
                    raise SealedNodeError(
                        f"absence proof for {key.hex()} hit a sealed node")
                # The key provably diverges from (or fits beside) the
                # stub's surviving skeleton, which is the evidence.
                if node.kind == SealedNode.LEAF:
                    assert node.core is not None
                    return NonMembershipProof(
                        key=key, steps=tuple(steps),
                        evidence=DivergentLeafEvidence(
                            path=node.path, commitment=node.core),
                    )
                # BRANCH kind (an OPAQUE stub covers every path).
                own = node.path
                if common_prefix_len(own, path) < len(own):
                    return NonMembershipProof(
                        key=key, steps=tuple(steps),
                        evidence=DivergentExtensionEvidence(
                            path=own, child=node.branch_core_hash()),
                    )
                if own:
                    steps.append(ExtensionStep(own))
                if len(path) == len(own):
                    return NonMembershipProof(
                        key=key, steps=tuple(steps),
                        evidence=NoBranchValueEvidence(
                            children=node.child_hash_set()),
                    )
                return NonMembershipProof(
                    key=key, steps=tuple(steps),
                    evidence=EmptySlotEvidence(
                        children=node.child_hash_set(), value=None),
                )
            if isinstance(node, LeafNode):
                if node.path == path:
                    raise TrieError(f"key {key.hex()} is present; cannot prove absence")
                return NonMembershipProof(
                    key=key, steps=tuple(steps),
                    evidence=DivergentLeafEvidence(
                        path=node.path, commitment=value_commitment(node.value)),
                )
            if isinstance(node, ExtensionNode):
                prefix = common_prefix_len(node.path, path)
                if prefix < len(node.path):
                    return NonMembershipProof(
                        key=key, steps=tuple(steps),
                        evidence=DivergentExtensionEvidence(
                            path=node.path, child=node.child.hash(),
                        ),
                    )
                steps.append(ExtensionStep(node.path))
                path = path[len(node.path):]
                node = node.child
                continue
            # BranchNode
            if not path:
                if node.value is not None:
                    raise TrieError(f"key {key.hex()} is present; cannot prove absence")
                return NonMembershipProof(
                    key=key, steps=tuple(steps),
                    evidence=NoBranchValueEvidence(children=self._all_child_hashes(node)),
                )
            index = path[0]
            child = node.children[index]
            if child is None:
                return NonMembershipProof(
                    key=key, steps=tuple(steps),
                    evidence=EmptySlotEvidence(
                        children=self._all_child_hashes(node), value=node.value,
                    ),
                )
            steps.append(BranchStep(
                index=index,
                siblings=self._sibling_hashes(node, index),
                value=node.value,
            ))
            node, path = child, path[1:]

    @staticmethod
    def _sibling_hashes(branch: BranchNode, index: int) -> tuple[Hash, ...]:
        hashes = branch.child_hashes()
        return hashes[:index] + hashes[index + 1:]

    @staticmethod
    def _all_child_hashes(branch: BranchNode) -> tuple[Hash, ...]:
        return branch.child_hashes()

    # ------------------------------------------------------------------
    # Storage accounting (§V-D)
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        """Number of live (unsealed) nodes in storage.

        O(1) for a clean trie: reads the root's cached subtree aggregate
        (O(dirty path) right after a mutation).  The state-budget check
        runs this on every contract execution, so the full-trie walk it
        replaced dominated the soak wall-clock profile.
        """
        if self._root is None:
            return 0
        return self._root.aggregates()[1]

    def sealed_count(self) -> int:
        """Number of sealed stubs currently embedded in live parents."""
        if self._root is None:
            return 0
        return self._root.aggregates()[2]

    def storage_bytes(self) -> int:
        """Bytes of live node storage, per the accounted on-chain layout."""
        if self._root is None:
            return 0
        return self._root.aggregates()[0]

    def recount_aggregates(self) -> tuple[int, int, int]:
        """Recompute ``(storage_bytes, live_nodes, sealed_stubs)`` by a
        full walk that ignores every per-node aggregate cache.

        This is the differential oracle for the cached aggregates: after
        any interleaving of set/delete/seal the cached totals must equal
        this recount exactly (tests/test_trie_properties.py asserts it).
        """
        def walk(node: Optional[Node]) -> tuple[int, int, int]:
            if node is None:
                return (0, 0, 0)
            if isinstance(node, SealedNode):
                return (node.storage_bytes(), 0, 1)
            if isinstance(node, LeafNode):
                return (node.storage_bytes(), 1, 0)
            if isinstance(node, ExtensionNode):
                storage, live, sealed = walk(node.child)
                return (node.storage_bytes() + storage, 1 + live, sealed)
            storage, live, sealed = node.storage_bytes(), 1, 0
            for child in node.children:
                if child is not None:
                    c_storage, c_live, c_sealed = walk(child)
                    storage += c_storage
                    live += c_live
                    sealed += c_sealed
            return (storage, live, sealed)

        return walk(self._root)

    def _iter_live_nodes(self) -> Iterator[Node]:
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, SealedNode):
                continue
            yield node
            if isinstance(node, ExtensionNode):
                stack.append(node.child)
            elif isinstance(node, BranchNode):
                stack.extend(child for child in node.children if child is not None)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate live ``(key, value)`` pairs with even-nibble keys.

        Sealed subtrees are skipped (their contents are gone); entries
        whose accumulated path has odd nibble count cannot be expressed
        as bytes and are skipped as well (they do not occur for
        byte-string keys).
        """
        def walk(node: Optional[Node], prefix: Nibbles) -> Iterator[tuple[Nibbles, bytes]]:
            if node is None or isinstance(node, SealedNode):
                return
            if isinstance(node, LeafNode):
                yield prefix + node.path, node.value
                return
            if isinstance(node, ExtensionNode):
                yield from walk(node.child, prefix + node.path)
                return
            if node.value is not None:
                yield prefix, node.value
            for i, child in enumerate(node.children):
                yield from walk(child, prefix + (i,))

        from repro.trie.nibbles import nibbles_to_key
        for path, value in walk(self._root, ()):
            if len(path) % 2 == 0:
                yield nibbles_to_key(path), value

    def __len__(self) -> int:
        return sum(1 for _ in self.items())
