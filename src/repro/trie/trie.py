"""The sealable Merkle trie (§III-A of the paper).

A 16-ary Merkle-Patricia trie with one extension over the textbook
structure: :meth:`SealableTrie.seal` prunes an entry from storage while
preserving the root commitment.  Sealed regions become inaccessible —
reads, writes and proofs through them fail with
:class:`~repro.errors.SealedNodeError` — which is exactly the mechanism
the Guest Contract uses to keep its state bounded while still preventing
double delivery of packets.

Mutations rebuild the nodes along the touched path (structural sharing for
everything else), so cached hashes can never go stale.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.crypto.hashing import Hash
from repro.errors import KeyNotFoundError, SealedNodeError, TrieError
from repro.trie.nibbles import Nibbles, common_prefix_len, key_to_nibbles
from repro.trie.nodes import (
    BranchNode,
    ExtensionNode,
    LeafNode,
    Node,
    SealedNode,
)
from repro.trie.proof import (
    BranchStep,
    DivergentExtensionEvidence,
    DivergentLeafEvidence,
    EmptySlotEvidence,
    EmptyTrieEvidence,
    ExtensionStep,
    MembershipProof,
    NoBranchValueEvidence,
    NonMembershipProof,
    Step,
)


#: Proof-memo entries kept per trie handle before the cache resets.  The
#: memo only has to survive between mutations (every write clears it), so
#: a modest bound keeps memory flat under adversarial key churn.
_PROOF_MEMO_MAX = 4096


class SealableTrie:
    """Merkle-Patricia trie with sealing, proofs and storage accounting."""

    def __init__(self) -> None:
        self._root: Optional[Node] = None
        # Memoized proofs for the *current* root, keyed by (kind, key).
        # Relayers repeatedly prove the same commitments against a frozen
        # snapshot; recomputing the sibling-hash tuples dominates the
        # hot path otherwise.  Cleared on every mutation.
        self._proof_memo: dict[tuple[str, bytes], object] = {}

    # ------------------------------------------------------------------
    # Commitment
    # ------------------------------------------------------------------

    @property
    def root_hash(self) -> Hash:
        """The 32-byte commitment carried in guest block headers."""
        if self._root is None:
            return Hash.zero()
        return self._root.hash()

    def is_empty(self) -> bool:
        return self._root is None

    def snapshot(self) -> "SealableTrie":
        """An O(1) frozen view of the current state.

        Mutations copy the nodes along the touched path and share the
        rest (persistent-style), so old roots remain valid forever: a
        snapshot is just a second trie handle onto today's root.  Chains
        use this to serve proofs against *historical* block roots.
        """
        view = SealableTrie()
        view._root = self._root
        return view

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        """Return the value stored under ``key``.

        Raises :class:`KeyNotFoundError` if absent and
        :class:`SealedNodeError` if the lookup path enters a sealed region.
        """
        node = self._root
        path = key_to_nibbles(key)
        while True:
            if node is None:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            if isinstance(node, SealedNode):
                raise SealedNodeError(f"lookup of {key.hex()} hit a sealed node")
            if isinstance(node, LeafNode):
                if node.path == path:
                    return node.value
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            if isinstance(node, ExtensionNode):
                if path[: len(node.path)] != node.path:
                    raise KeyNotFoundError(f"key {key.hex()} not in trie")
                path = path[len(node.path):]
                node = node.child
                continue
            # BranchNode
            if not path:
                if node.value is None:
                    raise KeyNotFoundError(f"key {key.hex()} not in trie")
                return node.value
            node, path = node.children[path[0]], path[1:]

    def contains(self, key: bytes) -> bool:
        """``True`` iff ``key`` is present and readable (not sealed)."""
        try:
            self.get(key)
            return True
        except KeyNotFoundError:
            return False

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key -> value``.

        Raises :class:`SealedNodeError` if the write path enters a sealed
        region (sealed entries can never be resurrected — the double-
        delivery guard of §III-A).
        """
        if not isinstance(value, bytes):
            raise TrieError("trie values must be bytes")
        self._root = self._set(self._root, key_to_nibbles(key), value)
        self._proof_memo.clear()

    def _set(self, node: Optional[Node], path: Nibbles, value: bytes) -> Node:
        if node is None:
            return LeafNode(path, value)

        if isinstance(node, SealedNode):
            raise SealedNodeError("write path hit a sealed node")

        if isinstance(node, LeafNode):
            if node.path == path:
                return LeafNode(path, value)
            return self._split_leaf(node, path, value)

        if isinstance(node, ExtensionNode):
            prefix = common_prefix_len(node.path, path)
            if prefix == len(node.path):
                child = self._set(node.child, path[prefix:], value)
                return ExtensionNode(node.path, child)
            return self._split_extension(node, prefix, path, value)

        # BranchNode — rebuild via replacing_child/replacing_value so the
        # untouched sibling hashes carry over (incremental rehash).
        if not path:
            return node.replacing_value(value)
        return node.replacing_child(
            path[0], self._set(node.children[path[0]], path[1:], value)
        )

    def _split_leaf(self, leaf: LeafNode, path: Nibbles, value: bytes) -> Node:
        """Split a leaf whose path diverges from the inserted key."""
        prefix = common_prefix_len(leaf.path, path)
        branch = BranchNode()
        old_rest, new_rest = leaf.path[prefix:], path[prefix:]
        if old_rest:
            branch.children[old_rest[0]] = LeafNode(old_rest[1:], leaf.value)
        else:
            branch.value = leaf.value
        if new_rest:
            branch.children[new_rest[0]] = LeafNode(new_rest[1:], value)
        else:
            branch.value = value
        if prefix:
            return ExtensionNode(path[:prefix], branch)
        return branch

    def _split_extension(self, ext: ExtensionNode, prefix: int, path: Nibbles, value: bytes) -> Node:
        """Split an extension at the divergence point ``prefix``."""
        branch = BranchNode()
        ext_rest = ext.path[prefix:]
        # Re-attach the extension's tail under its first diverging nibble.
        if len(ext_rest) == 1:
            branch.children[ext_rest[0]] = ext.child
        else:
            branch.children[ext_rest[0]] = ExtensionNode(ext_rest[1:], ext.child)
        new_rest = path[prefix:]
        if new_rest:
            branch.children[new_rest[0]] = LeafNode(new_rest[1:], value)
        else:
            branch.value = value
        if prefix:
            return ExtensionNode(path[:prefix], branch)
        return branch

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: bytes) -> None:
        """Remove ``key`` (collapsing redundant nodes).

        Unlike :meth:`seal`, deletion changes the root commitment; it is
        what the IBC module uses to clear packet commitments after
        acknowledgement.
        """
        self._root = self._delete(self._root, key_to_nibbles(key), key)
        self._proof_memo.clear()

    def _delete(self, node: Optional[Node], path: Nibbles, key: bytes) -> Optional[Node]:
        if node is None:
            raise KeyNotFoundError(f"key {key.hex()} not in trie")
        if isinstance(node, SealedNode):
            raise SealedNodeError("delete path hit a sealed node")

        if isinstance(node, LeafNode):
            if node.path == path:
                return None
            raise KeyNotFoundError(f"key {key.hex()} not in trie")

        if isinstance(node, ExtensionNode):
            if path[: len(node.path)] != node.path:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            child = self._delete(node.child, path[len(node.path):], key)
            if child is None:
                return None
            return self._merge_extension(node.path, child)

        # BranchNode
        if not path:
            if node.value is None:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            return self._collapse_branch(node.replacing_value(None))
        new_child = self._delete(node.children[path[0]], path[1:], key)
        return self._collapse_branch(node.replacing_child(path[0], new_child))

    def _merge_extension(self, path: Nibbles, child: Node) -> Node:
        """Normalize an extension so no extension points at a leaf or
        another extension."""
        if isinstance(child, LeafNode):
            return LeafNode(path + child.path, child.value)
        if isinstance(child, ExtensionNode):
            return ExtensionNode(path + child.path, child.child)
        return ExtensionNode(path, child)

    def _collapse_branch(self, branch: BranchNode) -> Optional[Node]:
        """Collapse a branch left with at most one occupant after delete.

        Takes (and may return) the already-rebuilt branch so its carried
        child-hash cache survives when no collapse applies.
        """
        children = branch.children
        occupied = [i for i, child in enumerate(children) if child is not None]
        if branch.value is not None:
            if not occupied:
                return LeafNode((), branch.value)
            return branch
        if not occupied:
            return None
        if len(occupied) == 1:
            index = occupied[0]
            only = children[index]
            assert only is not None
            if isinstance(only, SealedNode):
                # Cannot merge into a sealed child (its hash is fixed);
                # keep the branch as-is to preserve commitments.
                return branch
            return self._merge_extension((index,), only)
        return branch

    # ------------------------------------------------------------------
    # Sealing (the paper's contribution)
    # ------------------------------------------------------------------

    def seal(self, key: bytes) -> None:
        """Seal the entry at ``key``: prune it while preserving the root.

        The leaf is replaced by a hash-only stub; ancestors whose children
        are all sealed collapse into stubs as well (§III-A).  After
        sealing, the entry can never be read, re-written or proven again.
        """
        self._root = self._seal(self._root, key_to_nibbles(key), key)
        self._proof_memo.clear()

    def _seal(self, node: Optional[Node], path: Nibbles, key: bytes) -> Node:
        if node is None:
            raise KeyNotFoundError(f"key {key.hex()} not in trie")
        if isinstance(node, SealedNode):
            raise SealedNodeError(f"seal path for {key.hex()} hit an already sealed node")

        if isinstance(node, LeafNode):
            if node.path != path:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            return SealedNode(node.hash())

        if isinstance(node, ExtensionNode):
            if path[: len(node.path)] != node.path:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            child = self._seal(node.child, path[len(node.path):], key)
            if isinstance(child, SealedNode):
                # The whole extension's subtree is sealed: seal the
                # extension too, preserving its own hash.
                new_ext = ExtensionNode(node.path, child)
                return SealedNode(new_ext.hash())
            return ExtensionNode(node.path, child)

        # BranchNode
        if not path:
            if node.value is None:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            raise TrieError(
                "cannot seal a value stored at a branch; provable stores "
                "hash keys to fixed length so values terminate at leaves"
            )
        sealed_child = self._seal(node.children[path[0]], path[1:], key)
        branch = node.replacing_child(path[0], sealed_child)
        if branch.value is None and branch.live_child_count() == 0:
            return SealedNode(branch.hash())
        return branch

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------

    def prove(self, key: bytes) -> MembershipProof:
        """Generate a membership proof for ``key``.

        Raises if the key is absent or its path enters a sealed region
        (sealed data can no longer be proven — by design).
        """
        memo_key = ("m", key)
        cached = self._proof_memo.get(memo_key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        proof = self._prove(key)
        if len(self._proof_memo) >= _PROOF_MEMO_MAX:
            self._proof_memo.clear()
        self._proof_memo[memo_key] = proof
        return proof

    def _prove(self, key: bytes) -> MembershipProof:
        steps: list[Step] = []
        node = self._root
        path = key_to_nibbles(key)
        while True:
            if node is None:
                raise KeyNotFoundError(f"key {key.hex()} not in trie")
            if isinstance(node, SealedNode):
                raise SealedNodeError(f"proof path for {key.hex()} hit a sealed node")
            if isinstance(node, LeafNode):
                if node.path != path:
                    raise KeyNotFoundError(f"key {key.hex()} not in trie")
                return MembershipProof(
                    key=key, value=node.value, steps=tuple(steps), leaf_path=node.path,
                )
            if isinstance(node, ExtensionNode):
                if path[: len(node.path)] != node.path:
                    raise KeyNotFoundError(f"key {key.hex()} not in trie")
                steps.append(ExtensionStep(node.path))
                path = path[len(node.path):]
                node = node.child
                continue
            # BranchNode
            if not path:
                raise TrieError(
                    "cannot prove a branch-value entry; provable stores "
                    "hash keys to fixed length so values terminate at leaves"
                )
            index = path[0]
            steps.append(BranchStep(
                index=index,
                siblings=self._sibling_hashes(node, index),
                value=node.value,
            ))
            node, path = node.children[index], path[1:]

    def prove_absence(self, key: bytes) -> NonMembershipProof:
        """Generate a non-membership proof for ``key``.

        Raises :class:`TrieError` if the key *is* present, and
        :class:`SealedNodeError` if its path enters a sealed region
        (absence through sealed data cannot be shown).
        """
        memo_key = ("a", key)
        cached = self._proof_memo.get(memo_key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        proof = self._prove_absence(key)
        if len(self._proof_memo) >= _PROOF_MEMO_MAX:
            self._proof_memo.clear()
        self._proof_memo[memo_key] = proof
        return proof

    def _prove_absence(self, key: bytes) -> NonMembershipProof:
        steps: list[Step] = []
        node = self._root
        path = key_to_nibbles(key)
        while True:
            if node is None:
                if steps:
                    raise TrieError("internal: descended into an empty child")
                return NonMembershipProof(key=key, steps=(), evidence=EmptyTrieEvidence())
            if isinstance(node, SealedNode):
                raise SealedNodeError(f"absence proof for {key.hex()} hit a sealed node")
            if isinstance(node, LeafNode):
                if node.path == path:
                    raise TrieError(f"key {key.hex()} is present; cannot prove absence")
                return NonMembershipProof(
                    key=key, steps=tuple(steps),
                    evidence=DivergentLeafEvidence(path=node.path, value=node.value),
                )
            if isinstance(node, ExtensionNode):
                prefix = common_prefix_len(node.path, path)
                if prefix < len(node.path):
                    return NonMembershipProof(
                        key=key, steps=tuple(steps),
                        evidence=DivergentExtensionEvidence(
                            path=node.path, child=node.child.hash(),
                        ),
                    )
                steps.append(ExtensionStep(node.path))
                path = path[len(node.path):]
                node = node.child
                continue
            # BranchNode
            if not path:
                if node.value is not None:
                    raise TrieError(f"key {key.hex()} is present; cannot prove absence")
                return NonMembershipProof(
                    key=key, steps=tuple(steps),
                    evidence=NoBranchValueEvidence(children=self._all_child_hashes(node)),
                )
            index = path[0]
            child = node.children[index]
            if child is None:
                return NonMembershipProof(
                    key=key, steps=tuple(steps),
                    evidence=EmptySlotEvidence(
                        children=self._all_child_hashes(node), value=node.value,
                    ),
                )
            steps.append(BranchStep(
                index=index,
                siblings=self._sibling_hashes(node, index),
                value=node.value,
            ))
            node, path = child, path[1:]

    @staticmethod
    def _sibling_hashes(branch: BranchNode, index: int) -> tuple[Hash, ...]:
        hashes = branch.child_hashes()
        return hashes[:index] + hashes[index + 1:]

    @staticmethod
    def _all_child_hashes(branch: BranchNode) -> tuple[Hash, ...]:
        return branch.child_hashes()

    # ------------------------------------------------------------------
    # Storage accounting (§V-D)
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        """Number of live (unsealed) nodes in storage.

        O(1) for a clean trie: reads the root's cached subtree aggregate
        (O(dirty path) right after a mutation).  The state-budget check
        runs this on every contract execution, so the full-trie walk it
        replaced dominated the soak wall-clock profile.
        """
        if self._root is None:
            return 0
        return self._root.aggregates()[1]

    def sealed_count(self) -> int:
        """Number of sealed stubs currently embedded in live parents."""
        if self._root is None:
            return 0
        return self._root.aggregates()[2]

    def storage_bytes(self) -> int:
        """Bytes of live node storage, per the accounted on-chain layout."""
        if self._root is None:
            return 0
        return self._root.aggregates()[0]

    def _iter_live_nodes(self) -> Iterator[Node]:
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, SealedNode):
                continue
            yield node
            if isinstance(node, ExtensionNode):
                stack.append(node.child)
            elif isinstance(node, BranchNode):
                stack.extend(child for child in node.children if child is not None)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate live ``(key, value)`` pairs with even-nibble keys.

        Sealed subtrees are skipped (their contents are gone); entries
        whose accumulated path has odd nibble count cannot be expressed
        as bytes and are skipped as well (they do not occur for
        byte-string keys).
        """
        def walk(node: Optional[Node], prefix: Nibbles) -> Iterator[tuple[Nibbles, bytes]]:
            if node is None or isinstance(node, SealedNode):
                return
            if isinstance(node, LeafNode):
                yield prefix + node.path, node.value
                return
            if isinstance(node, ExtensionNode):
                yield from walk(node.child, prefix + node.path)
                return
            if node.value is not None:
                yield prefix, node.value
            for i, child in enumerate(node.children):
                yield from walk(child, prefix + (i,))

        from repro.trie.nibbles import nibbles_to_key
        for path, value in walk(self._root, ()):
            if len(path) % 2 == 0:
                yield nibbles_to_key(path), value

    def __len__(self) -> int:
        return sum(1 for _ in self.items())
