"""The sealable Merkle trie — the paper's core data structure (§III-A).

A Merkle-Patricia-style trie whose nodes can be **sealed**: removed from
storage while their hash remains embedded in the parent, so the root
commitment never changes.  Sealing bounds the provable-state size by the
number of *live* entries (open channels plus packets in flight) rather
than by the total history — the property §V-D depends on.

Public surface:

* :class:`~repro.trie.trie.SealableTrie` — get/set/delete/seal, proofs,
  storage accounting.
* :class:`~repro.trie.proof.MembershipProof` /
  :class:`~repro.trie.proof.NonMembershipProof` — self-contained proofs
  verifiable against a bare root hash.
"""

from repro.trie.trie import SealableTrie
from repro.trie.proof import MembershipProof, NonMembershipProof, verify_membership, verify_non_membership
from repro.trie.serialize import dump_store, dump_trie, load_store, load_trie

__all__ = [
    "SealableTrie",
    "MembershipProof",
    "NonMembershipProof",
    "dump_store",
    "dump_trie",
    "load_store",
    "load_trie",
    "verify_membership",
    "verify_non_membership",
]
