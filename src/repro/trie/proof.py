"""Membership and non-membership proofs for the sealable trie.

Proofs are self-contained: a verifier needs only the bare 32-byte root
commitment (as carried in a guest block header) to check them.  They
serialize to a compact wire format because their byte size drives how many
host transactions a packet delivery needs (§V-A reports 4–5 transactions
per ``ReceivePacket``; the proof is most of that payload).

A proof is a top-down list of steps.  Verification replays the steps
bottom-up, recomputing each parent hash from its child until it either
reproduces the root (accept) or not (reject).

Membership terminal: a leaf (or branch value) holding the claimed value.
Non-membership terminals, mirroring where a lookup can die:

* the trie is empty;
* a branch has no child under the next nibble;
* a branch consumed the whole key but holds no value;
* a leaf or extension's path diverges from the remaining key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.crypto.hashing import Hash
from repro.encoding import Reader, write_bytes, write_varint
from repro.errors import ProofError
from repro.trie.nibbles import (
    Nibbles,
    common_prefix_len,
    decode_nibbles,
    encode_nibbles,
    key_to_nibbles,
)
from repro.trie.nodes import (
    branch_hash as _branch_hash,
    extension_hash as _extension_hash,
    leaf_hash,
    value_commitment,
)


def _leaf_hash(path: Nibbles, value: bytes) -> Hash:
    """Leaf hash from the *raw* value proofs carry on the wire."""
    return leaf_hash(path, value_commitment(value))


# ---------------------------------------------------------------------------
# Proof steps
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ExtensionStep:
    """Traversed an extension node; consumes ``path`` nibbles."""

    path: Nibbles


@dataclass(frozen=True, slots=True)
class BranchStep:
    """Descended into slot ``index`` of a branch; consumes one nibble.

    ``siblings`` lists the other 15 child hashes in slot order (the
    descended slot is excluded); ``value`` is the branch's own value.
    """

    index: int
    siblings: tuple[Hash, ...]
    value: Optional[bytes]

    def __post_init__(self) -> None:
        if not 0 <= self.index < 16:
            raise ProofError(f"branch index {self.index} out of range")
        if len(self.siblings) != 15:
            raise ProofError("branch step must carry exactly 15 sibling hashes")

    def parent_hash(self, child: Hash) -> Hash:
        children = list(self.siblings[: self.index]) + [child] + list(self.siblings[self.index:])
        return _branch_hash(children, self.value)


Step = Union[ExtensionStep, BranchStep]


# ---------------------------------------------------------------------------
# Non-membership terminal evidence
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class EmptyTrieEvidence:
    """The root commitment is the zero hash: nothing is in the trie."""


@dataclass(frozen=True, slots=True)
class EmptySlotEvidence:
    """A branch has no child under the key's next nibble.

    ``children`` gives all 16 child hashes (zero hash for empty slots);
    the verifier checks the slot for the key's next nibble is the zero
    hash.
    """

    children: tuple[Hash, ...]
    value: Optional[bytes]

    def node_hash(self) -> Hash:
        return _branch_hash(list(self.children), self.value)


@dataclass(frozen=True, slots=True)
class NoBranchValueEvidence:
    """The key ends exactly at a branch which holds no value."""

    children: tuple[Hash, ...]

    def node_hash(self) -> Hash:
        return _branch_hash(list(self.children), None)


@dataclass(frozen=True, slots=True)
class DivergentLeafEvidence:
    """A leaf sits where the key would descend, but its path differs.

    Carries the leaf's :func:`~repro.trie.nodes.value_commitment` rather
    than its raw value: absence only needs the leaf's hash, the
    commitment is fixed-size on the wire, and it is all a *sealed* leaf
    stub retains — so divergence from sealed leaves proves absence too.
    """

    path: Nibbles
    commitment: Hash

    def node_hash(self) -> Hash:
        return leaf_hash(self.path, self.commitment)


@dataclass(frozen=True, slots=True)
class DivergentExtensionEvidence:
    """An extension's path diverges from the remaining key."""

    path: Nibbles
    child: Hash

    def node_hash(self) -> Hash:
        return _extension_hash(self.path, self.child)


Evidence = Union[
    EmptyTrieEvidence,
    EmptySlotEvidence,
    NoBranchValueEvidence,
    DivergentLeafEvidence,
    DivergentExtensionEvidence,
]


# ---------------------------------------------------------------------------
# Proof containers
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class MembershipProof:
    """Proof that ``key`` maps to ``value`` under some root commitment.

    Values always terminate at leaves: the provable stores built on the
    trie hash their keys to a fixed 32 bytes, so no key is a prefix of
    another and branch-value terminals never arise in proofs.
    """

    key: bytes
    value: bytes
    steps: tuple[Step, ...]
    #: Nibbles of the key remaining at the terminal leaf.
    leaf_path: Nibbles

    def to_bytes(self) -> bytes:
        # One shared builder end to end: proofs are serialized per packet
        # delivery, so avoiding per-field temporaries matters (§V-A).
        out = bytearray()
        write_bytes(out, self.key)
        write_bytes(out, self.value)
        write_bytes(out, encode_nibbles(self.leaf_path))
        write_varint(out, len(self.steps))
        for step in self.steps:
            _write_step(out, step)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MembershipProof":
        reader = Reader(data)
        key = reader.read_bytes()
        value = reader.read_bytes()
        leaf_path = decode_nibbles(reader.read_bytes())
        steps = tuple(_decode_step(reader) for _ in range(reader.read_varint()))
        reader.expect_end()
        return cls(key=key, value=value, steps=steps, leaf_path=leaf_path)


@dataclass(frozen=True, slots=True)
class NonMembershipProof:
    """Proof that ``key`` is absent under some root commitment."""

    key: bytes
    steps: tuple[Step, ...]
    evidence: Evidence

    def to_bytes(self) -> bytes:
        out = bytearray()
        write_bytes(out, self.key)
        write_varint(out, len(self.steps))
        for step in self.steps:
            _write_step(out, step)
        _write_evidence(out, self.evidence)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "NonMembershipProof":
        reader = Reader(data)
        key = reader.read_bytes()
        steps = tuple(_decode_step(reader) for _ in range(reader.read_varint()))
        evidence = _decode_evidence(reader)
        reader.expect_end()
        return cls(key=key, steps=steps, evidence=evidence)


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------

_STEP_EXTENSION = 0
_STEP_BRANCH = 1

_EV_EMPTY_TRIE = 0
_EV_EMPTY_SLOT = 1
_EV_NO_BRANCH_VALUE = 2
_EV_DIVERGENT_LEAF = 3
_EV_DIVERGENT_EXTENSION = 4


def _write_optional_value(out: bytearray, value: Optional[bytes]) -> None:
    if value is None:
        write_varint(out, 0)
    else:
        write_varint(out, 1)
        write_bytes(out, value)


def _decode_optional_value(reader: Reader) -> Optional[bytes]:
    if reader.read_varint():
        return reader.read_bytes()
    return None


def _write_hash_set(out: bytearray, hashes: tuple[Hash, ...]) -> None:
    """Occupancy bitmap + only the non-zero hashes.

    Branches in a hashed-key trie are mostly sparse, so writing all slots
    at 32 bytes each wastes most of the wire: a two-child branch costs
    34 bytes this way instead of 480.  Proof size drives how many host
    transactions a delivery needs, so this is a direct fee/throughput
    win (§V-A).
    """
    zero = Hash.zero()
    bitmap = 0
    for i, value in enumerate(hashes):
        if value != zero:
            bitmap |= 1 << i
    out += bitmap.to_bytes(2, "big")
    for i, value in enumerate(hashes):
        if bitmap >> i & 1:
            out += value.value


def _decode_hash_set(reader: Reader, count: int) -> tuple[Hash, ...]:
    bitmap = int.from_bytes(reader.read(2), "big")
    if bitmap >> count:
        raise ProofError(f"hash-set bitmap names slots beyond {count}")
    zero = Hash.zero()
    return tuple(
        Hash(reader.read(32)) if bitmap >> i & 1 else zero
        for i in range(count)
    )


def _write_step(out: bytearray, step: Step) -> None:
    if isinstance(step, ExtensionStep):
        write_varint(out, _STEP_EXTENSION)
        write_bytes(out, encode_nibbles(step.path))
        return
    write_varint(out, _STEP_BRANCH)
    write_varint(out, step.index)
    _write_hash_set(out, step.siblings)
    _write_optional_value(out, step.value)


def _decode_step(reader: Reader) -> Step:
    kind = reader.read_varint()
    if kind == _STEP_EXTENSION:
        return ExtensionStep(path=decode_nibbles(reader.read_bytes()))
    if kind == _STEP_BRANCH:
        index = reader.read_varint()
        siblings = _decode_hash_set(reader, 15)
        value = _decode_optional_value(reader)
        return BranchStep(index=index, siblings=siblings, value=value)
    raise ValueError(f"unknown proof step tag {kind}")


def _write_evidence(out: bytearray, evidence: Evidence) -> None:
    if isinstance(evidence, EmptyTrieEvidence):
        write_varint(out, _EV_EMPTY_TRIE)
        return
    if isinstance(evidence, EmptySlotEvidence):
        write_varint(out, _EV_EMPTY_SLOT)
        _write_hash_set(out, evidence.children)
        _write_optional_value(out, evidence.value)
        return
    if isinstance(evidence, NoBranchValueEvidence):
        write_varint(out, _EV_NO_BRANCH_VALUE)
        _write_hash_set(out, evidence.children)
        return
    if isinstance(evidence, DivergentLeafEvidence):
        write_varint(out, _EV_DIVERGENT_LEAF)
        write_bytes(out, encode_nibbles(evidence.path))
        out += evidence.commitment.value
        return
    if isinstance(evidence, DivergentExtensionEvidence):
        write_varint(out, _EV_DIVERGENT_EXTENSION)
        write_bytes(out, encode_nibbles(evidence.path))
        out += evidence.child.value
        return
    raise ValueError(f"unknown evidence type {type(evidence)!r}")


def _decode_evidence(reader: Reader) -> Evidence:
    kind = reader.read_varint()
    if kind == _EV_EMPTY_TRIE:
        return EmptyTrieEvidence()
    if kind == _EV_EMPTY_SLOT:
        children = _decode_hash_set(reader, 16)
        value = _decode_optional_value(reader)
        return EmptySlotEvidence(children=children, value=value)
    if kind == _EV_NO_BRANCH_VALUE:
        children = _decode_hash_set(reader, 16)
        return NoBranchValueEvidence(children=children)
    if kind == _EV_DIVERGENT_LEAF:
        path = decode_nibbles(reader.read_bytes())
        commitment = Hash(reader.read(32))
        return DivergentLeafEvidence(path=path, commitment=commitment)
    if kind == _EV_DIVERGENT_EXTENSION:
        path = decode_nibbles(reader.read_bytes())
        child = Hash(reader.read(32))
        return DivergentExtensionEvidence(path=path, child=child)
    raise ValueError(f"unknown evidence tag {kind}")


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------

def _fold_steps(steps: tuple[Step, ...], terminal: Hash) -> Hash:
    """Recompute the root by folding the steps bottom-up around ``terminal``."""
    current = terminal
    for step in reversed(steps):
        if isinstance(step, ExtensionStep):
            current = _extension_hash(step.path, current)
        else:
            current = step.parent_hash(current)
    return current


def _consumed_nibbles(steps: tuple[Step, ...]) -> int:
    consumed = 0
    for step in steps:
        if isinstance(step, ExtensionStep):
            consumed += len(step.path)
        else:
            consumed += 1
    return consumed


def _steps_match_key(steps: tuple[Step, ...], path: Nibbles) -> bool:
    """Check every step consumes nibbles consistent with ``path``."""
    pos = 0
    for step in steps:
        if isinstance(step, ExtensionStep):
            segment = path[pos : pos + len(step.path)]
            if segment != step.path:
                return False
            pos += len(step.path)
        else:
            if pos >= len(path) or path[pos] != step.index:
                return False
            pos += 1
    return True


def verify_membership(root: Hash, proof: MembershipProof) -> bool:
    """Return ``True`` iff ``proof`` shows ``proof.key → proof.value`` under ``root``."""
    path = key_to_nibbles(proof.key)
    if not _steps_match_key(proof.steps, path):
        return False
    consumed = _consumed_nibbles(proof.steps)
    if consumed + len(proof.leaf_path) != len(path):
        return False
    if proof.leaf_path != path[consumed:]:
        return False
    terminal = _leaf_hash(proof.leaf_path, proof.value)
    return _fold_steps(proof.steps, terminal) == root


def verify_non_membership(root: Hash, proof: NonMembershipProof) -> bool:
    """Return ``True`` iff ``proof`` shows ``proof.key`` is absent under ``root``."""
    path = key_to_nibbles(proof.key)
    if not _steps_match_key(proof.steps, path):
        return False
    consumed = _consumed_nibbles(proof.steps)
    remaining = path[consumed:]
    evidence = proof.evidence

    if isinstance(evidence, EmptyTrieEvidence):
        return not proof.steps and root == Hash.zero()

    if isinstance(evidence, EmptySlotEvidence):
        if not remaining:
            return False
        if evidence.children[remaining[0]] != Hash.zero():
            return False
        return _fold_steps(proof.steps, evidence.node_hash()) == root

    if isinstance(evidence, NoBranchValueEvidence):
        if remaining:
            return False
        return _fold_steps(proof.steps, evidence.node_hash()) == root

    if isinstance(evidence, DivergentLeafEvidence):
        if evidence.path == remaining:
            return False  # that would be membership, not absence
        return _fold_steps(proof.steps, evidence.node_hash()) == root

    if isinstance(evidence, DivergentExtensionEvidence):
        # The extension's path must genuinely diverge: it is neither a
        # prefix of the remaining key nor equal to it.
        prefix = common_prefix_len(evidence.path, remaining)
        if prefix == len(evidence.path):
            return False
        return _fold_steps(proof.steps, evidence.node_hash()) == root

    return False
