"""Canonical trie serialization: snapshots and cold storage.

A full dump of a sealable trie — including sealed stubs, which must
survive round-trips because they carry the commitment of pruned
history.  Operators use dumps for state snapshots (validator
bootstrapping, audits, migrating the guest's 10 MiB account); the
format is canonical, so ``load(dump(t)).root_hash == t.root_hash`` and
two equal tries dump to identical bytes.

Layout: a node is ``tag`` + fields, depth-first:

* ``0x00`` leaf: nibble path, value
* ``0x01`` extension: nibble path, child node
* ``0x02`` branch: 2-byte occupancy bitmap, optional value flag+bytes,
  then the present children in slot order
* ``0x03`` sealed stub: kind byte, then per kind — leaf (0): nibble
  path + 32-byte value commitment; branch (1): nibble path + 2-byte
  occupancy bitmap + the present child hashes in slot order;
  opaque (2): the 32-byte subtree hash
* ``0xFF`` empty trie (root only)
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.hashing import Hash
from repro.encoding import Reader, write_bytes
from repro.errors import TrieError
from repro.trie.nibbles import decode_nibbles, encode_nibbles
from repro.trie.nodes import BranchNode, ExtensionNode, LeafNode, Node, SealedNode
from repro.trie.trie import SealableTrie

_LEAF = 0x00
_EXTENSION = 0x01
_BRANCH = 0x02
_SEALED = 0x03
_EMPTY = 0xFF


def dump_trie(trie: SealableTrie) -> bytes:
    """Serialize the whole trie (live nodes and sealed stubs)."""
    root = trie._root
    if root is None:
        return bytes([_EMPTY])
    out = bytearray()
    _write_node(out, root)
    return bytes(out)


def load_trie(data: bytes) -> SealableTrie:
    """Reconstruct a trie from :func:`dump_trie` output.

    Raises :class:`TrieError` on malformed input; the caller should
    compare the loaded root hash against a trusted commitment.
    """
    reader = Reader(data)
    trie = SealableTrie()
    first = reader.read(1)[0]
    if first != _EMPTY:
        trie._root = _read_node(reader, first)
    try:
        reader.expect_end()
    except ValueError as exc:
        raise TrieError(f"trailing bytes in trie dump: {exc}") from exc
    return trie


def dump_store(store) -> bytes:
    """Serialize a :class:`~repro.trie.store.ProvableStore`'s trie.

    The store adds no state beyond its trie (paths are hashed into the
    keys), so a store dump *is* a trie dump — one canonical format for
    operators and for world checkpoints alike.
    """
    return dump_trie(store.trie)


def load_store(data: bytes):
    """Reconstruct a ``ProvableStore`` from :func:`dump_store` output."""
    from repro.trie.store import ProvableStore

    store = ProvableStore()
    store._trie = load_trie(data)
    return store


def _write_node(out: bytearray, node: Node) -> None:
    if isinstance(node, LeafNode):
        out.append(_LEAF)
        write_bytes(out, encode_nibbles(node.path))
        write_bytes(out, node.value)
    elif isinstance(node, ExtensionNode):
        out.append(_EXTENSION)
        write_bytes(out, encode_nibbles(node.path))
        _write_node(out, node.child)
    elif isinstance(node, BranchNode):
        out.append(_BRANCH)
        bitmap = 0
        for index, child in enumerate(node.children):
            if child is not None:
                bitmap |= 1 << index
        out += bitmap.to_bytes(2, "big")
        if node.value is not None:
            out.append(1)
            write_bytes(out, node.value)
        else:
            out.append(0)
        for child in node.children:
            if child is not None:
                _write_node(out, child)
    elif isinstance(node, SealedNode):
        out.append(_SEALED)
        out.append(node.kind)
        if node.kind == SealedNode.LEAF:
            write_bytes(out, encode_nibbles(node.path))
            out += bytes(node.core)
        elif node.kind == SealedNode.BRANCH:
            write_bytes(out, encode_nibbles(node.path))
            assert node.children is not None
            bitmap = 0
            for index, child in enumerate(node.children):
                if child is not None:
                    bitmap |= 1 << index
            out += bitmap.to_bytes(2, "big")
            for child in node.children:
                if child is not None:
                    out += bytes(child)
        else:  # OPAQUE
            out += bytes(node.core)
    else:  # pragma: no cover - exhaustive over the node union
        raise TrieError(f"unknown node type {type(node)!r}")


def _read_node(reader: Reader, tag: Optional[int] = None) -> Node:
    if tag is None:
        tag = reader.read(1)[0]
    if tag == _LEAF:
        path = decode_nibbles(reader.read_bytes())
        value = reader.read_bytes()
        return LeafNode(path, value)
    if tag == _EXTENSION:
        path = decode_nibbles(reader.read_bytes())
        child = _read_node(reader)
        return ExtensionNode(path, child)
    if tag == _BRANCH:
        bitmap = int.from_bytes(reader.read(2), "big")
        value = reader.read_bytes() if reader.read(1)[0] else None
        children: list[Optional[Node]] = [None] * 16
        for index in range(16):
            if bitmap & (1 << index):
                children[index] = _read_node(reader)
        return BranchNode(children, value)
    if tag == _SEALED:
        kind = reader.read(1)[0]
        if kind == SealedNode.LEAF:
            path = decode_nibbles(reader.read_bytes())
            return SealedNode(path, kind, core=Hash(reader.read(32)))
        if kind == SealedNode.BRANCH:
            path = decode_nibbles(reader.read_bytes())
            bitmap = int.from_bytes(reader.read(2), "big")
            children: list[Optional[Hash]] = [None] * 16
            for index in range(16):
                if bitmap & (1 << index):
                    children[index] = Hash(reader.read(32))
            return SealedNode(path, kind, children=tuple(children))
        if kind == SealedNode.OPAQUE:
            return SealedNode((), kind, core=Hash(reader.read(32)))
        raise TrieError(f"unknown sealed-node kind {kind} in trie dump")
    raise TrieError(f"unknown trie-dump node tag {tag}")
