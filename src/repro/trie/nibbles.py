"""Nibble-path helpers for the Patricia trie.

Keys are arbitrary byte strings; the trie branches on 4-bit nibbles
(16-way), so a key of ``n`` bytes is a path of ``2n`` nibbles.  Paths are
plain tuples of ints in ``range(16)`` — immutable, hashable and cheap to
slice.
"""

from __future__ import annotations

Nibbles = tuple[int, ...]


def key_to_nibbles(key: bytes) -> Nibbles:
    """Expand a byte string into its nibble path (high nibble first)."""
    path = []
    for byte in key:
        path.append(byte >> 4)
        path.append(byte & 0x0F)
    return tuple(path)


def nibbles_to_key(path: Nibbles) -> bytes:
    """Pack an even-length nibble path back into bytes."""
    if len(path) % 2:
        raise ValueError("cannot pack an odd number of nibbles into bytes")
    out = bytearray()
    for i in range(0, len(path), 2):
        out.append((path[i] << 4) | path[i + 1])
    return bytes(out)


def common_prefix_len(a: Nibbles, b: Nibbles) -> int:
    """Length of the longest common prefix of two nibble paths."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def encode_nibbles(path: Nibbles) -> bytes:
    """Canonical byte encoding of a nibble path (for hashing/wire).

    One header byte carries the parity; nibbles are then packed two per
    byte with a zero pad when odd.  The parity byte keeps e.g. ``(1,)``
    and ``(1, 0)`` distinct.
    """
    header = bytes([len(path) % 2])
    padded = path if len(path) % 2 == 0 else path + (0,)
    return header + nibbles_to_key(padded)


def decode_nibbles(data: bytes) -> Nibbles:
    """Inverse of :func:`encode_nibbles`."""
    if not data:
        raise ValueError("empty nibble encoding")
    odd = data[0]
    if odd not in (0, 1):
        raise ValueError("bad nibble-path parity byte")
    path = key_to_nibbles(data[1:])
    if odd:
        if path and path[-1] != 0:
            raise ValueError("bad nibble-path padding")
        path = path[:-1]
    return path
