"""Nibble-path helpers for the Patricia trie.

Keys are arbitrary byte strings; the trie branches on 4-bit nibbles
(16-way), so a key of ``n`` bytes is a path of ``2n`` nibbles.  Paths are
plain tuples of ints in ``range(16)`` — immutable, hashable and cheap to
slice.
"""

from __future__ import annotations

from functools import lru_cache

Nibbles = tuple[int, ...]

#: Per-byte nibble pairs, so key expansion is one table lookup per byte
#: instead of two shifts/masks (keys are hashed to 32 bytes, and every
#: trie read, write, seal and proof expands one).
_BYTE_NIBBLES = tuple((b >> 4, b & 0x0F) for b in range(256))


@lru_cache(maxsize=65_536)
def key_to_nibbles(key: bytes) -> Nibbles:
    """Expand a byte string into its nibble path (high nibble first).

    Interned: provable stores hash every key to a fixed 32 bytes and the
    relayer touches the same commitment keys many times per packet
    (write, prove, ack, seal), so the expansion is memoized.
    """
    pairs = _BYTE_NIBBLES
    return tuple(nibble for byte in key for nibble in pairs[byte])


def nibbles_to_key(path: Nibbles) -> bytes:
    """Pack an even-length nibble path back into bytes."""
    if len(path) % 2:
        raise ValueError("cannot pack an odd number of nibbles into bytes")
    out = bytearray()
    for i in range(0, len(path), 2):
        out.append((path[i] << 4) | path[i + 1])
    return bytes(out)


def common_prefix_len(a: Nibbles, b: Nibbles) -> int:
    """Length of the longest common prefix of two nibble paths."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


@lru_cache(maxsize=65_536)
def encode_nibbles(path: Nibbles) -> bytes:
    """Canonical byte encoding of a nibble path (for hashing/wire).

    One header byte carries the parity; nibbles are then packed two per
    byte with a zero pad when odd.  The parity byte keeps e.g. ``(1,)``
    and ``(1, 0)`` distinct.

    Interned: node rebuilds along a mutated path re-encode the same
    (immutable) path tuples on every hash, and the pool of distinct
    paths in a trie is small relative to how often each is encoded.
    """
    header = bytes([len(path) % 2])
    padded = path if len(path) % 2 == 0 else path + (0,)
    return header + nibbles_to_key(padded)


def encoded_nibbles_len(path: Nibbles) -> int:
    """``len(encode_nibbles(path))`` without building the bytes.

    Storage accounting needs only the length; the header byte plus two
    nibbles per byte (odd paths pad) gives ``1 + (n + 1) // 2``.
    """
    return 1 + (len(path) + 1) // 2


def decode_nibbles(data: bytes) -> Nibbles:
    """Inverse of :func:`encode_nibbles`."""
    if not data:
        raise ValueError("empty nibble encoding")
    odd = data[0]
    if odd not in (0, 1):
        raise ValueError("bad nibble-path parity byte")
    path = key_to_nibbles(data[1:])
    if odd:
        if path and path[-1] != 0:
            raise ValueError("bad nibble-path padding")
        path = path[:-1]
    return path
