"""A provable key-value store over the sealable trie.

IBC addresses state through human-readable *commitment paths* (ICS-24),
e.g. ``commitments/ports/transfer/channels/channel-0/sequences/5``.  The
store hashes each path to a fixed 32-byte trie key, which guarantees no
key is a prefix of another — so every value terminates at a leaf and all
proofs have the simple leaf-terminated shape.

Verifiers recompute ``sha256(path)`` themselves, so a proof remains
self-contained: (root, path, value, proof) suffices.
"""

from __future__ import annotations

from repro.crypto.hashing import Hash, hash_bytes
from repro.trie.proof import MembershipProof, NonMembershipProof, verify_membership, verify_non_membership
from repro.trie.trie import SealableTrie


def path_key(path: str) -> bytes:
    """The 32-byte trie key for a commitment path."""
    return bytes(hash_bytes(path.encode("utf-8")))


def seq_key(prefix: str, sequence: int) -> bytes:
    """The 32-byte trie key for a *sequenced* entry: ``H(prefix)[:24]``
    followed by the sequence as 8 big-endian bytes.

    Sequenced keys keep a channel's entries monotone inside one subtree,
    which is what makes sealing safe: once a subtree of old sequence
    numbers is fully sealed, no future key can ever descend into it
    (future sequences diverge at or above the sealed prefix).  Sealing
    hashed (uniformly random) keys instead could eventually make an
    unlucky fresh key land inside a sealed prefix and fail — so the Guest
    Contract only seals sequenced entries.
    """
    if sequence < 0 or sequence >= 1 << 64:
        raise ValueError("sequence out of range for 8-byte encoding")
    return bytes(hash_bytes(prefix.encode("utf-8")))[:24] + sequence.to_bytes(8, "big")


class ProvableStore:
    """String-path facade over :class:`SealableTrie` (ICS-24 style)."""

    def __init__(self) -> None:
        self._trie = SealableTrie()

    @property
    def root_hash(self) -> Hash:
        return self._trie.root_hash

    @property
    def trie(self) -> SealableTrie:
        return self._trie

    def snapshot(self) -> "ProvableStore":
        """An O(1) frozen view for serving historical proofs."""
        view = ProvableStore()
        view._trie = self._trie.snapshot()
        return view

    def to_bytes(self) -> bytes:
        """Canonical full dump (live nodes and sealed stubs)."""
        from repro.trie.serialize import dump_store

        return dump_store(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProvableStore":
        """Reconstruct a store from :meth:`to_bytes` output."""
        from repro.trie.serialize import load_store

        return load_store(data)

    def set(self, path: str, value: bytes) -> None:
        self._trie.set(path_key(path), value)

    def get(self, path: str) -> bytes:
        return self._trie.get(path_key(path))

    def contains(self, path: str) -> bool:
        return self._trie.contains(path_key(path))

    def delete(self, path: str) -> None:
        self._trie.delete(path_key(path))

    def seal(self, path: str) -> None:
        """Seal the entry at ``path`` (bounded-storage guarantee, §III-A)."""
        self._trie.seal(path_key(path))

    def prove(self, path: str) -> MembershipProof:
        return self._trie.prove(path_key(path))

    def prove_absence(self, path: str) -> NonMembershipProof:
        return self._trie.prove_absence(path_key(path))

    # -- sequenced entries (sealable; see seq_key) ----------------------

    def set_seq(self, prefix: str, sequence: int, value: bytes) -> None:
        self._trie.set(seq_key(prefix, sequence), value)

    def get_seq(self, prefix: str, sequence: int) -> bytes:
        return self._trie.get(seq_key(prefix, sequence))

    def contains_seq(self, prefix: str, sequence: int) -> bool:
        return self._trie.contains(seq_key(prefix, sequence))

    def delete_seq(self, prefix: str, sequence: int) -> None:
        self._trie.delete(seq_key(prefix, sequence))

    def seal_seq(self, prefix: str, sequence: int) -> None:
        self._trie.seal(seq_key(prefix, sequence))

    def prove_seq(self, prefix: str, sequence: int) -> MembershipProof:
        return self._trie.prove(seq_key(prefix, sequence))

    def prove_seq_absence(self, prefix: str, sequence: int) -> NonMembershipProof:
        return self._trie.prove_absence(seq_key(prefix, sequence))

    def node_count(self) -> int:
        return self._trie.node_count()

    def storage_bytes(self) -> int:
        return self._trie.storage_bytes()


def verify_path_membership(root: Hash, path: str, value: bytes, proof: MembershipProof) -> bool:
    """Check ``proof`` shows ``path -> value`` under ``root``.

    Recomputes the hashed key from the path, so a proof generated for a
    different path can never be replayed.
    """
    if proof.key != path_key(path) or proof.value != value:
        return False
    return verify_membership(root, proof)


def verify_path_absence(root: Hash, path: str, proof: NonMembershipProof) -> bool:
    """Check ``proof`` shows ``path`` is absent under ``root``."""
    if proof.key != path_key(path):
        return False
    return verify_non_membership(root, proof)
