"""Multi-guest interop fabric: N guests on one host, routed links.

The fabric layer generalises the single-guest deployment to an
arbitrary topology of guest contracts sharing one host chain, linked to
each other (host-verified sibling clients, no signature re-verification)
and to external counterparties, with packet-forwarding middleware so a
transfer can route across several hops with hop-scoped acks and timeout
unwinding.  See ``docs/FABRIC.md``.
"""

from repro.fabric.conservation import (
    ConservationChecker,
    ConservationReport,
    base_denom,
    escrow_totals,
    is_escrow,
    non_escrow_totals,
)
from repro.fabric.deployment import FabricDeployment, FabricLink, build_fabric
from repro.fabric.forward import (
    FORWARD_PREFIX,
    ForwardMiddleware,
    ForwardRoute,
    forward_receiver,
    parse_forward,
)
from repro.fabric.sibling import SiblingGuestClient
from repro.fabric.topology import (
    CounterpartySpec,
    GuestSpec,
    LinkSpec,
    RouteSpec,
    TopologyConfig,
)
from repro.relayer.routing import (
    Hop,
    LinkEnd,
    RouteTable,
    SiblingRelayer,
    SiblingRelayerConfig,
)

__all__ = [
    "ConservationChecker",
    "ConservationReport",
    "base_denom",
    "escrow_totals",
    "is_escrow",
    "non_escrow_totals",
    "FabricDeployment",
    "FabricLink",
    "build_fabric",
    "FORWARD_PREFIX",
    "ForwardMiddleware",
    "ForwardRoute",
    "forward_receiver",
    "parse_forward",
    "SiblingGuestClient",
    "CounterpartySpec",
    "GuestSpec",
    "LinkSpec",
    "RouteSpec",
    "TopologyConfig",
    "Hop",
    "LinkEnd",
    "RouteTable",
    "SiblingRelayer",
    "SiblingRelayerConfig",
]
