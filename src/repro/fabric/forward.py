"""Packet-forwarding middleware: multi-hop ICS-20 routes.

Wraps a guest's :class:`~repro.ibc.apps.transfer.TransferApp` so a
transfer can travel A → guest₁ → guest₂ → B without the sender opening a
direct channel to B.  The route rides inside the ICS-20 ``receiver``
field (the packet-forward-middleware convention):

    ``fwd:<next_port>/<next_channel>|<rest>``

where ``<rest>`` is the receiver for the next hop — possibly itself a
``fwd:`` address, nesting arbitrarily deep routes.

Semantics (docs/FABRIC.md):

* **Hop-scoped acks.**  Each hop acknowledges success as soon as *its*
  onward send is committed, not when the packet reaches the final
  receiver.  The sender's escrow is settled per hop; end-to-end failure
  surfaces as an unwind (below), not as an error ack on hop 1.
* **Timeout / failure unwinding.**  If the onward hop errors or times
  out, the inner app first refunds the forwarding address (its usual
  sender-side refund), then the middleware sends a *return transfer*
  back along the inbound channel to the original sender.  The unwind
  send carries no timeout so the refund leg cannot itself strand funds.
* **Exactly-once.**  The unwind record is popped on the first ack or
  timeout of the onward packet; IBC deletes the packet commitment on
  either path, so no second ack/timeout for the same hop can execute
  on-chain (crash-safe against relayer restarts).
* **Atomic reversal.**  If the onward send fails synchronously (bad
  route, closed channel, rate limit downstream of an accepted recv),
  the middleware reverses the inner credit before returning an error
  ack — otherwise the sender-side refund would double-credit and break
  conservation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import IbcError, ReproError
from repro.ibc.apps.transfer import FungibleTokenPacketData, TransferApp
from repro.ibc.host import IbcApp
from repro.ibc.identifiers import ChannelId
from repro.ibc.packet import Acknowledgement, Packet

FORWARD_PREFIX = "fwd:"


@dataclass(frozen=True, slots=True)
class ForwardRoute:
    """One decoded hop of a ``fwd:`` receiver address."""

    port: str
    channel: str
    next_receiver: str


def forward_receiver(hops: Sequence[tuple[str, str]], final_receiver: str) -> str:
    """Encode a multi-hop route into an ICS-20 receiver string.

    ``hops`` are the (port, channel) pairs each *intermediate* chain
    must send on, in path order; the first hop's channel is chosen by
    the sender itself and is not encoded.
    """
    receiver = final_receiver
    for port, channel in reversed(list(hops)):
        receiver = f"{FORWARD_PREFIX}{port}/{channel}|{receiver}"
    return receiver


def parse_forward(receiver: str) -> Optional[ForwardRoute]:
    """Decode the next hop, or None for a plain (terminal) receiver."""
    if not receiver.startswith(FORWARD_PREFIX):
        return None
    head, sep, rest = receiver[len(FORWARD_PREFIX):].partition("|")
    port, slash, channel = head.partition("/")
    if not sep or not slash or not port or not channel or not rest:
        raise IbcError(f"malformed forward route in receiver {receiver!r}")
    return ForwardRoute(port=port, channel=channel, next_receiver=rest)


@dataclass(slots=True)
class _ForwardRecord:
    """Everything needed to unwind one in-flight onward hop."""

    inbound: Packet
    holder: str          # the literal fwd: address holding the funds
    local_denom: str     # denom as held on this chain
    amount: int
    original_sender: str


class ForwardMiddleware(IbcApp):
    """The forwarding decorator around a chain's transfer app."""

    def __init__(self, inner: TransferApp,
                 send: Callable[[str, str, bytes, float], Packet],
                 clock: Callable[[], float],
                 hop_timeout_seconds: float = 600.0) -> None:
        self.inner = inner
        self._send = send
        self._clock = clock
        self.hop_timeout_seconds = hop_timeout_seconds
        #: (onward source channel, onward sequence) -> unwind record.
        self._forwards: dict[tuple[str, int], _ForwardRecord] = {}
        #: Successfully forwarded hops, retained so a refund arriving
        #: from *further downstream* (hop-scoped acks settle each hop
        #: early) can keep unwinding toward the original sender.
        self._settled: list[_ForwardRecord] = []
        self._settled_cap = 4096
        self.forwards_started = 0
        self.forwards_settled = 0
        self.unwinds = 0

    # ------------------------------------------------------------------
    # IbcApp callbacks
    # ------------------------------------------------------------------

    def on_recv(self, packet: Packet) -> Acknowledgement:
        try:
            data = FungibleTokenPacketData.from_bytes(packet.payload)
        except (ValueError, IbcError):
            return self.inner.on_recv(packet)  # its malformed-payload ack
        try:
            route = parse_forward(data.receiver)
        except IbcError as exc:
            # Nothing moved yet: an error ack refunds the sender upstream.
            return Acknowledgement.error(str(exc))
        if route is None:
            return self.inner.on_recv(packet)
        if (route.channel == str(packet.destination_channel)
                and route.port == str(packet.destination_port)):
            # A hairpin "route" back out the inbound channel is never a
            # forward — it is a downstream refund returning to the fwd:
            # holding address of a hop this middleware already settled.
            # Credit it, then keep unwinding toward the origin.
            return self._recv_unwind_return(packet, data)
        if route.port != str(self.inner.port_id):
            return Acknowledgement.error(
                f"forward port {route.port!r} is not bound to a transfer app"
            )

        ack = self.inner.on_recv(packet)
        if not ack.success:
            return ack
        # The funds now sit at the literal fwd: address, under the denom
        # this chain knows them by (escrow released or voucher minted).
        returning_prefix = f"{packet.source_port}/{packet.source_channel}/"
        if data.denom.startswith(returning_prefix):
            local_denom = data.denom[len(returning_prefix):]
        else:
            local_denom = self.inner.voucher_denom(
                packet.destination_channel, data.denom)
        payload = None
        try:
            payload = self.inner.make_payload(
                ChannelId(route.channel), local_denom, data.amount,
                sender=data.receiver, receiver=route.next_receiver,
            )
            onward = self._send(route.port, route.channel, payload,
                                self._clock() + self.hop_timeout_seconds)
        except (ReproError, ValueError) as exc:
            if payload is not None:
                # make_payload already escrowed/burned for a send that
                # never committed: undo that leg before the recv credit.
                self._reverse_send(ChannelId(route.channel), local_denom,
                                   data.amount, data.receiver)
            self._reverse_recv(packet, data, local_denom)
            return Acknowledgement.error(f"forward failed: {exc}")
        self._forwards[(str(onward.source_channel), onward.sequence)] = \
            _ForwardRecord(
                inbound=packet, holder=data.receiver,
                local_denom=local_denom, amount=data.amount,
                original_sender=data.sender,
            )
        self.forwards_started += 1
        return Acknowledgement.ok()

    def on_acknowledge(self, packet: Packet, ack: Acknowledgement) -> None:
        record = self._forwards.pop(
            (str(packet.source_channel), packet.sequence), None)
        # Inner first: an error ack refunds the forwarding address,
        # which the unwind below then returns to the original sender.
        self.inner.on_acknowledge(packet, ack)
        if record is None:
            return
        if ack.success:
            self.forwards_settled += 1
            self._settled.append(record)
            if len(self._settled) > self._settled_cap:
                self._settled.pop(0)
            return
        self._unwind(record)

    def on_timeout(self, packet: Packet) -> None:
        record = self._forwards.pop(
            (str(packet.source_channel), packet.sequence), None)
        self.inner.on_timeout(packet)  # refund to the forwarding address
        if record is not None:
            self._unwind(record)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _recv_unwind_return(self, packet: Packet,
                            data: FungibleTokenPacketData) -> Acknowledgement:
        """A refund came back from downstream: accept it, then continue
        the unwind toward the original sender if we still know them."""
        ack = self.inner.on_recv(packet)
        if not ack.success:
            return ack
        for index, record in enumerate(self._settled):
            if (record.holder == data.receiver
                    and record.amount == data.amount):
                del self._settled[index]
                self._unwind(record)
                break
        # No matching hop (e.g. the record aged out of the cap): the
        # funds stay parked at the fwd: address — conserved, recoverable
        # by governance, but no longer routable automatically.
        return ack

    def _reverse_send(self, channel: ChannelId, denom: str, amount: int,
                      sender: str) -> None:
        """Undo a make_payload whose onward send failed synchronously:
        re-mint the burned voucher or release the fresh escrow."""
        if denom.startswith(f"{self.inner.port_id}/{channel}/"):
            self.inner.bank.mint(sender, denom, amount)
        else:
            self.inner.bank.transfer(
                self.inner.escrow_address(channel), sender, denom, amount)

    def _reverse_recv(self, packet: Packet, data: FungibleTokenPacketData,
                      local_denom: str) -> None:
        """Undo the inner app's recv credit (synchronous forward failure)."""
        returning_prefix = f"{packet.source_port}/{packet.source_channel}/"
        if data.denom.startswith(returning_prefix):
            # recv released this channel's escrow: lock it back.
            self.inner.bank.transfer(
                data.receiver,
                self.inner.escrow_address(packet.destination_channel),
                local_denom, data.amount,
            )
        else:
            # recv minted a voucher: burn it again.
            self.inner.bank.burn(data.receiver, local_denom, data.amount)

    def _unwind(self, record: _ForwardRecord) -> None:
        """Return the refunded funds to the original sender, upstream.

        Runs after the inner refund put ``amount`` of ``local_denom``
        back at the forwarding address; sends it as a normal transfer
        on the *inbound* channel (timeout 0: the refund leg must not
        itself expire).
        """
        inbound = record.inbound
        payload = self.inner.make_payload(
            ChannelId(str(inbound.destination_channel)),
            record.local_denom, record.amount,
            sender=record.holder, receiver=record.original_sender,
        )
        self._send(str(inbound.destination_port),
                   str(inbound.destination_channel), payload, 0.0)
        self.unwinds += 1
