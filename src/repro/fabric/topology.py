"""Declarative fabric topologies: N guests, counterparties, links, routes.

A :class:`TopologyConfig` names every chain in the deployment, wires
them with links and layers named multi-hop routes on top — the whole
§IV deployment generalised from "one guest, one counterparty" to an
arbitrary star/chain/mesh of guests sharing one host.  The builder in
:mod:`repro.fabric.deployment` consumes a validated config; everything
here is pure data plus :meth:`TopologyConfig.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.counterparty.chain import CounterpartyConfig
from repro.crypto.simsig import SimSigScheme
from repro.errors import SimulationError
from repro.guest.config import GuestConfig
from repro.host.chain import HostConfig
from repro.relayer.relayer import RelayerConfig
from repro.relayer.routing import SiblingRelayerConfig


@dataclass(frozen=True)
class GuestSpec:
    """One guest contract in the fabric; ``name`` is its chain id."""

    name: str
    config: GuestConfig = field(default_factory=GuestConfig)
    validators: int = 4
    #: Install the packet-forwarding middleware (needed on every
    #: intermediate chain of a multi-hop route).
    forwarding: bool = True
    cranker_poll_seconds: float = 2.0


@dataclass(frozen=True)
class CounterpartySpec:
    """One counterparty chain; ``name`` becomes its chain id."""

    name: str
    config: Optional[CounterpartyConfig] = None


@dataclass(frozen=True)
class LinkSpec:
    """An IBC link between two named chains (order is cosmetic)."""

    a: str
    b: str
    port: str = "transfer"

    @property
    def ends(self) -> frozenset:
        return frozenset((self.a, self.b))


@dataclass(frozen=True)
class RouteSpec:
    """A named path across the fabric: chain names, endpoints included.

    ``hops=("cp-a", "g0", "g1", "cp-b")`` is the 2-intermediate route
    cp-a → g0 → g1 → cp-b; every consecutive pair must be linked and
    every intermediate must be a forwarding guest.
    """

    name: str
    hops: tuple[str, ...]


@dataclass
class TopologyConfig:
    """Everything one multi-guest fabric deployment needs."""

    guests: tuple[GuestSpec, ...]
    counterparties: tuple[CounterpartySpec, ...] = ()
    links: tuple[LinkSpec, ...] = ()
    routes: tuple[RouteSpec, ...] = ()
    seed: int = 7
    run_duration: float = 3600.0
    host: HostConfig = field(default_factory=HostConfig)
    relayer: RelayerConfig = field(default_factory=RelayerConfig)
    sibling: SiblingRelayerConfig = field(default_factory=SiblingRelayerConfig)
    #: Per-hop timeout the forwarding middleware stamps on onward sends.
    hop_timeout_seconds: float = 600.0
    scheme_factory: type = SimSigScheme
    tracing: bool = False

    # ------------------------------------------------------------------

    def guest_names(self) -> set[str]:
        return {g.name for g in self.guests}

    def counterparty_names(self) -> set[str]:
        return {c.name for c in self.counterparties}

    def validate(self) -> None:
        """Reject ill-formed topologies with a precise complaint."""
        if not self.guests:
            raise SimulationError("a fabric needs at least one guest")
        names: list[str] = [g.name for g in self.guests]
        names += [c.name for c in self.counterparties]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SimulationError(f"duplicate chain names: {sorted(dupes)}")
        known = set(names)
        guests = self.guest_names()
        cps = self.counterparty_names()

        seen_links: set[frozenset] = set()
        cp_links_per_guest: dict[str, int] = {}
        for link in self.links:
            for end in (link.a, link.b):
                if end not in known:
                    raise SimulationError(f"link references unknown chain {end!r}")
            if link.a == link.b:
                raise SimulationError(f"link {link.a!r} cannot be a self-loop")
            if link.ends in seen_links:
                raise SimulationError(
                    f"duplicate link {link.a!r}-{link.b!r}")
            seen_links.add(link.ends)
            if link.a in cps and link.b in cps:
                raise SimulationError(
                    "counterparty-to-counterparty links are out of scope: "
                    f"{link.a!r}-{link.b!r}"
                )
            for end, other in ((link.a, link.b), (link.b, link.a)):
                if end in guests and other in cps:
                    count = cp_links_per_guest.get(end, 0) + 1
                    cp_links_per_guest[end] = count
                    if count > 1:
                        # One Tendermint client per contract (the legacy
                        # wiring); lift this when contracts grow N.
                        raise SimulationError(
                            f"guest {end!r} may link to at most one counterparty"
                        )

        forwarding = {g.name for g in self.guests if g.forwarding}
        route_names: set[str] = set()
        for route in self.routes:
            if route.name in route_names:
                raise SimulationError(f"duplicate route name {route.name!r}")
            route_names.add(route.name)
            if len(route.hops) < 2:
                raise SimulationError(
                    f"route {route.name!r} needs at least two chains")
            for hop in route.hops:
                if hop not in known:
                    raise SimulationError(
                        f"route {route.name!r} references unknown chain {hop!r}")
            for left, right in zip(route.hops, route.hops[1:]):
                if frozenset((left, right)) not in seen_links:
                    raise SimulationError(
                        f"route {route.name!r} hop {left!r}->{right!r} "
                        "has no link"
                    )
            for middle in route.hops[1:-1]:
                if middle in cps:
                    raise SimulationError(
                        f"route {route.name!r} cannot transit counterparty "
                        f"{middle!r} (no forwarding there)"
                    )
                if middle not in forwarding:
                    raise SimulationError(
                        f"route {route.name!r} transits {middle!r}, which "
                        "has forwarding disabled"
                    )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @staticmethod
    def star(num_guests: int, counterparty: str = "picasso-1",
             **overrides) -> "TopologyConfig":
        """Hub-and-spoke: N guests, each linked to one counterparty —
        the shape the ``topology-sweep`` experiment scales."""
        guests = tuple(GuestSpec(name=f"guest-{i}") for i in range(num_guests))
        links = tuple(LinkSpec(a=g.name, b=counterparty) for g in guests)
        return TopologyConfig(
            guests=guests,
            counterparties=(CounterpartySpec(name=counterparty),),
            links=links,
            **overrides,
        )

    @staticmethod
    def chain_of(chains: tuple[str, ...], route_name: str = "path",
                 **overrides) -> "TopologyConfig":
        """A linear path (cp? - guest - ... - guest - cp?) with one named
        route spanning it end to end."""
        guests = tuple(GuestSpec(name=n) for n in chains
                       if not n.startswith("cp"))
        cps = tuple(CounterpartySpec(name=n) for n in chains
                    if n.startswith("cp"))
        links = tuple(LinkSpec(a=left, b=right)
                      for left, right in zip(chains, chains[1:]))
        return TopologyConfig(
            guests=guests, counterparties=cps, links=links,
            routes=(RouteSpec(name=route_name, hops=tuple(chains)),),
            **overrides,
        )
