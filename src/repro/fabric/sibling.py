"""Light client of a sibling guest — two guests, one host.

When both chains of an IBC link are guest contracts deployed on the
*same* host, neither needs to re-verify the other's consensus from
signatures: the peer's block finalisation is host state that the host
runtime already enforced (a stake quorum of runtime-verified SIGN_BLOCK
instructions).  The client therefore adopts finalised peer heights by
reading them directly — ICS-09 "localhost"-style trust, generalised to
two programs sharing one execution environment.  On a real host the
``adopt`` below is a cross-program read of the peer's state account.

Adopting is *idempotent*: relayers prepend a SIBLING_UPDATE instruction
to every cross-guest delivery bundle (atomic update-then-prove), and two
relayers racing on the same height must not fail each other's bundles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.crypto.hashing import Hash
from repro.errors import ClientError, UnknownBlockError
from repro.ibc.client import LightClient

if TYPE_CHECKING:
    from repro.guest.contract import GuestContract


class SiblingGuestClient(LightClient):
    """On-chain view of another guest contract on the same host."""

    def __init__(self, peer: "GuestContract") -> None:
        super().__init__()
        self.peer = peer
        #: height -> (state root, guest block timestamp).
        self._heights: dict[int, tuple[Hash, float]] = {}
        self._latest = -1

    # -- updates -----------------------------------------------------------

    def adopt(self, height: int) -> bool:
        """Track a finalised peer height; returns False if already known.

        Raises :class:`UnknownBlockError` for a height the peer does not
        have and :class:`ClientError` for one that is not finalised —
        the host-verified analogue of a failed signature check.
        """
        self.ensure_active()
        if height in self._heights:
            return False
        block = self.peer.block_at(height)
        if not block.finalised:
            raise ClientError(
                f"sibling block {height} of {self.peer.chain_id} "
                "is not finalised"
            )
        self._heights[height] = (block.header.state_root,
                                 block.header.timestamp)
        self._latest = max(self._latest, height)
        return True

    # -- LightClient interface ---------------------------------------------

    def latest_height(self) -> int:
        return max(self._latest, 0)

    def consensus_root(self, height: int) -> Optional[Hash]:
        entry = self._heights.get(height)
        return entry[0] if entry is not None else None

    def consensus_timestamp(self, height: int) -> Optional[float]:
        entry = self._heights.get(height)
        return entry[1] if entry is not None else None

    # -- handshake claim ---------------------------------------------------

    def state_summary(self):
        """What this client claims about the sibling — validated by the
        peer's ICS-03 ``validate_self_client`` hook during handshakes."""
        from repro.ibc.self_client import SelfClientState
        if self._latest < 0:
            raise UnknownBlockError("no sibling height adopted yet")
        header = self.peer.block_at(self._latest).header
        return SelfClientState(
            chain_id=self.peer.chain_id,
            latest_height=self._latest,
            trusted_set_hash=bytes(header.epoch_hash),
        )
