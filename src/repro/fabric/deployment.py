"""Build a whole fabric from a :class:`TopologyConfig`.

One host chain, N guest contracts (per-guest accounts, validator
cohorts, crankers — fee and compute isolation comes free from distinct
namespaces), M counterparty chains, a relayer per link (the classic
:class:`~repro.relayer.relayer.Relayer` for guest↔counterparty links, a
:class:`~repro.relayer.routing.SiblingRelayer` for guest↔guest links)
and a :class:`~repro.relayer.routing.RouteTable` resolving the named
multi-hop routes.  ``establish_all`` runs every handshake sequentially;
``send_along`` then originates a transfer down any named route.

The deployment is duck-compatible with the single-guest
:class:`repro.deployment.Deployment` where the chaos machinery expects
it (``sim``/``host``/``gossip``/``validators``/``contract``/``cranker``/
``relayer``/``validator_keypair``), so :class:`repro.chaos.ChaosInjector`
drives fabric experiments unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.counterparty.chain import CounterpartyChain, CounterpartyConfig
from repro.crypto.keys import Keypair, SignatureScheme
from repro.deployment import ProvisionedGuest, open_transfer_link, provision_guest
from repro.errors import SimulationError
from repro.fabric.conservation import ConservationChecker
from repro.fabric.topology import LinkSpec, TopologyConfig
from repro.guest.api import GuestApi
from repro.host.accounts import Address
from repro.host.chain import HostChain
from repro.ibc.identifiers import ChannelId, ClientId, PortId
from repro.lightclient.guest_client import GuestLightClient
from repro.observability import Tracer
from repro.relayer.relayer import Relayer
from repro.relayer.routing import Hop, LinkEnd, RouteTable, SiblingRelayer
from repro.sim.gossip import GossipNetwork
from repro.sim.kernel import Simulation
from repro.units import sol_to_lamports
from repro.validators.profiles import simple_profiles


@dataclass
class FabricLink:
    """One established link and the relayer serving it."""

    spec: LinkSpec
    kind: str  # "guest-cp" | "guest-guest"
    relayer: Union[Relayer, SiblingRelayer]
    #: Payer addresses this link's relayer burns fees from, for the
    #: per-guest fee-partition accounting of the topology sweep.
    payers: tuple[Address, ...] = ()
    #: chain name -> that chain's channel end (set by establish_all).
    channels: dict = field(default_factory=dict)

    @property
    def port(self) -> str:
        return self.spec.port


class FabricDeployment:
    """N guests on one host, wired per a validated topology."""

    def __init__(self, config: TopologyConfig) -> None:
        config.validate()
        self.config = config
        self.sim = Simulation(
            seed=config.seed,
            tracer=Tracer() if config.tracing else None,
        )
        self.scheme: SignatureScheme = config.scheme_factory()
        self.host = HostChain(self.sim, self.scheme, config.host)
        self.gossip = GossipNetwork(self.sim)

        self.counterparties: dict[str, CounterpartyChain] = {}
        for spec in config.counterparties:
            cp_config = replace(spec.config or CounterpartyConfig(),
                                chain_id=spec.name)
            self.counterparties[spec.name] = CounterpartyChain(
                self.sim, self.scheme, cp_config)

        # Which counterparty each guest links to (validated: at most 1).
        cp_of_guest: dict[str, str] = {}
        for link in config.links:
            for end, other in ((link.a, link.b), (link.b, link.a)):
                if end in config.guest_names() and other in self.counterparties:
                    cp_of_guest[end] = other
        default_cp = next(iter(self.counterparties), "picasso-1")

        self.guests: dict[str, ProvisionedGuest] = {}
        self.user: dict[str, Address] = {}
        self.user_api: dict[str, GuestApi] = {}
        for index, spec in enumerate(config.guests):
            provisioned = provision_guest(
                self.sim, self.host, self.scheme, spec.config,
                cp_of_guest.get(spec.name, default_cp),
                simple_profiles(spec.validators), config.run_duration,
                namespace=spec.name, label_prefix=f"{spec.name}-",
                cranker_poll_seconds=spec.cranker_poll_seconds,
                key_salt=index,
            )
            if spec.forwarding:
                provisioned.contract.install_forwarding(
                    config.hop_timeout_seconds)
            self.guests[spec.name] = provisioned
            user = Address.derive(f"{spec.name}-user")
            self.host.airdrop(user, sol_to_lamports(1_000.0))
            self.user[spec.name] = user
            self.user_api[spec.name] = GuestApi(
                self.host, provisioned.contract, user)

        self.links: list[FabricLink] = []
        for link in config.links:
            self.links.append(self._wire_link(link))

        self.routes = RouteTable()
        self._established = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _wire_link(self, link: LinkSpec) -> FabricLink:
        guests = self.config.guest_names()
        if link.a in guests and link.b in guests:
            return self._wire_sibling_link(link)
        guest_name = link.a if link.a in guests else link.b
        cp_name = link.b if link.a in guests else link.a
        contract = self.guests[guest_name].contract
        counterparty = self.counterparties[cp_name]

        assert contract.current_epoch is not None
        guest_client = GuestLightClient(self.scheme, contract.current_epoch,
                                        chain_id=contract.chain_id)
        guest_client_id_on_cp: ClientId = counterparty.ibc.create_client(
            guest_client)
        payer = Address.derive(f"{guest_name}-{cp_name}-relayer-payer")
        self.host.airdrop(payer, sol_to_lamports(10_000.0))
        relayer = Relayer(
            self.sim, self.host, counterparty, contract,
            GuestApi(self.host, contract, payer),
            guest_client, guest_client_id_on_cp,
            self.config.relayer,
        )
        return FabricLink(spec=link, kind="guest-cp", relayer=relayer,
                          payers=(payer,))

    def _wire_sibling_link(self, link: LinkSpec) -> FabricLink:
        contract_a = self.guests[link.a].contract
        contract_b = self.guests[link.b].contract
        client_of_b_on_a = contract_a.register_sibling(contract_b)
        client_of_a_on_b = contract_b.register_sibling(contract_a)
        ends = []
        payers = []
        for name, contract, client in (
                (link.a, contract_a, client_of_b_on_a),
                (link.b, contract_b, client_of_a_on_b)):
            payer = Address.derive(f"{link.a}-{link.b}-sibling-payer-{name}")
            self.host.airdrop(payer, sol_to_lamports(10_000.0))
            payers.append(payer)
            ends.append(LinkEnd(
                contract=contract,
                api=GuestApi(self.host, contract, payer),
                client_of_peer=client,
                port=PortId(link.port),
            ))
        relayer = SiblingRelayer(self.sim, self.host, ends[0], ends[1],
                                 self.config.sibling)
        return FabricLink(spec=link, kind="guest-guest", relayer=relayer,
                          payers=tuple(payers))

    # ------------------------------------------------------------------
    # Handshakes and routes
    # ------------------------------------------------------------------

    def establish_all(self, max_seconds_per_link: float = 3_600.0) -> None:
        """Open every link (sequentially — the per-guest HandshakeStep
        waiters are one-shot, so concurrent handshakes on one guest
        would race), then resolve the route table."""
        for fabric_link in self.links:
            if fabric_link.kind == "guest-cp":
                self._establish_cp_link(fabric_link, max_seconds_per_link)
            else:
                self._establish_sibling_link(fabric_link, max_seconds_per_link)
        for route in self.config.routes:
            self.routes.add(route.name, [
                self._egress_hop(chain, nxt)
                for chain, nxt in zip(route.hops, route.hops[1:])
            ])
        self._established = True

    def _establish_cp_link(self, fabric_link: FabricLink,
                           max_seconds: float) -> None:
        link = fabric_link.spec
        guests = self.config.guest_names()
        guest_name = link.a if link.a in guests else link.b
        cp_name = link.b if link.a in guests else link.a
        contract = self.guests[guest_name].contract
        relayer = fabric_link.relayer
        assert isinstance(relayer, Relayer)
        guest_chan, cp_chan = open_transfer_link(
            self.sim, relayer, contract.counterparty_client_id,
            guest_port=link.port, cp_port=link.port,
            max_seconds=max_seconds,
        )
        fabric_link.channels[guest_name] = guest_chan
        fabric_link.channels[cp_name] = cp_chan

    def _establish_sibling_link(self, fabric_link: FabricLink,
                                max_seconds: float) -> None:
        link = fabric_link.spec
        relayer = fabric_link.relayer
        assert isinstance(relayer, SiblingRelayer)
        outcome: dict[str, ChannelId] = {}

        def on_open(chan_a: ChannelId, chan_b: ChannelId) -> None:
            outcome[link.a] = chan_a
            outcome[link.b] = chan_b

        relayer.open_link(on_open)
        deadline = self.sim.now + max_seconds
        while link.b not in outcome:
            if self.sim.now >= deadline or not self.sim.step():
                raise SimulationError(
                    f"sibling link {link.a}-{link.b} incomplete "
                    f"after {self.sim.now:.0f} s"
                )
        fabric_link.channels.update(outcome)

    def link_between(self, a: str, b: str) -> FabricLink:
        wanted = frozenset((a, b))
        for fabric_link in self.links:
            if fabric_link.spec.ends == wanted:
                return fabric_link
        raise KeyError(f"no link between {a!r} and {b!r}")

    def _egress_hop(self, chain: str, next_chain: str) -> Hop:
        fabric_link = self.link_between(chain, next_chain)
        channel = fabric_link.channels.get(chain)
        if channel is None:
            raise SimulationError(
                f"link {chain}-{next_chain} has no channel yet "
                "(establish_all not run?)"
            )
        return Hop(chain=chain, port=fabric_link.port, channel=str(channel))

    # ------------------------------------------------------------------
    # Routed sends (the origination half of the routing relayer)
    # ------------------------------------------------------------------

    def send_along(self, route_name: str, sender: str, receiver: str,
                   denom: str, amount: int,
                   timeout_timestamp: float = 0.0) -> None:
        """Originate one transfer down a named route: dial the route's
        first hop, encode the rest into the ``fwd:`` receiver chain."""
        hop = self.routes.first_hop(route_name)
        encoded = self.routes.receiver_for(route_name, receiver)
        if hop.chain in self.counterparties:
            counterparty = self.counterparties[hop.chain]

            def originate():
                payload = counterparty.transfer.make_payload(
                    ChannelId(hop.channel), denom, amount,
                    sender=sender, receiver=encoded,
                )
                return counterparty.ibc.send_packet(
                    PortId(hop.port), ChannelId(hop.channel), payload,
                    timeout_timestamp,
                )

            counterparty.submit(originate)
            return
        contract = self.guests[hop.chain].contract
        payload = contract.transfer.make_payload(
            ChannelId(hop.channel), denom, amount,
            sender=sender, receiver=encoded,
        )
        self.user_api[hop.chain].send_packet(
            hop.port, hop.channel, payload, timeout_timestamp)

    # ------------------------------------------------------------------
    # Accounting and chaos-injector compatibility
    # ------------------------------------------------------------------

    def banks(self) -> dict[str, "object"]:
        """Every chain's bank, keyed by chain name (conservation input)."""
        out = {name: g.contract.bank for name, g in self.guests.items()}
        out.update({name: cp.bank for name, cp in self.counterparties.items()})
        return out

    def conservation_checker(self) -> ConservationChecker:
        return ConservationChecker(self.banks())

    def cohort_addresses(self, guest_name: str) -> tuple[Address, ...]:
        """Every host account a guest's operational cohort pays from —
        the denominator of the per-guest fee-partition metric."""
        provisioned = self.guests[guest_name]
        addresses = [provisioned.deployer, provisioned.cranker_payer,
                     self.user[guest_name], provisioned.contract.treasury]
        addresses += [node.api.payer for node in provisioned.validators]
        for fabric_link in self.links:
            if guest_name in fabric_link.spec.ends:
                addresses.extend(fabric_link.payers)
        return tuple(dict.fromkeys(addresses))

    def run_for(self, seconds: float) -> None:
        self.sim.run_until(self.sim.now + seconds)

    @property
    def first_guest(self) -> ProvisionedGuest:
        return self.guests[self.config.guests[0].name]

    @property
    def contract(self):
        return self.first_guest.contract

    @property
    def cranker(self):
        return self.first_guest.cranker

    @property
    def validators(self):
        return [node for g in self.guests.values() for node in g.validators]

    @property
    def relayer(self):
        if getattr(self, "_relayer_override", None) is not None:
            return self._relayer_override
        for fabric_link in self.links:
            if fabric_link.kind == "guest-cp":
                return fabric_link.relayer
        if self.links:
            return self.links[0].relayer
        raise SimulationError("fabric has no links, hence no relayer")

    @relayer.setter
    def relayer(self, value) -> None:
        #: Point the chaos injector's relayer faults at a specific link.
        self._relayer_override = value

    def validator_keypair(self, index: int) -> Keypair:
        for node in self.first_guest.validators:
            if node.profile.index == index:
                return node.keypair
        raise KeyError(f"no validator with index {index}")


def build_fabric(config: TopologyConfig,
                 establish: bool = True) -> FabricDeployment:
    """Build (and by default link up) a fabric deployment."""
    deployment = FabricDeployment(config)
    if establish:
        deployment.establish_all()
    return deployment
