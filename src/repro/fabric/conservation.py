"""Fabric-wide token conservation (the differential suite's invariant).

ICS-20 escrows a unit on the sending chain for every voucher unit it
mints downstream, so escrowed units are exactly the double-counted
backing of in-flight and circulating value.  That yields a topology-
independent invariant that survives multi-hop forwarding, timeouts,
unwinds and chaos faults:

    for every base denomination ``d``: the sum of **non-escrow**
    holdings of ``d`` (any trace path) across **all** chains is
    constant.

Holdings parked at a ``fwd:`` holding address mid-forward count like any
user balance — they are en route, not backing — which is what makes the
invariant hold at every instant, not only at quiescence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ibc.apps.transfer import Bank

#: ICS-20 escrow accounts (see TransferApp.escrow_address).
_ESCROW_PREFIX = "escrow/"


def base_denom(denom: str) -> str:
    """Strip every ``{port}/{channel}/`` trace prefix off a denom.

    Voucher denoms nest one prefix per hop away from the origin
    (``transfer/channel-2/transfer/channel-0/uatom`` → ``uatom``).
    """
    while True:
        first = denom.find("/")
        if first < 0:
            return denom
        second = denom.find("/", first + 1)
        if second < 0:
            return denom
        denom = denom[second + 1:]


def is_escrow(address: str) -> bool:
    return address.startswith(_ESCROW_PREFIX)


def non_escrow_totals(banks: dict[str, Bank]) -> dict[str, int]:
    """Per-base-denom sum of non-escrow holdings across all chains."""
    totals: dict[str, int] = {}
    for bank in banks.values():
        for (address, denom), amount in bank.balances().items():
            if is_escrow(address):
                continue
            base = base_denom(denom)
            totals[base] = totals.get(base, 0) + amount
    return totals


def escrow_totals(banks: dict[str, Bank]) -> dict[str, int]:
    """Per-base-denom sum of escrowed (backing) units across chains."""
    totals: dict[str, int] = {}
    for bank in banks.values():
        for (address, denom), amount in bank.balances().items():
            if not is_escrow(address):
                continue
            base = base_denom(denom)
            totals[base] = totals.get(base, 0) + amount
    return totals


@dataclass
class ConservationReport:
    """Outcome of one conservation check."""

    ok: bool
    failures: list[str]
    initial: dict[str, int]
    final: dict[str, int]


class ConservationChecker:
    """Snapshot the fabric's supply at t0; verify it never changed.

    Construct it right after deployment (before any traffic), run the
    workload, then call :meth:`check`.
    """

    def __init__(self, banks: dict[str, Bank]) -> None:
        self._banks = dict(banks)
        self.initial = non_escrow_totals(self._banks)

    def check(self) -> ConservationReport:
        final = non_escrow_totals(self._banks)
        failures: list[str] = []
        for base in sorted(set(self.initial) | set(final)):
            before = self.initial.get(base, 0)
            after = final.get(base, 0)
            if before != after:
                failures.append(
                    f"base denom {base!r}: non-escrow supply moved "
                    f"{before} -> {after} (delta {after - before:+d})"
                )
        negative = [
            f"{chain}: {address} holds {amount} {denom} < 0"
            for chain, bank in self._banks.items()
            for (address, denom), amount in bank.balances().items()
            if amount < 0
        ]
        failures.extend(negative)
        return ConservationReport(
            ok=not failures, failures=failures,
            initial=dict(self.initial), final=final,
        )
