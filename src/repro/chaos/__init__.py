"""Deterministic, seeded fault injection (docs/CHAOS.md).

``repro.chaos`` turns the ad-hoc outage flags of early tests into a
declarative subsystem: a :class:`~repro.chaos.plan.FaultPlan` is a
schedule of :class:`~repro.chaos.plan.FaultSpec` entries, and a
:class:`~repro.chaos.injector.ChaosInjector` arms that schedule against
a live deployment.  All chaos randomness derives from the simulation
seed via :meth:`repro.sim.rng.Rng.derived_seed`, so the same seed and
plan reproduce the same faults bit-for-bit — and never perturb the
draws the fault-free twin of the run would have made.
"""

from repro.chaos.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.chaos.injector import ChaosInjector

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec", "ChaosInjector"]
