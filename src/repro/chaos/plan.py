"""Fault schedules: what breaks, when, and how hard.

A :class:`FaultPlan` is pure data — a validated, JSON-serialisable list
of :class:`FaultSpec` entries.  Arming it against a deployment is the
injector's job; keeping the two separate means plans can be embedded in
``BENCH_chaos.json``, diffed across runs, and round-tripped through
checkpoints.

Fault taxonomy (three layers, docs/CHAOS.md):

host
    ``host_blackout``      RPC refuses submissions for the window.
    ``host_tx_drop``       each submission is dropped with ``probability``.
    ``host_fee_spike``     congestion pinned at ``magnitude`` (0..1].
    ``host_slot_stall``    no blocks are produced during the window.
network
    ``gossip_drop``        each delivery dropped with ``probability``.
    ``gossip_duplicate``   each delivery duplicated ``magnitude`` times
                           with ``probability``.
    ``gossip_delay``       each delivery delayed by ~Exp(``magnitude``)
                           extra seconds with ``probability``.
    ``gossip_partition``   deliveries to subscribers whose label contains
                           ``target`` are dropped for the window.
actors
    ``validator_crash``        validator ``target`` is offline for the window.
    ``validator_equivocate``   validator ``target`` double-signs: a forged
                               fingerprint at the current head height is
                               gossiped ``magnitude`` times, spread over
                               ``duration`` seconds (repeats defeat gossip
                               loss and partitions; the fisherman dedups).
    ``validator_bad_signature``validator ``target`` submits ``magnitude``
                               sign transactions (spread over ``duration``)
                               whose precompile entry does not verify
                               against the block message.
    ``validator_quorum_equivocate``
                               a colluding quorum double-finalises: the
                               smallest stake-heaviest validator subset
                               carrying quorum power co-signs a forged
                               header at the latest finalised height and
                               gossips the finalisation ``magnitude``
                               times over ``duration`` seconds.  An
                               optional ``target`` index is forced into
                               the colluding set (so a storm can align
                               it with other per-validator faults).  The
                               fisherman answers with an
                               AccountabilityProof that slashes the whole
                               intersection (docs/ACCOUNTABILITY.md).
    ``relayer_crash``          the relayer halts, loses volatile state and
                               restarts after ``duration`` seconds.
    ``cranker_crash``          the cranker halts and restarts after
                               ``duration`` seconds.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.errors import ReproError


class FaultPlanError(ReproError):
    """A fault plan failed validation."""


#: kind -> (windowed?, needs_target?, uses_probability?, uses_magnitude?)
FAULT_KINDS: dict[str, tuple[bool, bool, bool, bool]] = {
    "host_blackout": (True, False, False, False),
    "host_tx_drop": (True, False, True, False),
    "host_fee_spike": (True, False, False, True),
    "host_slot_stall": (True, False, False, False),
    "gossip_drop": (True, False, True, False),
    "gossip_duplicate": (True, False, True, True),
    "gossip_delay": (True, False, True, True),
    "gossip_partition": (True, True, False, False),
    "validator_crash": (True, True, False, False),
    "validator_equivocate": (False, True, False, True),
    "validator_bad_signature": (False, True, False, True),
    "validator_quorum_equivocate": (False, False, False, True),
    "relayer_crash": (True, False, False, False),
    "cranker_crash": (True, False, False, False),
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault."""

    kind: str
    #: Start time in simulated seconds (relative to when the plan is armed).
    at: float
    #: Window length for windowed kinds; recovery delay for crash kinds.
    duration: float = 0.0
    #: Validator index (int), subscriber-label substring (partition), …
    target: Optional[str] = None
    #: Per-event probability for the probabilistic kinds.
    probability: float = 1.0
    #: Kind-specific intensity (congestion level, copies, seconds, count).
    magnitude: float = 1.0

    @property
    def end(self) -> float:
        return self.at + self.duration

    def validate(self) -> None:
        shape = FAULT_KINDS.get(self.kind)
        if shape is None:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(sorted(FAULT_KINDS))}")
        windowed, needs_target, uses_probability, _ = shape
        if self.at < 0:
            raise FaultPlanError(f"{self.kind}: negative start time {self.at}")
        if self.duration < 0:
            raise FaultPlanError(f"{self.kind}: negative duration")
        if windowed and self.duration == 0:
            raise FaultPlanError(f"{self.kind}: windowed fault needs duration > 0")
        if needs_target and self.target is None:
            raise FaultPlanError(f"{self.kind}: needs a target")
        if uses_probability and not (0.0 < self.probability <= 1.0):
            raise FaultPlanError(
                f"{self.kind}: probability must be in (0, 1], "
                f"got {self.probability}")
        if self.magnitude < 0:
            raise FaultPlanError(f"{self.kind}: negative magnitude")

    def target_index(self) -> int:
        """The target parsed as an integer (validator faults)."""
        if self.target is None:
            raise FaultPlanError(f"{self.kind}: no target to parse")
        try:
            return int(self.target)
        except ValueError as exc:
            raise FaultPlanError(
                f"{self.kind}: target {self.target!r} is not an index") from exc


@dataclass
class FaultPlan:
    """An ordered fault schedule, ready to arm or serialise."""

    specs: list[FaultSpec] = field(default_factory=list)
    #: Mixed into the chaos rng label so two plans armed on the same
    #: deployment draw independent streams.
    label: str = "chaos"

    def validate(self) -> "FaultPlan":
        for spec in self.specs:
            spec.validate()
        return self

    def add(self, kind: str, at: float, **kwargs) -> "FaultPlan":
        spec = FaultSpec(kind=kind, at=at, **kwargs)
        spec.validate()
        self.specs.append(spec)
        return self

    def of_kind(self, kind: str) -> list[FaultSpec]:
        return [spec for spec in self.specs if spec.kind == kind]

    def horizon(self) -> float:
        """Time by which every fault has started and every window closed."""
        return max((spec.end for spec in self.specs), default=0.0)

    # -- serialisation (BENCH embedding, checkpoint round-trips) --------

    def to_dict(self) -> dict:
        return {"label": self.label,
                "specs": [asdict(spec) for spec in self.specs]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        plan = cls(label=data.get("label", "chaos"),
                   specs=[FaultSpec(**spec) for spec in data.get("specs", [])])
        return plan.validate()

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
