"""The chaos injector: arming a :class:`FaultPlan` against a deployment.

The injector is a pure observer-with-side-effects bolted onto an already
built :class:`~repro.deployment.Deployment`.  Arming it installs two
duck-typed fault policies (``host.chaos`` and ``gossip.chaos``) that the
production code consults at its fault edges, and schedules the actor
faults (crashes, equivocation, bad signatures) as kernel events.

Determinism: every probabilistic decision draws from the injector's own
:class:`~repro.sim.rng.Rng`, minted via ``derived_seed`` — creating or
arming an injector consumes **zero** draws from the simulation's shared
streams, so a fault-free twin run of the same seed sees bit-identical
arrivals, latencies and validator behaviour.  That is what makes the
differential ledger check in ``repro.experiments.chaos`` meaningful.

Checkpoint compatibility: scheduled callbacks are bound methods of this
class with plain ``int``/``float`` arguments, and the policies hold only
plain data; a chaos world snapshots and replays through
``repro.checkpoint`` like any other.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.chaos.plan import FaultPlan, FaultPlanError, FaultSpec
from repro.crypto.hashing import Hash
from repro.errors import HostUnavailableError, UnknownBlockError
from repro.fisherman.evidence import (
    FINALISATION_TOPIC,
    GOSSIP_TOPIC,
    BlockClaim,
    FinalisationClaim,
)
from repro.guest.block import sign_message
from repro.sim.rng import Rng

_HOST_WINDOW_KINDS = ("host_blackout", "host_tx_drop",
                      "host_fee_spike", "host_slot_stall")
_GOSSIP_WINDOW_KINDS = ("gossip_drop", "gossip_duplicate",
                        "gossip_delay", "gossip_partition")

#: Recovery watcher cadence and give-up horizon (simulated seconds).
WATCH_POLL_SECONDS = 1.0
WATCH_CAP_SECONDS = 900.0


class GossipVerdict:
    """Per-delivery decision returned by the gossip fault policy."""

    __slots__ = ("drop", "extra_delay", "duplicates")

    def __init__(self, drop: bool = False, extra_delay: float = 0.0,
                 duplicates: int = 0) -> None:
        self.drop = drop
        self.extra_delay = extra_delay
        self.duplicates = duplicates


class _HostFaults:
    """The policy :class:`~repro.host.chain.HostChain` consults."""

    def __init__(self, injector: "ChaosInjector") -> None:
        self._injector = injector

    def rpc_blocked(self, now: float) -> bool:
        return self._injector._active("host_blackout", now) is not None

    def drop_tx(self, now: float) -> bool:
        spec = self._injector._active("host_tx_drop", now)
        if spec is None:
            return False
        return self._injector._rng.random() < spec.probability

    def congestion_override(self, time: float) -> Optional[float]:
        spec = self._injector._active("host_fee_spike", time)
        if spec is None:
            return None
        return min(1.0, spec.magnitude)

    def slot_stalled(self, now: float) -> bool:
        return self._injector._active("host_slot_stall", now) is not None


class _GossipFaults:
    """The policy :class:`~repro.sim.gossip.GossipNetwork` consults."""

    def __init__(self, injector: "ChaosInjector") -> None:
        self._injector = injector

    def on_delivery(self, topic: str, label: str) -> GossipVerdict:
        injector = self._injector
        now = injector.sim.now
        verdict = GossipVerdict()
        for spec in injector._active_all("gossip_partition", now):
            if spec.target is not None and spec.target in label:
                verdict.drop = True
                return verdict
        spec = injector._active("gossip_drop", now)
        if spec is not None and injector._rng.random() < spec.probability:
            verdict.drop = True
            return verdict
        spec = injector._active("gossip_duplicate", now)
        if spec is not None and injector._rng.random() < spec.probability:
            verdict.duplicates = max(1, int(spec.magnitude))
        spec = injector._active("gossip_delay", now)
        if spec is not None and injector._rng.random() < spec.probability:
            verdict.extra_delay = injector._rng.expovariate(
                1.0 / max(spec.magnitude, 1e-9))
        return verdict


class ChaosInjector:
    """Arms a :class:`FaultPlan` against a built deployment."""

    def __init__(self, deployment, plan: FaultPlan) -> None:
        plan.validate()
        self.deployment = deployment
        self.sim = deployment.sim
        self.plan = plan
        #: Derived stream: never perturbs the shared simulation rng.
        self._rng = Rng(self.sim.rng.derived_seed(f"chaos:{plan.label}"))
        self._armed = False
        self._t0 = 0.0
        self._windows: dict[str, list[tuple[float, float, FaultSpec]]] = {}
        #: One entry per spec, filled in as faults fire and recover;
        #: embedded verbatim in ``BENCH_chaos.json``.
        self.log: list[dict] = []
        #: spec index -> colluding validator keys, recorded when a
        #: quorum equivocation fires (drives its recovery predicate and
        #: the soak's attribution invariant).
        self._quorum_offenders: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def arm(self) -> "ChaosInjector":
        """Install the fault policies and schedule every fault.

        Fault times are relative to the moment of arming (so a plan can
        be armed after link establishment without re-basing it).
        """
        if self._armed:
            raise FaultPlanError("injector already armed")
        self._armed = True
        self._t0 = self.sim.now
        for kind in _HOST_WINDOW_KINDS + _GOSSIP_WINDOW_KINDS:
            self._windows[kind] = []
        for spec in self.plan.specs:
            if spec.kind in self._windows:
                self._windows[spec.kind].append(
                    (self._t0 + spec.at, self._t0 + spec.end, spec))
        self.deployment.host.chaos = _HostFaults(self)
        self.deployment.gossip.chaos = _GossipFaults(self)
        self.log = [
            {"kind": spec.kind, "at": spec.at, "duration": spec.duration,
             "target": spec.target, "began": False, "recovered_after": None}
            for spec in self.plan.specs
        ]
        for index, spec in enumerate(self.plan.specs):
            self.sim.schedule(spec.at, self._begin, index)
        return self

    # ------------------------------------------------------------------
    # Window queries (used by the policies)
    # ------------------------------------------------------------------

    def _active(self, kind: str, now: float) -> Optional[FaultSpec]:
        for start, end, spec in self._windows.get(kind, ()):
            if start <= now < end:
                return spec
        return None

    def _active_all(self, kind: str, now: float) -> list[FaultSpec]:
        return [spec for start, end, spec in self._windows.get(kind, ())
                if start <= now < end]

    # ------------------------------------------------------------------
    # Fault firing
    # ------------------------------------------------------------------

    def _begin(self, index: int) -> None:
        spec = self.plan.specs[index]
        self.log[index]["began"] = True
        self.sim.trace.count(f"chaos.faults.{spec.kind}")
        kind = spec.kind
        if kind == "validator_crash":
            node = self._node(spec.target_index())
            node._outages.append((self._t0 + spec.at, self._t0 + spec.end))
        elif kind == "validator_equivocate":
            self._equivocate(spec)
        elif kind == "validator_bad_signature":
            for delay in self._repeat_offsets(spec):
                self.sim.schedule(delay, self._send_bad_signature,
                                  spec.target_index())
        elif kind == "validator_quorum_equivocate":
            self._quorum_equivocate(index, spec)
        elif kind == "relayer_crash":
            self.deployment.relayer.crash()
        elif kind == "cranker_crash":
            self.deployment.cranker.paused = True
        # Windowed host/gossip faults need no action here: the policies
        # consult the window tables on every edge crossing.
        self.sim.schedule(max(spec.duration, 0.0) + WATCH_POLL_SECONDS,
                          self._watch_recovery, index, 0.0)
        if kind == "relayer_crash":
            self.sim.schedule(spec.duration, self._restart_relayer)
        elif kind == "cranker_crash":
            self.sim.schedule(spec.duration, self._resume_cranker)

    def _restart_relayer(self) -> None:
        self.deployment.relayer.restart()

    def _resume_cranker(self) -> None:
        self.deployment.cranker.paused = False
        self.sim.trace.count("chaos.cranker.resumed")

    def _node(self, index: int):
        for node in self.deployment.validators:
            if node.profile.index == index:
                return node
        raise FaultPlanError(f"no validator with index {index}")

    # -- Byzantine behaviour -------------------------------------------

    @staticmethod
    def _repeat_offsets(spec: FaultSpec) -> list[float]:
        """Send times for a repeated Byzantine action: ``magnitude``
        repeats spread evenly over ``duration`` seconds (0.5 s apart
        when no duration is given).  Spreading lets repeats outlive a
        concurrent gossip partition or loss window."""
        repeats = max(1, int(spec.magnitude))
        step = (spec.duration / max(repeats - 1, 1)
                if spec.duration > 0 else 0.5)
        return [step * copy for copy in range(repeats)]

    def _equivocate(self, spec: FaultSpec) -> None:
        """Gossip a forged fingerprint signed by the target validator at
        the current head height.  Repeats defeat chaotic gossip loss;
        the fisherman dedups and the contract slashes exactly once."""
        contract = self.deployment.contract
        if not contract.initialized:
            return
        keypair = self.deployment.validator_keypair(spec.target_index())
        height = contract.head.height
        fingerprint = self._rng.bytes(32)
        claim = BlockClaim(
            validator=keypair.public_key,
            height=height,
            fingerprint=fingerprint,
            signature=keypair.sign(sign_message(height, fingerprint)),
        )
        for delay in self._repeat_offsets(spec):
            self.sim.schedule(delay, self._publish_claim, claim)

    def _publish_claim(self, claim: BlockClaim) -> None:
        self.sim.trace.count("chaos.equivocations.published")
        self.deployment.gossip.publish(GOSSIP_TOPIC, claim)

    def _quorum_equivocate(self, index: int, spec: FaultSpec) -> None:
        """A colluding quorum finalises a fork: the stake-heaviest
        subset of the latest finalised block's signers that carries
        quorum power co-signs a header identical but for a forged state
        root, and gossips the whole finalisation.  This is the §III-C
        worst case — no single signature is individually refutable
        without the real finalisation — and exactly what an
        AccountabilityProof prosecutes (docs/ACCOUNTABILITY.md)."""
        contract = self.deployment.contract
        if not contract.initialized:
            return
        block = None
        for height in range(contract.head.height, -1, -1):
            try:
                candidate = contract.block_at(height)
            except UnknownBlockError:
                continue
            if candidate.finalised:
                block = candidate
                break
        if block is None:
            return  # nothing finalised yet: no conflict to manufacture
        epoch = contract.epochs.get(block.header.epoch_id)
        if epoch is None:
            return
        keypairs = {node.keypair.public_key: node.keypair
                    for node in self.deployment.validators}
        signers = [public_key for public_key in block.signers
                   if public_key in keypairs]
        signers.sort(key=lambda pk: (-epoch.validators.get(pk, 0), bytes(pk)))
        if spec.target is not None:
            # Force the targeted validator to the front so the colluding
            # set provably overlaps other faults aimed at it (keeps the
            # combined storm from ejecting every candidate at once).
            preferred = self.deployment.validator_keypair(
                spec.target_index()).public_key
            if preferred in signers:
                signers.remove(preferred)
                signers.insert(0, preferred)
        colluders: list = []
        power = 0
        for public_key in signers:
            colluders.append(public_key)
            power += epoch.validators.get(public_key, 0)
            if power >= epoch.quorum_stake:
                break
        if power < epoch.quorum_stake:
            return  # cannot reach quorum with controllable keys
        forged = replace(block.header, state_root=Hash(self._rng.bytes(32)))
        message = forged.sign_message()
        claim = FinalisationClaim(
            header=forged,
            signatures=tuple(
                (public_key, keypairs[public_key].sign(message))
                for public_key in sorted(colluders, key=bytes)
            ),
        )
        self._quorum_offenders[index] = tuple(sorted(colluders, key=bytes))
        for delay in self._repeat_offsets(spec):
            self.sim.schedule(delay, self._publish_finalisation, claim)

    def _publish_finalisation(self, claim: FinalisationClaim) -> None:
        self.sim.trace.count("chaos.quorum_equivocations.published")
        self.deployment.gossip.publish(FINALISATION_TOPIC, claim)

    def _send_bad_signature(self, validator_index: int) -> None:
        """Submit a Sign transaction whose precompile entry verifies —
        the signature genuinely covers the submitted message — but whose
        message is not the block's sign-message, so the contract's
        is_signature_verified check rejects it (a failed transaction,
        not a slashable offence: nothing conflicting ever hit gossip)."""
        contract = self.deployment.contract
        if not contract.initialized:
            return
        node = self._node(validator_index)
        height = contract.head.height
        try:
            block = contract.block_at(height)
        except Exception:
            return
        corrupted = b"chaos-forged:" + block.header.sign_message()
        try:
            node.api.sign_block(height, node.keypair, corrupted,
                                on_result=self._bad_signature_result)
        except HostUnavailableError:
            self.sim.trace.count("chaos.bad_signature.deferred")

    def _bad_signature_result(self, receipt) -> None:
        if receipt.success:
            # Must not happen: the contract accepted a signature over a
            # non-block message.  Surface loudly for the invariant check.
            self.sim.trace.count("chaos.bad_signature.ACCEPTED")
        else:
            self.sim.trace.count("chaos.bad_signature.rejected")

    # ------------------------------------------------------------------
    # Recovery watchers
    # ------------------------------------------------------------------

    def _watch_recovery(self, index: int, waited: float) -> None:
        """Poll until the fault's recovery predicate holds, then record
        the elapsed time past the window's end."""
        spec = self.plan.specs[index]
        if self._recovered(index, spec):
            self.sim.trace.observe(
                f"chaos.recovery_seconds.{spec.kind}", waited)
            self.log[index]["recovered_after"] = waited
            return
        if waited >= WATCH_CAP_SECONDS:
            self.sim.trace.count("chaos.recovery.timeout")
            self.log[index]["recovered_after"] = -1.0
            return
        self.sim.schedule(WATCH_POLL_SECONDS, self._watch_recovery,
                          index, waited + WATCH_POLL_SECONDS)

    def _recovered(self, index: int, spec: FaultSpec) -> bool:
        kind = spec.kind
        relayer = self.deployment.relayer
        if kind in ("host_blackout", "host_tx_drop", "host_fee_spike",
                    "host_slot_stall", "relayer_crash"):
            return (not relayer.paused
                    and relayer.breaker.state == "closed"
                    and not relayer._bundle_queue)
        if kind in _GOSSIP_WINDOW_KINDS:
            return True  # transport-level; nothing persists past the window
        if kind in ("validator_crash", "validator_bad_signature"):
            contract = self.deployment.contract
            return contract.initialized and contract.head.finalised
        if kind == "validator_equivocate":
            keypair = self.deployment.validator_keypair(spec.target_index())
            return self.deployment.contract.staking.stake_of(
                keypair.public_key) == 0
        if kind == "validator_quorum_equivocate":
            offenders = self._quorum_offenders.get(index)
            if offenders is None:
                return True  # never fired (nothing finalised): vacuous
            contract = self.deployment.contract
            spared: set[str] = set()
            for record in contract.accountability_slashes:
                spared.update(record["spared"])
            # Recovered when every colluder is either slashed to zero or
            # provably spared by the contract's liveness floor.
            return all(contract.staking.stake_of(pk) == 0
                       or pk.short() in spared
                       for pk in offenders)
        if kind == "cranker_crash":
            return not self.deployment.cranker.paused
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """Plan + per-fault outcomes, for ``BENCH_chaos.json``."""
        return {"plan": self.plan.to_dict(), "faults": list(self.log)}
